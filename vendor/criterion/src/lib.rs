//! Vendored stand-in for `criterion`.
//!
//! Provides the macro/struct surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, parametrised
//! ids, throughput annotation — backed by a simple calibrated wall-clock
//! timer instead of criterion's statistical machinery. Good enough to
//! compare alternatives locally and to keep `cargo bench` runnable
//! offline; not a substitute for real criterion numbers.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(400);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parametrised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(
        name: impl Into<String>,
        parameter: impl std::fmt::Display,
    ) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, repeating it for the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub uses a fixed target time.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.throughput, routine);
        let _ = &self.criterion;
    }

    /// Benchmarks `routine` with an input value (the input is borrowed by
    /// the closure; the stub adds nothing over `bench_function`).
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.throughput, |b| routine(b, input));
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, routine);
        self
    }

    /// Accepted for API compatibility with criterion's builder.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    // Calibrate: find an iteration count filling the target window.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed >= TARGET_MEASURE || iters >= 1 << 24 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        let grow = if b.elapsed < TARGET_MEASURE / 16 {
            8
        } else {
            2
        };
        iters = iters.saturating_mul(grow);
    };

    let mut line = format!("{name:<50} {}", format_time(per_iter));
    if let Some(tp) = throughput {
        match tp {
            Throughput::Elements(n) => {
                let _ = write!(line, "  ({:.0} elem/s)", n as f64 / per_iter);
            }
            Throughput::Bytes(n) => {
                let _ = write!(
                    line,
                    "  ({:.1} MiB/s)",
                    n as f64 / per_iter / (1024.0 * 1024.0)
                );
            }
        }
    }
    println!("{line}");
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>10.2} ns/iter", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>10.2} µs/iter", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>10.2} ms/iter", secs * 1e3)
    } else {
        format!("{secs:>10.3} s/iter")
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
