//! Vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: range/tuple/`Just`/mapped
//! strategies, `prop::collection::vec`, `any`, `prop_oneof!`, the
//! `proptest!` test macro, and `prop_assert!`/`prop_assert_eq!`. Cases
//! are generated from a deterministic per-test seed (derived from the
//! test name), so failures are reproducible; there is **no shrinking** —
//! a failing case reports its inputs via the assertion message only.

use std::ops::{Range, RangeInclusive};

/// Error carried out of a failing property case.
pub type TestCaseError = String;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The runner's deterministic random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift; the tiny modulo bias is irrelevant for testing.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs one property: `cases` deterministic cases seeded from the test
/// name. Panics (failing the surrounding `#[test]`) on the first failed
/// case.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut seed = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    for i in 0..config.cases {
        let mut rng = TestRng::new(seed.wrapping_add(i as u64));
        if let Err(msg) = case(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {i} (seed {seed:#x}): {msg}"
            );
        }
    }
}

/// Defines property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running [`run_proptest`] over its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident (
        $($pat:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property-test assertion: fails the current case without panicking the
/// generator loop machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return Err(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left,
                        right
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return Err(format!($($fmt)+));
                }
            }
        }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u16),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            xs in prop::collection::vec((0u64..600, 1u32..1000), 1..12),
            flag in any::<bool>(),
            f in 0.25f64..0.75,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            for &(b, w) in &xs {
                prop_assert!(b < 600 && (1..1000).contains(&w));
            }
            prop_assert!((0.25..0.75).contains(&f));
            let _ = flag;
        }

        #[test]
        fn oneof_and_map(ops in prop::collection::vec(
            prop_oneof![(0u16..3).prop_map(Op::A), Just(Op::B)],
            4,
        )) {
            prop_assert_eq!(ops.len(), 4);
            for op in ops {
                match op {
                    Op::A(x) => prop_assert!(x < 3),
                    Op::B => {}
                }
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    use crate::TestRng;
}
