//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote` in this
//! offline environment) and emits `Serialize`/`Deserialize` impls against
//! the concrete [`serde::Value`] tree. Supports exactly what this
//! workspace needs: non-generic structs (named, tuple, unit) and enums
//! whose variants are unit, named-field, or tuple. `#[serde(...)]`
//! attributes are not supported and will be rejected nowhere — they are
//! simply ignored like every other attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` via the value-tree model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` via the value-tree model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// A minimal item model
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips any number of `#[...]` attributes.
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
                           // Outer attribute group `[...]`.
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                self.pos += 1;
            }
        }
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub")
        {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected identifier, got {other:?}"),
        }
    }

    /// Skips tokens until a top-level `,`, balancing `<...>` pairs.
    /// Returns false when the cursor is exhausted without seeing a comma.
    fn skip_until_toplevel_comma(&mut self) -> bool {
        let mut angle_depth = 0i32;
        // `->` tokenizes as `-` (joint) then `>`; that `>` is not an
        // angle-bracket closer and must not unbalance the depth.
        let mut after_joint_minus = false;
        while let Some(tok) = self.next() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' if !after_joint_minus => {
                        angle_depth -= 1;
                        assert!(
                            angle_depth >= 0,
                            "serde derive: unbalanced `>` in field type"
                        );
                    }
                    ',' if angle_depth == 0 => return true,
                    _ => {}
                }
                after_joint_minus = p.as_char() == '-'
                    && p.spacing() == proc_macro::Spacing::Joint;
            } else {
                after_joint_minus = false;
            }
        }
        false
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident();
    let name = c.expect_ident();
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stub does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_struct_body(&mut c),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_enum_body(&mut c),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

fn parse_struct_body(c: &mut Cursor) -> Fields {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            parse_named_fields(g.stream())
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis =>
        {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde derive: unexpected struct body {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let mut c = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        names.push(c.expect_ident());
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:`, got {other:?}"),
        }
        if !c.skip_until_toplevel_comma() {
            break;
        }
    }
    Fields::Named(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        count += 1;
        if !c.skip_until_toplevel_comma() {
            break;
        }
    }
    count
}

fn parse_enum_body(c: &mut Cursor) -> Vec<Variant> {
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde derive: expected enum body, got {other:?}"),
    };
    let mut c = Cursor::new(group.stream());
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                c.pos += 1;
                parse_named_fields(body)
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis =>
            {
                let body = g.stream();
                c.pos += 1;
                Fields::Tuple(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional discriminant, then the trailing comma.
        if !c.skip_until_toplevel_comma() {
            break;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (rendered as source text, parsed back into tokens)
// ---------------------------------------------------------------------------

fn tuple_binders(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("f{i}")).collect()
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "({f:?}.to_string(), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!(
                        "::serde::Value::Object(vec![{}])",
                        entries.join(", ")
                    )
                }
                Fields::Tuple(1) => {
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| {
                            format!("::serde::Serialize::to_value(&self.{i})")
                        })
                        .collect();
                    format!(
                        "::serde::Value::Array(vec![{}])",
                        entries.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        Fields::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => \
                                 ::serde::Value::Object(vec![({vname:?}.to_string(), \
                                 ::serde::Value::Object(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => \
                             ::serde::Value::Object(vec![({vname:?}.to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binders = tuple_binders(*n).join(", ");
                            let entries: Vec<String> = tuple_binders(*n)
                                .iter()
                                .map(|b| {
                                    format!("::serde::Serialize::to_value({b})")
                                })
                                .collect();
                            format!(
                                "{name}::{vname}({binders}) => \
                                 ::serde::Value::Object(vec![({vname:?}.to_string(), \
                                 ::serde::Value::Array(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 v.get_field({f:?})?)?,"
                            )
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(" "))
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(&items[{i}])?,"
                            )
                        })
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                                 Ok({name}({})),\n\
                             other => Err(::serde::Error::unexpected(\
                                 \"array of length {n}\", other)),\n\
                         }}",
                        inits.join(" ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => Ok({name}::{vname}),")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         payload.get_field({f:?})?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => Ok({name}::{vname} {{ {} }}),",
                                inits.join(" ")
                            ))
                        }
                        Fields::Tuple(1) => Some(format!(
                            "{vname:?} => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         &items[{i}])?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => match payload {{\n\
                                     ::serde::Value::Array(items) \
                                         if items.len() == {n} => \
                                         Ok({name}::{vname}({})),\n\
                                     other => Err(::serde::Error::unexpected(\
                                         \"array of length {n}\", other)),\n\
                                 }},",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::Error::custom(\
                                     format!(\"unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) \
                                 if fields.len() == 1 => {{\n\
                                 let (tag, payload) = &fields[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::Error::custom(\
                                         format!(\"unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::unexpected(\
                                 \"enum\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    }
}
