//! Vendored stand-in for the `rand` crate (0.9-style API surface).
//!
//! Provides exactly the subset this workspace uses: [`RngCore`] /
//! [`SeedableRng`] for the project's own deterministic generators
//! (`taskprune_prob::rng`), and the [`Rng`] extension trait with
//! [`Rng::random`] and [`Rng::random_range`]. No thread-local generator
//! is provided on purpose — every random stream in the reproduction must
//! be explicitly seeded.

/// The core trait every generator implements: a source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array in practice).
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed. Implementors should
    /// override this with their reference seeding recipe.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain via
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Top 53 bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64
);

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded integer sampling (via 128-bit widening,
/// with a simple rejection loop on the biased low slice).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound && low < bound.wrapping_neg() {
            // Fast accept for the common case.
            return (m >> 64) as u64;
        }
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z: usize = rng.random_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn random_f64_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
