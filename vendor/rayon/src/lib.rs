//! Vendored stand-in for `rayon`.
//!
//! Implements the one pattern this workspace uses —
//! `slice.par_iter().map(f).collect()` — with real data parallelism over
//! `std::thread::scope`: the input is split into one contiguous chunk
//! per available core, mapped on worker threads, and re-concatenated in
//! order, so results are deterministic and identical to the sequential
//! evaluation.

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Borrowing entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> O + Sync,
        O: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, O: Send, F: Fn(&'a T) -> O + Sync> ParMap<'a, T, F> {
    /// Evaluates the map on worker threads and collects results in input
    /// order.
    pub fn collect<B: FromIterator<O>>(self) -> B {
        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk_len = n.div_ceil(workers);
        let f = &self.f;
        let mut parts: Vec<Vec<O>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || chunk.iter().map(f).collect::<Vec<O>>())
                })
                .collect();
            parts = handles
                .into_iter()
                .map(|h| h.join().expect("rayon stub worker panicked"))
                .collect();
        });
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u64> =
            input.par_iter().map(|&x| u64::from(x) * 2).collect();
        let expected: Vec<u64> =
            input.iter().map(|&x| u64::from(x) * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn works_on_empty_input() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
