//! Vendored stand-in for `rayon`.
//!
//! Originally a thread-per-chunk `map`; now a real **work-stealing
//! pool**, hand-rolled on `std` only (crossbeam-style per-worker
//! deques, guarded by mutexes rather than lock-free rings — the
//! workspace's fan-outs are coarse enough that queue locking is noise
//! next to the work items):
//!
//! * [`ThreadPool`] — `workers = threads - 1` OS threads plus the
//!   calling thread, which always helps execute jobs while it waits on
//!   a [`ThreadPool::scope`]; a 1-thread pool therefore runs every job
//!   inline on the caller, which is the degenerate case the
//!   determinism suites pin against.
//! * [`ThreadPool::global`] — the shared pool `par_iter` and the free
//!   [`scope`] use, sized by the `TASKPRUNE_THREADS` environment
//!   variable (a number, or `max`/unset for all hardware threads).
//! * **Scheduling** — a job spawned from outside the pool lands in the
//!   shared injector queue; a job spawned *by a worker* (nested
//!   parallelism) lands in that worker's own deque, which the owner
//!   pops LIFO and idle workers steal FIFO. Skewed job durations
//!   therefore rebalance automatically instead of idling cores the way
//!   the old contiguous-chunk split did.
//! * **Determinism** — stealing reorders *execution*, never results:
//!   `par_iter().map(f).collect()` writes each output into its input's
//!   slot, so the collected order is the input order regardless of
//!   pool size or steal interleaving.
//!
//! Panics inside jobs are caught, the first payload is re-thrown on the
//! thread that owns the scope, and the remaining jobs still run (the
//! scope must not return while spawned work references borrowed data).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

// ---------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------

/// A queued unit of work. Lifetime-erased: [`Scope`] guarantees every
/// job finishes before the scope returns, so the `'static` here is a
/// promise the latch enforces, not one the closure satisfies.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct IdleState {
    shutdown: bool,
}

struct Shared {
    /// Jobs spawned from outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: the owner pushes/pops the back (LIFO),
    /// thieves steal from the front (FIFO) — the classic work-stealing
    /// shape, locked rather than lock-free.
    deques: Vec<Mutex<VecDeque<Job>>>,
    idle: Mutex<IdleState>,
    wake: Condvar,
}

impl Shared {
    /// Queues a job on the spawning worker's own deque (or the
    /// injector for external spawners) and wakes a sleeper.
    fn push_job(&self, job: Job, worker: Option<usize>) {
        match worker {
            Some(i) => self.deques[i].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        // Taking the idle lock before notifying pairs with the
        // workers' check-then-wait under the same lock: a wakeup for
        // this job cannot be lost.
        let _guard = self.idle.lock().unwrap();
        self.wake.notify_all();
    }

    /// Finds the next job: own deque (LIFO), then the injector, then a
    /// steal sweep over the other deques (FIFO).
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(i) = me {
            if let Some(job) = self.deques[i].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Whether any queue holds a job (sleep-gate check, taken under the
    /// idle lock so it cannot race a push).
    fn any_pending(&self) -> bool {
        !self.injector.lock().unwrap().is_empty()
            || self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }
}

thread_local! {
    /// `(pool identity, worker index)` of the current thread, if it is
    /// a pool worker. The identity pins spawns to the *owning* pool:
    /// a worker of pool A running a scope of pool B spawns into B's
    /// injector, not its own deque.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

fn current_worker(shared: &Arc<Shared>) -> Option<usize> {
    WORKER.with(Cell::get).and_then(|(pool, index)| {
        (pool == Arc::as_ptr(shared) as usize).then_some(index)
    })
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&shared) as usize, index))));
    loop {
        if let Some(job) = shared.find_job(Some(index)) {
            job();
            continue;
        }
        let guard = shared.idle.lock().unwrap();
        if guard.shutdown {
            return;
        }
        if shared.any_pending() {
            continue; // a job raced in between find_job and the lock
        }
        // Timed wait as a belt-and-braces liveness net; the real wakeup
        // is the push-side notify under the idle lock.
        let (guard, _) = shared
            .wake
            .wait_timeout(guard, Duration::from_millis(10))
            .unwrap();
        if guard.shutdown {
            return;
        }
    }
}

/// A work-stealing thread pool. See the [module docs](self).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// A pool with `threads` total execution contexts: `threads - 1`
    /// workers plus the thread calling [`ThreadPool::scope`], which
    /// always helps. `threads = 1` (or 0) runs every job inline on the
    /// caller.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(IdleState { shutdown: false }),
            wake: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("taskprune-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// The shared pool behind `par_iter` and the free [`scope`]. Sized
    /// once, from `TASKPRUNE_THREADS` (a positive number, or `max` /
    /// unset / unparsable for every hardware thread).
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(configured_threads()))
    }

    /// Total execution contexts (workers + the helping caller).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] handle for spawning borrowed jobs,
    /// then executes/steals jobs until every spawn has finished. The
    /// first job panic is re-thrown here after the rest complete.
    ///
    /// The scope body itself runs under `catch_unwind`: spawned jobs
    /// hold lifetime-erased borrows into the caller's frame, so the
    /// completion wait **must** happen even when `f` panics — skipping
    /// it would let workers write into freed stack memory while the
    /// panic unwinds. The body's panic is re-thrown only after every
    /// spawned job has finished.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                sync: Mutex::new(()),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        let me = current_worker(&scope.shared);
        loop {
            if scope.state.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            // Help: run anything runnable (possibly other scopes' jobs
            // — they only shorten the wait).
            if let Some(job) = scope.shared.find_job(me) {
                job();
                continue;
            }
            let guard = scope.state.sync.lock().unwrap();
            if scope.state.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            // Timed: a job queued after find_job failed must be picked
            // up even though only workers get the push-side notify.
            let _ = scope
                .state
                .done
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
        let result = match result {
            Ok(result) => result,
            Err(payload) => resume_unwind(payload),
        };
        if let Some(payload) = scope.state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.idle.lock().unwrap().shutdown = true;
        self.wake_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl ThreadPool {
    fn wake_all(&self) {
        let _guard = self.shared.idle.lock().unwrap();
        self.shared.wake.notify_all();
    }
}

fn configured_threads() -> usize {
    let hw = || {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    };
    match std::env::var("TASKPRUNE_THREADS") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() || v.eq_ignore_ascii_case("max") {
                hw()
            } else {
                v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(hw)
            }
        }
        Err(_) => hw(),
    }
}

/// `rayon::current_num_threads` lookalike for the global pool.
pub fn current_num_threads() -> usize {
    ThreadPool::global().num_threads()
}

// ---------------------------------------------------------------------
// Scoped spawning.
// ---------------------------------------------------------------------

struct ScopeState {
    /// Spawned-but-unfinished job count; the scope's completion latch.
    pending: AtomicUsize,
    sync: Mutex<()>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Handle for spawning jobs that may borrow data alive for `'scope`
/// (the caller of [`ThreadPool::scope`] blocks until all of them
/// finish, exactly like `rayon::scope`).
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the pool. Spawns from a worker thread go to that
    /// worker's own deque (stolen by idle peers); spawns from outside
    /// go to the shared injector.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.panic.lock().unwrap().get_or_insert(payload);
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = state.sync.lock().unwrap();
                state.done.notify_all();
            }
        });
        // SAFETY: the scope's completion latch keeps this job from
        // outliving 'scope — ThreadPool::scope does not return until
        // `pending` hits zero, and the borrowed data outlives that
        // call by construction of the 'scope lifetime.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job)
        };
        self.shared.push_job(job, current_worker(&self.shared));
    }
}

/// Scoped spawning on the [global pool](ThreadPool::global), mirroring
/// `rayon::scope`.
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    ThreadPool::global().scope(f)
}

// ---------------------------------------------------------------------
// Parallel iterators (the subset this workspace uses).
// ---------------------------------------------------------------------

/// Borrowing entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> O + Sync,
        O: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, O: Send, F: Fn(&'a T) -> O + Sync> ParMap<'a, T, F> {
    /// Evaluates the map on the global work-stealing pool — one job per
    /// item, so skewed per-item durations rebalance across workers
    /// instead of idling behind the old contiguous-chunk split — and
    /// collects results in input order (each job writes its own slot).
    pub fn collect<B: FromIterator<O>>(self) -> B {
        let n = self.items.len();
        let pool = ThreadPool::global();
        if pool.num_threads() <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let mut slots: Vec<Option<O>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let f = &self.f;
        pool.scope(|s| {
            for (slot, item) in slots.iter_mut().zip(self.items) {
                s.spawn(move || *slot = Some(f(item)));
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("scope completed every job"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u64> =
            input.par_iter().map(|&x| u64::from(x) * 2).collect();
        let expected: Vec<u64> =
            input.iter().map(|&x| u64::from(x) * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn works_on_empty_input() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn scope_runs_every_job_once() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn scope_jobs_write_borrowed_slots() {
        let pool = ThreadPool::new(3);
        let mut out = vec![0usize; 64];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn nested_spawns_from_workers_complete() {
        // Jobs that themselves spawn: worker-side spawns land in the
        // worker's own deque and still finish before the scope returns.
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let counter = &counter;
                s.spawn(move || {
                    // Nested scope on the same (global-free) pool path:
                    // plain additional work, spawned mid-job.
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn one_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.num_threads(), 1);
        let tid = std::thread::current().id();
        let mut ran_on = None;
        pool.scope(|s| {
            s.spawn(|| ran_on = Some(std::thread::current().id()));
        });
        assert_eq!(ran_on, Some(tid));
    }

    #[test]
    fn skewed_jobs_all_finish() {
        // A few heavy jobs among many light ones: with chunking the
        // heavies would pile onto one worker; stealing rebalances. The
        // assertion is completion + order preservation.
        let input: Vec<u64> = (0..256).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map(|&x| {
                if x % 67 == 0 {
                    // Busy-ish work.
                    (0..20_000u64).fold(x, |a, b| a.wrapping_add(b % 13))
                } else {
                    x
                }
            })
            .collect();
        assert_eq!(out.len(), 256);
        assert_eq!(out[1], 1);
        assert_eq!(out[133], 133);
    }

    #[test]
    fn scope_propagates_the_first_panic() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {});
            });
        }));
        assert!(result.is_err(), "scope must re-throw the job panic");
    }

    #[test]
    fn panicking_scope_body_still_waits_for_spawned_jobs() {
        // The soundness-critical path: jobs borrow the caller's frame
        // (lifetime-erased), so a panic in the scope *body* must not
        // skip the completion wait — workers would otherwise write
        // into freed stack memory while the panic unwinds.
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..64 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("scope body bails after spawning");
            });
        }));
        assert!(result.is_err(), "the body panic must still propagate");
        assert_eq!(
            counter.load(Ordering::SeqCst),
            64,
            "every spawned job must have completed before the scope \
             returned control to the unwinding caller"
        );
    }

    #[test]
    fn threads_env_parsing() {
        // Only the pure parser is testable without mutating the global
        // environment; exercise its fallback edges via the public pool.
        assert!(configured_threads() >= 1);
        assert!(ThreadPool::global().num_threads() >= 1);
    }
}
