//! Vendored stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! a minimal serialization framework under the same crate name. Instead
//! of serde's visitor architecture it uses a concrete [`Value`] tree:
//! [`Serialize`] renders a value into the tree, [`Deserialize`] rebuilds
//! one from it, and `serde_json` maps the tree to and from JSON text.
//! The derive macros (re-exported from `serde_derive`) cover plain
//! structs and enums, which is all this workspace uses — `#[serde(...)]`
//! field attributes are not supported.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::VecDeque;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (all Rust unsigned ints widen to this).
    UInt(u64),
    /// Signed integer (only used for negative values).
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Key–value map with stable field order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::missing_field(name)),
            other => Err(Error::unexpected("object", other)),
        }
    }

    /// Looks up a field of an object by name, returning `None` when the
    /// field is absent (the forward-compatible decode convention: data
    /// written before a field existed must keep loading). Non-objects
    /// also yield `None`.
    pub fn get_opt(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// A missing object field.
    pub fn missing_field(name: &str) -> Self {
        Self::custom(format!("missing field `{name}`"))
    }

    /// A type mismatch against the value tree.
    pub fn unexpected(wanted: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Self::custom(format!("expected {wanted}, found {kind}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds an instance from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Err(Error::unexpected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Int(n)
                } else {
                    Value::UInt(n as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Err(Error::unexpected("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::unexpected("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+) : $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::unexpected(
                        concat!("array of length ", $len),
                        other,
                    )),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0): 1;
    (A.0, B.1): 2;
    (A.0, B.1, C.2): 3;
    (A.0, B.1, C.2, D.3): 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
