//! Vendored stand-in for `serde_json`: renders the [`serde::Value`] tree
//! of the vendored serde stub to JSON text and parses it back.
//!
//! Floats are written with Rust's shortest-roundtrip `{:?}` formatting,
//! so `to_string` → `from_str` is bit-exact for finite `f64`s. Non-finite
//! floats are rejected, matching real serde_json's default behaviour.

use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};

pub use serde::Error;

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes a value as JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

/// Deserializes a value from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::custom(format!("io error: {e}")))?;
    from_str(&text)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            let text = format!("{x:?}");
            out.push_str(&text);
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::custom(format!(
                "expected `{}`, found `{}`",
                b as char, got as char
            )));
        }
        Ok(())
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))?
        {
            b'n' => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b']' => return Ok(Value::Array(items)),
                        other => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b'}' => return Ok(Value::Object(fields)),
                        other => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => {
                    match self.bump()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = self.bump()?;
                                code = code * 16
                                    + (d as char).to_digit(16).ok_or_else(
                                        || Error::custom("bad \\u escape"),
                                    )?;
                            }
                            out.push(char::from_u32(code).ok_or_else(
                                || Error::custom("bad \\u escape"),
                            )?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "bad escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                byte => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && self.bytes[end] & 0xC0 == 0x80
                    {
                        end += 1;
                    }
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let chunk =
                            std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| Error::custom("invalid UTF-8"))?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom("expected number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad float `{text}`")))
        } else if text.starts_with('-') {
            // Parse the signed text directly: negating a parsed u64
            // magnitude would overflow on i64::MIN.
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("0.1").unwrap(), 0.1);
        let x = 0.1f64 + 0.2;
        let text = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&text).unwrap(), x);
    }

    #[test]
    fn signed_integer_extremes_roundtrip() {
        let text = to_string(&i64::MIN).unwrap();
        assert_eq!(text, "-9223372036854775808");
        assert_eq!(from_str::<i64>(&text).unwrap(), i64::MIN);
        assert_eq!(from_str::<i64>("9223372036854775807").unwrap(), i64::MAX);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let text = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn option_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
