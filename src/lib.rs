//! Umbrella crate for the `taskprune` reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so the integration
//! tests in `tests/` and the runnable examples in `examples/` can reach
//! the whole system through a single dependency. Library users should
//! depend on the individual crates (most importantly [`taskprune`]).

pub use taskprune;
pub use taskprune_heuristics as heuristics;
pub use taskprune_model as model;
pub use taskprune_prob as prob;
pub use taskprune_sim as sim;
pub use taskprune_workload as workload;
