//! Integration tests for the belief-vs-truth PET split and the learned
//! estimator extension.

use taskprune::extensions::{learn_from_observations, miscalibrate};
use taskprune::prelude::*;
use taskprune::ClusterKind;

fn fixture() -> (Cluster, PetMatrix, taskprune_workload::WorkloadTrial) {
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    let truth = petgen.generate();
    let trial = WorkloadConfig {
        total_tasks: 2_000,
        span_tu: 300.0,
        ..WorkloadConfig::paper_default(33)
    }
    .generate_trial(&truth, 0);
    (cluster, truth, trial)
}

fn run_belief(
    cluster: &Cluster,
    belief: &PetMatrix,
    truth: &PetMatrix,
    tasks: &[Task],
) -> SimStats {
    ResourceAllocator::new(cluster, belief, SimConfig::batch(44))
        .truth_pet(truth)
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig::paper_default())
        .run(tasks)
}

#[test]
fn identical_belief_equals_single_matrix_path() {
    let (cluster, truth, trial) = fixture();
    let split = run_belief(&cluster, &truth, &truth, &trial.tasks);
    let single = ResourceAllocator::new(&cluster, &truth, SimConfig::batch(44))
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig::paper_default())
        .run(&trial.tasks);
    assert_eq!(split.robustness_pct(0), single.robustness_pct(0));
    assert_eq!(split.deferrals, single.deferrals);
}

#[test]
fn well_learned_belief_performs_near_oracle() {
    let (cluster, truth, trial) = fixture();
    let oracle = run_belief(&cluster, &truth, &truth, &trial.tasks);
    let learned = learn_from_observations(&truth, 500, 1);
    let with_learned = run_belief(&cluster, &learned, &truth, &trial.tasks);
    let gap =
        (oracle.robustness_pct(100) - with_learned.robustness_pct(100)).abs();
    assert!(gap < 6.0, "500-sample belief {gap:.1} pp from oracle");
}

#[test]
fn strongly_optimistic_belief_degrades_robustness() {
    let (cluster, truth, trial) = fixture();
    let oracle = run_belief(&cluster, &truth, &truth, &trial.tasks);
    // Believing everything runs 4x faster than reality: chance
    // estimates become fantasy, the pruner stops pruning, and mapped
    // tasks blow their deadlines.
    let optimistic = miscalibrate(&truth, 0.25);
    let degraded = run_belief(&cluster, &optimistic, &truth, &trial.tasks);
    assert!(
        degraded.robustness_pct(100) < oracle.robustness_pct(100) - 3.0,
        "optimistic belief {:.1}% not clearly below oracle {:.1}%",
        degraded.robustness_pct(100),
        oracle.robustness_pct(100)
    );
}

#[test]
fn shape_mismatched_truth_is_rejected() {
    let (cluster, truth, trial) = fixture();
    let small = taskprune_workload::PetGenConfig {
        n_task_types: 3,
        ..taskprune_workload::PetGenConfig::paper_heterogeneous(1)
    }
    .generate();
    let result = std::panic::catch_unwind(|| {
        run_belief(&cluster, &small, &truth, &trial.tasks)
    });
    assert!(result.is_err(), "shape mismatch must panic loudly");
}
