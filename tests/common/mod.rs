//! Shared tier-1 scaling knob for the slow integration suites.
//!
//! Heavy workloads run at `TASKPRUNE_TEST_SCALE` (default 0.3×) of
//! their original sizes so the edit loop stays fast; each suite's
//! `*_full_scale` `#[ignore]` tests pin the original sizes as a second,
//! heavier tier (`cargo test -- --ignored`).

/// The configured size factor (default 0.3).
pub fn test_scale() -> f64 {
    std::env::var("TASKPRUNE_TEST_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.3)
}

/// `n` scaled by `factor`, rounded, floored at 1.
pub fn scaled(n: u64, factor: f64) -> u64 {
    ((n as f64) * factor).round().max(1.0) as u64
}
