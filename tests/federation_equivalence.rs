//! Federation ≡ single engine: the gateway layer must add sharding
//! without perturbing the paper system it shards.
//!
//! Three layers of proof:
//!
//! 1. **One shard is the engine.** A 1-shard [`GatewayBuilder`] run is
//!    byte-identical to `Engine::run_stream` on serialized `SimStats` —
//!    outcome tables, counters, per-type stats, and (in the traced
//!    variant) the full `TraceLog`. Routing degenerates, id compaction
//!    maps a dense trace onto itself, and the federated driver replays
//!    the engine's event ordering exactly.
//! 2. **Id compaction is lossless.** Property tests feed sparse,
//!    out-of-order and duplicated external ids through the compactor
//!    and a live 3-shard gateway, asserting internal density,
//!    external-id round-trips, and that the federated robustness trim
//!    follows *global arrival order* (not id order).
//! 3. **N shards are reproducible.** The same seed and stream produce a
//!    byte-identical serialized `FederationStats` across runs, for both
//!    stateless and probability-aware routing.

mod common;

use proptest::prelude::*;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_sim::{SchedulerBuilder, TraceLog};
use taskprune_workload::TaskStream;

fn fixture(scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(2_000, scale) as usize,
        span_tu: common::scaled(320, scale) as f64,
        ..WorkloadConfig::paper_default(4321)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn engine_stats(
    cluster: &Cluster,
    pet: &PetMatrix,
    kind: HeuristicKind,
    pruned: bool,
    traced: bool,
    tasks: &[Task],
) -> SimStats {
    let sim = match kind.allocation_mode() {
        taskprune_sim::AllocationMode::Immediate => SimConfig::immediate(55),
        taskprune_sim::AllocationMode::Batch => SimConfig::batch(55),
    };
    let mut b = SchedulerBuilder::new(cluster, pet)
        .config(sim)
        .strategy(kind.make());
    if pruned {
        b = b.pruner(PruningMechanism::new(
            PruningConfig::paper_default(),
            pet.n_task_types(),
        ));
    }
    if traced {
        b.sink(TraceLog::new(1_000_000, 4))
            .build()
            .expect("valid configuration")
            .run_stream(TaskStream::from_tasks(tasks.to_vec()))
    } else {
        b.build()
            .expect("valid configuration")
            .run_stream(TaskStream::from_tasks(tasks.to_vec()))
    }
}

#[allow(clippy::too_many_arguments)]
fn gateway_stats(
    cluster: &Cluster,
    pet: &PetMatrix,
    kind: HeuristicKind,
    pruned: bool,
    traced: bool,
    shards: usize,
    policy: Box<dyn RoutePolicy>,
    tasks: &[Task],
) -> FederationStats {
    let sim = match kind.allocation_mode() {
        taskprune_sim::AllocationMode::Immediate => SimConfig::immediate(55),
        taskprune_sim::AllocationMode::Batch => SimConfig::batch(55),
    };
    let n_types = pet.n_task_types();
    let mut b = GatewayBuilder::new(cluster, pet)
        .config(sim)
        .shards(shards)
        .policy_boxed(policy)
        .strategy_with(move |_| kind.make());
    if pruned {
        b = b.pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        });
    }
    if traced {
        b.sink_with(|_| TraceLog::new(1_000_000, 4))
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied())
    } else {
        b.build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied())
    }
}

fn assert_one_shard_is_the_engine(
    kind: HeuristicKind,
    pruned: bool,
    traced: bool,
    scale: f64,
) {
    let (cluster, pet, tasks) = fixture(scale);
    let single = engine_stats(&cluster, &pet, kind, pruned, traced, &tasks);
    let federated = gateway_stats(
        &cluster,
        &pet,
        kind,
        pruned,
        traced,
        1,
        Box::new(RoundRobinRoute::new()),
        &tasks,
    );
    assert_eq!(federated.per_shard.len(), 1);
    assert_eq!(single.unreported(), 0);
    assert_eq!(
        json(&single),
        json(&federated.per_shard[0]),
        "{kind:?} pruned={pruned} traced={traced}: \
         1-shard gateway diverged from Engine::run_stream"
    );
    // The compaction layer was the identity on this dense trace.
    for (i, a) in federated.arrivals().iter().enumerate() {
        assert_eq!(a.shard, 0);
        assert_eq!(a.internal.0 as usize, i);
        assert_eq!(a.external, a.internal);
    }
    // And the federated trim equals the single-cluster trim.
    assert_eq!(
        federated.paper_robustness_pct(),
        single.paper_robustness_pct()
    );
}

#[test]
fn one_shard_batch_is_bit_identical() {
    assert_one_shard_is_the_engine(
        HeuristicKind::Mm,
        false,
        false,
        common::test_scale(),
    );
}

#[test]
fn one_shard_batch_pruned_is_bit_identical() {
    assert_one_shard_is_the_engine(
        HeuristicKind::Msd,
        true,
        false,
        common::test_scale(),
    );
}

#[test]
fn one_shard_immediate_pruned_is_bit_identical() {
    assert_one_shard_is_the_engine(
        HeuristicKind::Mct,
        true,
        false,
        common::test_scale(),
    );
}

#[test]
fn one_shard_traced_carries_the_identical_trace() {
    assert_one_shard_is_the_engine(
        HeuristicKind::Mm,
        true,
        true,
        common::test_scale() * 0.5,
    );
}

#[test]
fn n_shard_runs_are_seed_reproducible() {
    let (cluster, pet, tasks) = fixture(common::test_scale());
    for policy in 0..3 {
        let run = || -> FederationStats {
            let boxed: Box<dyn RoutePolicy> = match policy {
                0 => Box::new(RoundRobinRoute::new()),
                1 => Box::new(LeastQueuedRoute::new()),
                _ => Box::new(BestChanceRoute::new()),
            };
            gateway_stats(
                &cluster,
                &pet,
                HeuristicKind::Mm,
                true,
                false,
                4,
                boxed,
                &tasks,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.unreported(), 0);
        assert_eq!(
            json(&a),
            json(&b),
            "policy #{policy}: federated run diverged between \
             identical runs"
        );
        // The fan-in accounted for every arrival exactly once.
        assert_eq!(a.n_tasks(), tasks.len());
        let merged = a.merged();
        assert_eq!(merged.n_tasks(), tasks.len());
        assert_eq!(merged.unreported(), 0);
    }
}

#[test]
fn shards_see_decorrelated_execution_streams() {
    // With >1 shard the per-shard ground-truth RNGs must differ: a
    // 2-shard round-robin split of one stream must not give both
    // shards identical sampled durations. (Shard 0 keeps the base
    // seed; shard 1 derives.)
    let (cluster, pet, tasks) = fixture(common::test_scale());
    let stats = gateway_stats(
        &cluster,
        &pet,
        HeuristicKind::Mm,
        false,
        false,
        2,
        Box::new(RoundRobinRoute::new()),
        &tasks,
    );
    assert_eq!(stats.per_shard.len(), 2);
    // Both shards did real work.
    for s in &stats.per_shard {
        assert!(s.n_arrived() > 0);
        assert_eq!(s.unreported(), 0);
    }
    let ticks0 = stats.per_shard[0].useful_ticks;
    let ticks1 = stats.per_shard[1].useful_ticks;
    assert_ne!(
        (ticks0, stats.per_shard[0].n_arrived()),
        (ticks1, stats.per_shard[1].n_arrived()),
        "independent shards produced identical tick profiles — \
         RNG streams look correlated"
    );
}

// ---------------------------------------------------------------------
// Property tests: id compaction under sparse / out-of-order / duplicate
// external ids.
// ---------------------------------------------------------------------

use taskprune_model::{TaskId, TaskTypeId};
use taskprune_sim::IdCompactor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compactor round-trip: any assignment sequence (sparse ids,
    /// repeats, arbitrary shard interleaving) yields dense per-shard
    /// internal ids that recover their external id exactly.
    #[test]
    fn compactor_round_trips_any_assignment(
        raw in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let n_shards = 3usize;
        let mut compact = IdCompactor::new(n_shards);
        let mut assigned: Vec<(usize, TaskId, u64)> = Vec::new();
        for (i, r) in raw.iter().enumerate() {
            // Snowflake-ish sparse external id, with forced repeats.
            let external = if i % 7 == 3 && i > 0 {
                assigned[i - 1].2 // duplicate the previous external id
            } else {
                r.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            };
            let shard = (r % n_shards as u64) as usize;
            let internal = compact.assign(shard, TaskId(external));
            assigned.push((shard, internal, external));
        }
        // Internal ids are dense (0..len) per shard, in assignment
        // order.
        let mut next = vec![0u64; n_shards];
        for &(shard, internal, external) in &assigned {
            prop_assert_eq!(internal.0, next[shard]);
            next[shard] += 1;
            // Round-trip.
            prop_assert_eq!(
                compact.external(shard, internal),
                Some(TaskId(external))
            );
        }
        for (s, expected) in next.iter().enumerate() {
            prop_assert_eq!(compact.assigned(s), *expected as usize);
        }
    }

    /// End-to-end: sparse / out-of-order / duplicate external ids pushed
    /// through a live 3-shard gateway arrive with dense internal ids,
    /// round-trip through decisions, and feed an arrival-ordered trim.
    #[test]
    fn gateway_absorbs_hostile_external_ids(
        raw in proptest::collection::vec(any::<u32>(), 4..80),
    ) {
        use taskprune_model::{BinSpec, SimTime};
        use taskprune_prob::Pmf;

        // A deterministic single-machine-per-shard system: every task
        // takes exactly 2 bins, deadlines are huge, so every task that
        // is pushed completes (no execution randomness to entangle the
        // property with).
        let pet = PetMatrix::new(
            BinSpec::new(100),
            1,
            1,
            vec![Pmf::point_mass(2)],
        );
        let cluster = Cluster::one_per_type(1);
        let mut gw = GatewayBuilder::new(&cluster, &pet)
            .config(SimConfig::batch(1))
            .shards(3)
            .policy(LeastQueuedRoute::new())
            .strategy_with(|_| {
                HeuristicKind::FcfsRr.make()
            })
            .build_gateway()
            .expect("valid configuration");

        // Push the hostile stream: sparse ids from arbitrary u32s
        // (some duplicated by construction), all arriving at t=0 —
        // arrival order is the push order, never the id order.
        let mut externals = Vec::new();
        for (i, r) in raw.iter().enumerate() {
            let external = if i % 5 == 4 {
                externals[i - 1] // duplicate
            } else {
                (*r as u64).wrapping_mul(1_000_003)
            };
            externals.push(external);
            let t = Task::new(
                external,
                TaskTypeId(0),
                SimTime(0),
                SimTime(100_000_000),
            );
            gw.push_arrival(t);
        }
        // Drain and complete everything the shards started, in waves.
        loop {
            let starts = gw.drain_starts().to_vec();
            if starts.is_empty() {
                break;
            }
            let t = gw.now();
            gw.advance_to(SimTime(t.ticks() + 200));
            for s in &starts {
                prop_assert!(gw.complete(s.shard, s.machine.id, s.internal));
            }
        }
        let stats = gw.finish();
        prop_assert_eq!(stats.n_tasks(), externals.len());
        prop_assert_eq!(stats.unreported(), 0);
        // The global arrival record preserves push order and the
        // external labels, while internals are dense per shard.
        let mut per_shard_next = [0u64; 3];
        for (i, a) in stats.arrivals().iter().enumerate() {
            prop_assert_eq!(a.external.0, externals[i]);
            prop_assert_eq!(
                a.internal.0,
                per_shard_next[a.shard as usize]
            );
            per_shard_next[a.shard as usize] += 1;
        }
        // Arrival-ordered trim: trimming one task per end removes the
        // first and last *pushed* tasks, so the window robustness
        // matches a hand count over the pushed window.
        let trim = 1usize;
        let on_time_window = stats
            .arrivals()
            .iter()
            .skip(trim)
            .take(externals.len() - 2 * trim)
            .filter(|a| {
                matches!(
                    stats.per_shard[a.shard as usize].outcome(a.internal),
                    Some(TaskOutcome::CompletedOnTime)
                )
            })
            .count();
        let expected = 100.0 * on_time_window as f64
            / (externals.len() - 2 * trim) as f64;
        prop_assert!(
            (stats.robustness_pct(trim) - expected).abs() < 1e-9
        );
    }
}

#[test]
#[ignore = "full-size federation sweep; run with --ignored"]
fn full_scale_one_shard_is_bit_identical() {
    for (kind, pruned) in [
        (HeuristicKind::Mm, false),
        (HeuristicKind::Mm, true),
        (HeuristicKind::Msd, true),
        (HeuristicKind::Mct, false),
    ] {
        assert_one_shard_is_the_engine(kind, pruned, false, 1.0);
    }
}
