//! Streaming ≡ batch equivalence: the push-driven ingest path must be
//! **bit-identical** to the legacy `Engine::run(tasks)` shim.
//!
//! Three layers of proof, each across immediate and batch modes:
//!
//! 1. `run(tasks)` vs `run_stream(source)` — the two public entry
//!    points produce byte-identical serialized `SimStats` (outcomes,
//!    counters, per-type stats, and — in the traced variant — the full
//!    `TraceLog`).
//! 2. A *manual* driver written against only the public
//!    `SchedulerCore` API (`advance_to` / `push_arrival` / `complete` /
//!    `wakeup` / `drain_starts`) reproduces `Engine::run` byte for
//!    byte — proving the streaming API is sufficient to rebuild the
//!    discrete-event simulation outside the engine.
//! 3. The same at the paper's workload family via the `TraceSource`
//!    adapter, scaled by `TASKPRUNE_TEST_SCALE` (full size under
//!    `--ignored`).

mod common;

use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_prob::rng::Xoshiro256PlusPlus;
use taskprune_sim::event::{Event, EventKind, EventQueue};
use taskprune_sim::{SchedulerBuilder, TraceLog};
use taskprune_workload::TaskStream;

fn fixture(scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(2_500, scale) as usize,
        span_tu: common::scaled(400, scale) as f64,
        ..WorkloadConfig::paper_default(1234)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

fn builder<'a>(
    cluster: &Cluster,
    pet: &'a PetMatrix,
    kind: HeuristicKind,
    pruned: bool,
) -> SchedulerBuilder<'a> {
    let sim = match kind.allocation_mode() {
        taskprune_sim::AllocationMode::Immediate => SimConfig::immediate(77),
        taskprune_sim::AllocationMode::Batch => SimConfig::batch(77),
    };
    let mut b = SchedulerBuilder::new(cluster, pet)
        .config(sim)
        .strategy(kind.make());
    if pruned {
        b = b.pruner(PruningMechanism::new(
            PruningConfig::paper_default(),
            pet.n_task_types(),
        ));
    }
    b
}

fn json(stats: &SimStats) -> String {
    serde_json::to_string(stats).expect("SimStats serializes")
}

/// Layer 2: a from-scratch discrete-event driver over the *public*
/// streaming core API. Mirrors what `Engine` does internally without
/// using `Engine` — if the public API were missing anything, this would
/// not be writable (or would diverge).
fn drive_manually(
    cluster: &Cluster,
    pet: &PetMatrix,
    kind: HeuristicKind,
    pruned: bool,
    tasks: &[Task],
) -> SimStats {
    let mut core = builder(cluster, pet, kind, pruned)
        .build_core()
        .expect("valid configuration");
    let seed = core.config().seed;
    let mut rng = Xoshiro256PlusPlus::new(seed);
    let mut events = EventQueue::new();
    let mut wakeup_pending = false;
    let mut source = tasks.iter().copied().peekable();

    loop {
        let event_first = match (events.peek(), source.peek()) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(e), Some(t)) => {
                e.time < t.arrival
                    || (e.time == t.arrival
                        && matches!(e.kind, EventKind::Completion { .. }))
            }
        };
        if event_first {
            let event = events.pop().expect("peeked");
            core.advance_to(event.time);
            match event.kind {
                EventKind::Completion { machine, task } => {
                    if !core.complete(machine, task) {
                        continue; // stale after a cancellation
                    }
                }
                EventKind::Wakeup => {
                    wakeup_pending = false;
                    core.wakeup();
                }
                EventKind::Arrival { .. } => {
                    unreachable!("arrivals come from the stream")
                }
            }
        } else {
            let task = source.next().expect("peeked");
            core.advance_to(task.arrival);
            core.push_arrival(task);
        }
        // Sample ground truth for every start the core issued and
        // schedule its completion (belief == truth in this fixture).
        let now = core.now();
        for start in core.drain_starts() {
            let duration = pet.sample_duration(
                start.machine.type_id,
                start.task.type_id,
                &mut rng,
            );
            events.push(Event {
                time: now + duration,
                kind: EventKind::Completion {
                    machine: start.machine.id,
                    task: start.task.id,
                },
            });
        }
        core.drain_decisions();
        // The wakeup safety net for all-deferred batch queues.
        if !wakeup_pending && source.peek().is_none() && events.is_empty() {
            if let Some(earliest) = core.earliest_pending_deadline() {
                events.push(Event {
                    time: taskprune_model::SimTime(
                        earliest.ticks().max(core.now().ticks()) + 1,
                    ),
                    kind: EventKind::Wakeup,
                });
                wakeup_pending = true;
            }
        }
    }
    core.finish()
}

fn assert_equivalent(kind: HeuristicKind, pruned: bool, scale: f64) {
    let (cluster, pet, tasks) = fixture(scale);

    let via_run = builder(&cluster, &pet, kind, pruned)
        .build()
        .expect("valid configuration")
        .run(&tasks);
    let via_stream = builder(&cluster, &pet, kind, pruned)
        .build()
        .expect("valid configuration")
        .run_stream(TaskStream::from_tasks(tasks.clone()));
    let via_core = drive_manually(&cluster, &pet, kind, pruned, &tasks);

    assert_eq!(via_run.unreported(), 0);
    let a = json(&via_run);
    assert_eq!(
        a,
        json(&via_stream),
        "{kind:?} pruned={pruned}: run vs run_stream diverged"
    );
    assert_eq!(
        a,
        json(&via_core),
        "{kind:?} pruned={pruned}: run vs manual core drive diverged"
    );
}

#[test]
fn batch_mode_streaming_is_bit_identical() {
    assert_equivalent(HeuristicKind::Mm, false, common::test_scale());
}

#[test]
fn batch_mode_pruned_streaming_is_bit_identical() {
    assert_equivalent(HeuristicKind::Msd, true, common::test_scale());
}

#[test]
fn immediate_mode_streaming_is_bit_identical() {
    assert_equivalent(HeuristicKind::Mct, false, common::test_scale());
}

#[test]
fn immediate_mode_pruned_streaming_is_bit_identical() {
    assert_equivalent(HeuristicKind::Kpb, true, common::test_scale());
}

#[test]
fn traced_streaming_produces_the_identical_trace() {
    // Serialized SimStats includes the TraceLog: byte equality therefore
    // pins the full event-by-event trace, not just the outcome counts.
    let (cluster, pet, tasks) = fixture(common::test_scale() * 0.5);
    let traced = |stream: bool| -> SimStats {
        let engine = builder(&cluster, &pet, HeuristicKind::Mm, true)
            .sink(TraceLog::new(1_000_000, 4))
            .build()
            .expect("valid configuration");
        if stream {
            engine.run_stream(TaskStream::from_tasks(tasks.clone()))
        } else {
            engine.run(&tasks)
        }
    };
    let batch = traced(false);
    let streamed = traced(true);
    assert!(batch.trace.is_some(), "trace must be captured");
    assert_eq!(json(&batch), json(&streamed));
}

#[test]
#[ignore = "full-size equivalence sweep; run with --ignored"]
fn full_scale_streaming_is_bit_identical() {
    for (kind, pruned) in [
        (HeuristicKind::Mm, false),
        (HeuristicKind::Mm, true),
        (HeuristicKind::Msd, true),
        (HeuristicKind::Mct, false),
        (HeuristicKind::Kpb, true),
    ] {
        assert_equivalent(kind, pruned, 1.0);
    }
}
