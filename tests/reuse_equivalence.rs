//! Function-reuse gate invariants.
//!
//! 1. **Off is invisible.** A gateway built with
//!    `ReusePolicy::Off` (the default) serializes byte-identically to
//!    one that never mentions reuse at all, under both the serial and
//!    the parallel driver, at every (seed, shards, threads) tested —
//!    and an *enabled* gate on a duplicate-free stream is equally
//!    invisible, because a gate that never fires must not perturb the
//!    simulation or the wire shape.
//! 2. **Reuse is driver-agnostic.** With duplicates injected and the
//!    gate absorbing them (exact and merge policies), the parallel
//!    driver still serializes byte-identically to the serial one at
//!    every thread count.
//! 3. **Reuse never hurts robustness** (property test): on
//!    duplicate-bearing streams, absorbing duplicates onto in-flight
//!    primaries yields paper-trim robustness no worse than executing
//!    every duplicate — the followers ride completions that arrive no
//!    later than their own queued executions would have.
//! 4. **Healing composes with merging.** A full-budget supervised run
//!    of a *merging* federation under a seeded fault storm serializes
//!    byte-identically to the fault-free merging run: piggybacked
//!    absorptions journal and replay like any other arrival.

mod common;

use proptest::prelude::*;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_model::SimTime;
use taskprune_sim::RecoveryActionKind;
use taskprune_workload::TaskStream;

fn fixture(seed: u64, scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(1_500, scale) as usize,
        span_tu: common::scaled(260, scale) as f64,
        ..WorkloadConfig::paper_default(seed)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

/// `tasks` with content-keyed duplicates injected at `rate` from a
/// dedicated duplicate-stream seed.
fn with_duplicates(tasks: &[Task], rate: f64, seed: u64) -> Vec<Task> {
    TaskStream::from_tasks(tasks.to_vec())
        .with_duplicate_rate(rate, seed)
        .collect()
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn builder<'a>(
    cluster: &Cluster,
    pet: &'a PetMatrix,
    shards: usize,
) -> GatewayBuilder<'a, taskprune_sim::NullSink> {
    let n_types = pet.n_task_types();
    GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(55))
        .shards(shards)
        .policy(RoundRobinRoute::new())
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        })
}

/// Runs the federation under `policy` through the serial driver
/// (`threads == None`) or the parallel driver.
fn run(
    cluster: &Cluster,
    pet: &PetMatrix,
    shards: usize,
    threads: Option<usize>,
    policy: ReusePolicy,
    tasks: &[Task],
) -> FederationStats {
    let b = builder(cluster, pet, shards).reuse(policy);
    match threads {
        None => b
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
        Some(t) => b
            .threads(t)
            .build_parallel()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
    }
}

/// A merge window of half a time unit — wide enough to coalesce
/// same-type neighbours in the paper workload, narrow enough that the
/// primary's deadline conservatively bounds every follower's.
fn merge_policy() -> ReusePolicy {
    ReusePolicy::merge(SimTime(taskprune_model::TICKS_PER_TIME_UNIT / 2))
}

// ---------------------------------------------------------------------
// Guarantee 1: Off is invisible — the pre-reuse gateway, bit for bit.
// ---------------------------------------------------------------------

/// A builder that never mentions reuse and one with `ReusePolicy::Off`
/// produce byte-identical stats under both drivers, across seeds,
/// shard counts and thread counts — including on duplicate-bearing
/// streams, where an off gate must not absorb anything.
#[test]
fn off_matches_reuse_free_gateway_across_drivers() {
    let scale = common::test_scale();
    for seed in [55u64, 7] {
        let (cluster, pet, base) = fixture(4321 + seed, scale);
        for rate in [0.0, 0.3] {
            let tasks = with_duplicates(&base, rate, 0xD0B1);
            for shards in [1usize, 3] {
                let silent = builder(&cluster, &pet, shards)
                    .build()
                    .expect("valid configuration")
                    .run_stream(tasks.iter().copied());
                assert_eq!(silent.unreported(), 0);
                let reference = json(&silent);
                assert!(
                    !reference.contains("reuse"),
                    "reuse counters must stay off the stats wire shape"
                );
                let off =
                    run(&cluster, &pet, shards, None, ReusePolicy::Off, &tasks);
                assert_eq!(off.reuse_stats(), ReuseStats::default());
                assert_eq!(
                    reference,
                    json(&off),
                    "seed={seed} rate={rate} shards={shards}: explicit \
                     Off diverged from a reuse-free gateway"
                );
                for threads in [1usize, 4] {
                    let par = run(
                        &cluster,
                        &pet,
                        shards,
                        Some(threads),
                        ReusePolicy::Off,
                        &tasks,
                    );
                    assert_eq!(
                        reference,
                        json(&par),
                        "seed={seed} rate={rate} shards={shards} \
                         threads={threads}: parallel Off diverged"
                    );
                }
            }
        }
    }
}

/// An *enabled* gate that never fires is equally invisible: the
/// generated trial has unique content keys, so exact dedup registers
/// every arrival and absorbs none.
#[test]
fn idle_enabled_gate_is_invisible() {
    let (cluster, pet, tasks) = fixture(4376, common::test_scale());
    let silent = builder(&cluster, &pet, 3)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());
    let exact = run(&cluster, &pet, 3, None, ReusePolicy::ExactOnly, &tasks);
    assert_eq!(exact.reuse_stats(), ReuseStats::default());
    assert_eq!(
        json(&silent),
        json(&exact),
        "an exact-dedup gate on a duplicate-free stream must be a no-op"
    );
}

// ---------------------------------------------------------------------
// Guarantee 2: absorbing duplicates is driver-agnostic.
// ---------------------------------------------------------------------

/// With duplicates flowing and the gate absorbing them, the parallel
/// driver matches the serial one byte for byte at every thread count,
/// for both the exact and the merging policy.
#[test]
fn reuse_matches_across_drivers_on_duplicate_streams() {
    let (cluster, pet, base) = fixture(9876, common::test_scale());
    let tasks = with_duplicates(&base, 0.3, 0xD0B1);
    for policy in [ReusePolicy::ExactOnly, merge_policy()] {
        let serial = run(&cluster, &pet, 3, None, policy, &tasks);
        assert_eq!(serial.unreported(), 0);
        assert!(
            serial.reuse_stats().absorbed() > 0,
            "{policy:?}: the fixture must actually exercise the gate"
        );
        let serial_json = json(&serial);
        for threads in [1usize, 2, 8] {
            let par = run(&cluster, &pet, 3, Some(threads), policy, &tasks);
            assert_eq!(
                serial_json,
                json(&par),
                "{policy:?} threads={threads}: parallel reuse diverged"
            );
            assert_eq!(par.reuse_stats(), serial.reuse_stats());
        }
    }
}

// ---------------------------------------------------------------------
// Guarantee 3 (property): reuse never lowers robustness.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On duplicate-bearing streams, absorbing duplicates (exact or
    /// merging) yields robustness no worse than executing every
    /// duplicate independently: followers ride a completion that
    /// arrives no later than their own queued execution would have,
    /// and the shed load speeds everything else up.
    #[test]
    fn reuse_never_lowers_robustness(
        seed in 0u64..1_000,
        rate in 0.1f64..0.4,
        shards in 1usize..4,
    ) {
        let scale = common::test_scale() * 0.5;
        let (cluster, pet, base) = fixture(7_000 + seed, scale);
        let tasks = with_duplicates(&base, rate, seed ^ 0xD0B1);
        let off = run(
            &cluster, &pet, shards, None, ReusePolicy::Off, &tasks,
        );
        let baseline = off.paper_robustness_pct();
        for policy in [ReusePolicy::ExactOnly, merge_policy()] {
            let reused = run(&cluster, &pet, shards, None, policy, &tasks);
            prop_assert!(reused.unreported() == 0);
            let got = reused.paper_robustness_pct();
            prop_assert!(
                got >= baseline - 1e-9,
                "{policy:?}: robustness fell from {baseline:.3} to \
                 {got:.3} at rate {rate:.2}, {shards} shard(s)"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Guarantee 4: healing composes with merging.
// ---------------------------------------------------------------------

/// A fault storm with a full retry budget heals a *merging* run back
/// to byte-identity with the fault-free merging run, under both
/// supervisors: journaled piggybacks replay exactly.
#[test]
fn full_budget_storm_heals_a_merging_run_bit_identically() {
    let (cluster, pet, base) = fixture(4321, common::test_scale());
    let tasks = with_duplicates(&base, 0.3, 0xD0B1);
    let shards = 3;
    let reference = run(&cluster, &pet, shards, None, merge_policy(), &tasks);
    assert!(
        reference.reuse_stats().absorbed() > 0,
        "fixture must actually merge"
    );
    let reference_json = json(&reference);
    let plan = FaultPlan::generate(
        0xFA01,
        &FaultSpec::storm(shards, (tasks.len() / shards).max(8) as u64),
    );
    assert!(!plan.is_empty());
    let healing = RecoveryPolicy {
        retry_budget: 32,
        ..RecoveryPolicy::default()
    };

    let engine = builder(&cluster, &pet, shards)
        .reuse(merge_policy())
        .build()
        .expect("valid configuration");
    let mut sup = Supervisor::new(engine, healing);
    sup.arm(plan.clone());
    let healed = sup.run_stream(tasks.iter().copied());
    assert_eq!(
        reference_json,
        json(&healed),
        "serial healing diverged on a merging run"
    );
    assert!(
        healed
            .recovery_log()
            .count(|k| matches!(k, RecoveryActionKind::FaultDetected { .. }))
            > 0,
        "no fault ever fired — widen the storm span"
    );

    for threads in [1usize, 4] {
        let engine = builder(&cluster, &pet, shards)
            .reuse(merge_policy())
            .threads(threads)
            .build_parallel()
            .expect("valid configuration");
        let mut sup = ParallelSupervisor::new(engine, healing);
        sup.arm(&plan);
        let healed = sup.run_stream(tasks.iter().copied());
        assert_eq!(
            reference_json,
            json(&healed),
            "{threads}-thread healing diverged on a merging run"
        );
    }
}
