//! The multi-tenant admission layer's headline guarantees (ISSUE pins):
//!
//! 1. **SLA isolation.** A zero-quota tenant's burst is shed at the
//!    federation front door without perturbing any other tenant: the
//!    other tenants' serialized per-tenant slices are bit-identical to
//!    the burst-free run — in both drivers, at every (shards, threads)
//!    point.
//! 2. **Driver agnosticism.** Quotas + the overload degradation
//!    ladder keep serial `Supervisor` ≡ parallel `ParallelSupervisor`
//!    byte-identical on the full serialized `FederationStats` *and*
//!    on the per-tenant slices, at every thread count.
//! 3. **Replay exactness.** Ladder transitions are journaled
//!    (`JournalOp::SlaRung`); a supervised run that heals a fault
//!    storm — crashes recovered from checkpoint + journal replay with
//!    rung transitions inside the replay window — finishes
//!    byte-identical to the fault-free supervised run.
//! 4. **Invisibility when off.** An all-Standard, no-quota, no-ladder
//!    tenancy is byte-identical to a gateway without tenancy, and the
//!    per-tenant counters stay off the stats wire shape.
//! 5. **Property invariants.** Token-bucket accounting never admits
//!    beyond the refill bound, counters conserve submissions, and
//!    ladder transitions are monotone (±1 rung) and deterministic
//!    from (seed, workload) — pinned by proptest over random small
//!    workloads.
//!
//! The CI `tenant-matrix` job runs this suite across
//! `TASKPRUNE_THREADS` ∈ {1, max} × `TASKPRUNE_LADDER` ∈ {on, off};
//! `TASKPRUNE_LADDER` scopes the ladder legs of the matrix tests.

mod common;

use proptest::prelude::*;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_model::TaskTypeId;
use taskprune_sim::{
    LadderConfig, NullSink, RateLimit, RecoveryActionKind, SlaClass,
    TenancyPolicy, TenantBurst, TenantSpec,
};

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn fixture(seed: u64, scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(1_200, scale) as usize,
        span_tu: common::scaled(220, scale) as f64,
        ..WorkloadConfig::paper_default(seed)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

/// A deliberately oversubscribed stream for the ladder tests: deep
/// batch backlogs are what the pressure sensor reads, so this fixture
/// must not shrink under `TASKPRUNE_TEST_SCALE` — the non-vacuity
/// assertions (the ladder must actually trip) depend on its shape.
fn pressure_fixture(seed: u64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: 1_600,
        span_tu: 50.0,
        ..WorkloadConfig::paper_default(seed)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

fn builder<'a>(
    cluster: &'a Cluster,
    pet: &'a PetMatrix,
    shards: usize,
    tenancy: Option<TenancyPolicy>,
) -> GatewayBuilder<'a, NullSink> {
    let n_types = pet.n_task_types();
    let b = GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(55))
        .shards(shards)
        .policy(RoundRobinRoute::new())
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        });
    match tenancy {
        Some(t) => b.tenancy(t),
        None => b,
    }
}

/// Runs one federation: `threads == None` is the serial driver,
/// `Some(t)` the parallel driver at `t` worker threads.
fn run(
    b: GatewayBuilder<NullSink>,
    threads: Option<usize>,
    tasks: &[Task],
) -> FederationStats {
    match threads {
        None => b
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
        Some(t) => b
            .threads(t)
            .build_parallel()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
    }
}

/// The ladder legs the CI matrix selects via `TASKPRUNE_LADDER`:
/// `on` / `off` pin one leg, unset runs both.
fn ladder_legs() -> Vec<bool> {
    match std::env::var("TASKPRUNE_LADDER").as_deref() {
        Ok("on") => vec![true],
        Ok("off") => vec![false],
        _ => vec![true, false],
    }
}

fn ladder_cfg() -> LadderConfig {
    LadderConfig {
        high: 48,
        low: 4,
        sustain: 2,
        retry_after: 64,
    }
}

/// Three lanes: a Premium tenant, an unquota'd Standard tenant, and a
/// zero-quota BestEffort tenant (the isolation victim).
fn isolation_policy() -> TenancyPolicy {
    TenancyPolicy::new(3)
        .tenant(TenantSpec::new(SlaClass::Premium))
        .tenant(TenantSpec::new(SlaClass::Standard))
        .tenant(TenantSpec::new(SlaClass::BestEffort).quota(RateLimit::zero()))
}

/// Three lanes with real quotas, weights and (optionally) the ladder —
/// the degraded-operation configuration the driver-equivalence and
/// replay tests exercise.
fn degraded_policy(ladder: bool) -> TenancyPolicy {
    let p = TenancyPolicy::new(3)
        .tenant(TenantSpec::new(SlaClass::Premium).weight(3))
        .tenant(
            TenantSpec::new(SlaClass::Standard)
                .weight(2)
                .quota(RateLimit::per_ticks(64, 2)),
        )
        .tenant(TenantSpec::new(SlaClass::BestEffort));
    if ladder {
        p.ladder(ladder_cfg())
    } else {
        p
    }
}

// ---------------------------------------------------------------------
// Guarantee 1: SLA isolation — the headline.
// ---------------------------------------------------------------------

/// A zero-quota tenant floods the federation mid-run; every one of its
/// arrivals is shed, and the *other* tenants' per-tenant slices —
/// counters and per-arrival outcomes — serialize bit-identically to
/// the burst-free run, in both drivers, at every (shards, threads).
#[test]
fn zero_quota_burst_degrades_only_its_own_tenant() {
    let scale = common::test_scale();
    let (cluster, pet, tasks) = fixture(8801, scale);
    // The base stream submits on lanes 0 and 1 only; lane 2 exists
    // solely through the burst.
    let base: Vec<Task> =
        tasks.iter().copied().filter(|t| t.id.0 % 3 != 2).collect();
    let burst = TenantBurst {
        tenant: 2,
        lanes: 3,
        start: base[base.len() / 3].arrival.ticks(),
        count: common::scaled(300, scale),
        every: 1,
        type_id: 0,
        deadline_slack: 500,
        seed: 0xB002,
    };
    let spliced = burst.splice(&base);
    assert_eq!(spliced.len(), base.len() + burst.count as usize);

    for shards in [1usize, 3] {
        for threads in [None, Some(1), Some(2)] {
            let calm = run(
                builder(&cluster, &pet, shards, Some(isolation_policy())),
                threads,
                &base,
            );
            let stormy = run(
                builder(&cluster, &pet, shards, Some(isolation_policy())),
                threads,
                &spliced,
            );
            assert_eq!(stormy.unreported(), 0);
            let calm_slices = calm.tenant_slices().expect("tenancy on");
            let storm_slices = stormy.tenant_slices().expect("tenancy on");
            for t in 0..2 {
                assert_eq!(
                    json(&calm_slices[t]),
                    json(&storm_slices[t]),
                    "shards={shards} threads={threads:?} tenant {t}: the \
                     zero-quota burst leaked into another tenant's slice"
                );
            }
            // The victim's accounting: everything submitted, nothing
            // admitted, all of it attributed to the dry bucket.
            let victim = &storm_slices[2].counters;
            assert_eq!(victim.submitted, burst.count);
            assert_eq!(victim.shed_quota, burst.count);
            assert_eq!(victim.admitted, 0);
            assert!((victim.shed_pct() - 100.0).abs() < 1e-12);
            assert!(storm_slices[2].outcomes.is_empty());
            assert_eq!(calm_slices[2].counters.submitted, 0);
        }
    }
}

// ---------------------------------------------------------------------
// Guarantee 2: quotas + ladder stay driver-agnostic.
// ---------------------------------------------------------------------

/// Supervised runs under real quotas — with and without the overload
/// ladder, as scoped by `TASKPRUNE_LADDER` — serialize identically
/// across the serial and parallel supervisors at every thread count,
/// on the full stats wire *and* on the per-tenant slices.
#[test]
fn quotas_and_ladder_stay_driver_agnostic() {
    let (cluster, pet, tasks) = pressure_fixture(7011);
    for ladder in ladder_legs() {
        let serial = Supervisor::new(
            builder(&cluster, &pet, 3, Some(degraded_policy(ladder)))
                .build()
                .expect("valid configuration"),
            RecoveryPolicy::default(),
        )
        .run_stream(tasks.iter().copied());
        assert_eq!(serial.unreported(), 0);
        if ladder {
            assert!(
                serial.recovery_log().count(|k| matches!(
                    k,
                    RecoveryActionKind::OverloadStepUp { .. }
                )) > 0,
                "the oversubscribed fixture must actually trip the ladder"
            );
        }
        let serial_json = json(&serial);
        let serial_slices = json(&serial.tenant_slices().expect("tenancy"));
        for threads in [1usize, 2, 8] {
            let parallel = ParallelSupervisor::new(
                builder(&cluster, &pet, 3, Some(degraded_policy(ladder)))
                    .threads(threads)
                    .build_parallel()
                    .expect("valid configuration"),
                RecoveryPolicy::default(),
            )
            .run_stream(tasks.iter().copied());
            assert_eq!(
                serial_json,
                json(&parallel),
                "ladder={ladder} threads={threads}: drivers diverged"
            );
            assert_eq!(
                serial_slices,
                json(&parallel.tenant_slices().expect("tenancy")),
                "ladder={ladder} threads={threads}: per-tenant slices \
                 diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Guarantee 3: ladder transitions replay exactly across recovery.
// ---------------------------------------------------------------------

/// A supervised run with quotas + ladder that heals a generated fault
/// storm — shard crashes rebuilt from checkpoint + journal replay,
/// with `SlaRung` transitions inside the replay window — serializes
/// identically to the fault-free supervised run, in both drivers.
#[test]
fn ladder_transitions_replay_exactly_across_crash_recovery() {
    let (cluster, pet, tasks) = pressure_fixture(7012);
    let healing = RecoveryPolicy {
        retry_budget: 32,
        ..RecoveryPolicy::default()
    };
    let reference = Supervisor::new(
        builder(&cluster, &pet, 3, Some(degraded_policy(true)))
            .build()
            .expect("valid configuration"),
        healing,
    )
    .run_stream(tasks.iter().copied());
    assert!(
        reference
            .recovery_log()
            .count(|k| matches!(k, RecoveryActionKind::OverloadStepUp { .. }))
            > 0,
        "the reference run must carry rung transitions to replay"
    );
    let reference_json = json(&reference);
    let reference_slices = json(&reference.tenant_slices().expect("tenancy"));

    let span = (tasks.len() / 3).max(8) as u64;
    let plan = FaultPlan::generate(0xFA07, &FaultSpec::storm(3, span));
    assert!(!plan.is_empty());

    let mut sup = Supervisor::new(
        builder(&cluster, &pet, 3, Some(degraded_policy(true)))
            .build()
            .expect("valid configuration"),
        healing,
    );
    sup.arm(plan.clone());
    let healed = sup.run_stream(tasks.iter().copied());
    assert!(
        healed
            .recovery_log()
            .count(|k| matches!(k, RecoveryActionKind::FaultDetected { .. }))
            > 0,
        "no fault ever fired — widen the span"
    );
    assert_eq!(
        reference_json,
        json(&healed),
        "serial healing diverged from fault-free under the ladder"
    );
    assert_eq!(
        reference_slices,
        json(&healed.tenant_slices().expect("tenancy")),
        "serial healing perturbed the per-tenant slices"
    );

    for threads in [1usize, 2] {
        let mut sup = ParallelSupervisor::new(
            builder(&cluster, &pet, 3, Some(degraded_policy(true)))
                .threads(threads)
                .build_parallel()
                .expect("valid configuration"),
            healing,
        );
        sup.arm(&plan);
        let healed = sup.run_stream(tasks.iter().copied());
        assert_eq!(
            reference_json,
            json(&healed),
            "{threads} threads: lane-local healing diverged under the \
             ladder"
        );
    }
}

// ---------------------------------------------------------------------
// Guarantee 4: tenancy off the critical path and off the wire.
// ---------------------------------------------------------------------

/// An all-Standard, no-quota, no-ladder tenancy admits everything and
/// is byte-identical to a federation without tenancy — the stamp, the
/// admission table and the per-tenant accounting are invisible to the
/// simulation. The counters also stay off the serialized wire shape.
#[test]
fn default_tenancy_is_byte_identical_to_no_tenancy() {
    let (cluster, pet, tasks) = fixture(4277, common::test_scale());
    for shards in [1usize, 3] {
        let plain = run(builder(&cluster, &pet, shards, None), None, &tasks);
        assert!(plain.tenant_slices().is_none());
        let plain_json = json(&plain);

        let tenanted = run(
            builder(&cluster, &pet, shards, Some(TenancyPolicy::new(4))),
            None,
            &tasks,
        );
        assert_eq!(
            plain_json,
            json(&tenanted),
            "shards={shards}: a default tenancy perturbed the run"
        );
        let slices = tenanted.tenant_slices().expect("tenancy on");
        assert_eq!(slices.len(), 4);
        let admitted: u64 = slices.iter().map(|s| s.counters.admitted).sum();
        let shed: u64 = slices.iter().map(|s| s.counters.shed()).sum();
        assert_eq!(admitted, tasks.len() as u64);
        assert_eq!(shed, 0);

        let parallel = run(
            builder(&cluster, &pet, shards, Some(TenancyPolicy::new(4))),
            Some(2),
            &tasks,
        );
        assert_eq!(
            plain_json,
            json(&parallel),
            "shards={shards}: default tenancy perturbed the parallel run"
        );

        // Off-wire: no tenancy fields in the serialized stats, and a
        // deserialized copy reports tenancy absent yet re-serializes
        // identically (the recovery-log convention).
        assert!(
            !plain_json.contains("tenant") && !plain_json.contains("rung"),
            "tenancy must stay off the stats wire shape"
        );
        let back: FederationStats =
            serde_json::from_str(&json(&tenanted)).expect("deserialize");
        assert!(back.tenant_slices().is_none());
        assert_eq!(json(&back), plain_json);
    }
}

// ---------------------------------------------------------------------
// Guarantee 5: property invariants over random workloads.
// ---------------------------------------------------------------------

/// A deterministic splitmix-style stream of synthetic tasks: ids are
/// sequential (so lanes interleave), arrivals are non-decreasing with
/// pseudo-random gaps in `0..gap`.
fn synthetic_tasks(n: usize, gap: u64, slack: u64, seed: u64) -> Vec<Task> {
    let mut t = 0u64;
    let mut s = seed | 1;
    (0..n)
        .map(|i| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if gap > 0 {
                t += (s >> 33) % gap;
            }
            Task::new(i as u64, TaskTypeId(0), SimTime(t), SimTime(t + slack))
        })
        .collect()
}

fn shared_fixture() -> &'static (Cluster, PetMatrix) {
    static FIXTURE: std::sync::OnceLock<(Cluster, PetMatrix)> =
        std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let pet = PetGenConfig::paper_heterogeneous(
            taskprune::experiment::PET_MATRIX_SEED,
        )
        .generate();
        (taskprune_workload::machines::heterogeneous_cluster(), pet)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Token-bucket accounting: over any random arrival schedule the
    /// quota'd tenant never exceeds its refill bound (in exact
    /// milli-tokens), counters conserve submissions, and the whole
    /// accounting is identical run-to-run and serial-to-parallel.
    #[test]
    fn quota_accounting_invariants_hold(
        burst in 0u64..5,
        ticks_per_task in 1u64..6,
        n in 30usize..140,
        gap in 0u64..10,
        seed in any::<u64>(),
    ) {
        let (cluster, pet) = shared_fixture();
        let tasks = synthetic_tasks(n, gap, 800, seed);
        let quota = RateLimit::per_ticks(burst, ticks_per_task);
        let policy = || {
            TenancyPolicy::new(2)
                .tenant(TenantSpec::default())
                .tenant(TenantSpec::default().quota(quota))
        };
        let stats =
            run(builder(cluster, pet, 2, Some(policy())), None, &tasks);
        let tenancy = stats.tenancy_stats().expect("tenancy on").clone();
        let c = &tenancy.per_tenant[1];

        // Conservation, per tenant and in total.
        for t in &tenancy.per_tenant {
            prop_assert_eq!(t.submitted, t.admitted + t.shed());
        }
        let total: u64 =
            tenancy.per_tenant.iter().map(|t| t.submitted).sum();
        prop_assert_eq!(total, n as u64);
        prop_assert_eq!(tenancy.per_tenant[0].shed(), 0);

        // The refill bound: the bucket starts at `burst` tasks and
        // refills from t=0 at `rate` milli-tokens/tick off the
        // tenant's own arrival watermark, so admissions can never
        // outrun burst + rate·t_last.
        let last = tasks
            .iter()
            .filter(|t| t.id.0 % 2 == 1)
            .map(|t| t.arrival.ticks())
            .max()
            .unwrap_or(0);
        prop_assert!(
            c.admitted.saturating_mul(1000)
                <= burst * 1000 + quota.rate * last,
            "admitted {} exceeds the token bound (burst {burst}, rate {}, \
             last arrival {last})",
            c.admitted,
            quota.rate,
        );

        // Deterministic and driver-agnostic, including the counters.
        let again =
            run(builder(cluster, pet, 2, Some(policy())), None, &tasks);
        prop_assert_eq!(&json(&stats), &json(&again));
        prop_assert_eq!(
            &json(&stats.tenant_slices().expect("tenancy")),
            &json(&again.tenant_slices().expect("tenancy"))
        );
        let parallel =
            run(builder(cluster, pet, 2, Some(policy())), Some(2), &tasks);
        prop_assert_eq!(&json(&stats), &json(&parallel));
        prop_assert_eq!(
            &json(&stats.tenant_slices().expect("tenancy")),
            &json(&parallel.tenant_slices().expect("tenancy"))
        );
    }

    /// Ladder transitions extracted from the recovery log are always
    /// single-rung steps from the previous rung, stay within
    /// `0..=3`, and the whole supervised run — stats, slices and log —
    /// is a pure function of the (seed, workload) pair.
    #[test]
    fn ladder_transitions_are_monotone_and_deterministic(
        seed in 0u64..500,
        high in 16usize..64,
        sustain in 1u32..4,
    ) {
        let (cluster, pet) = shared_fixture();
        // A dense burst so queues actually deepen.
        let tasks = synthetic_tasks(350, 2, 600, seed.wrapping_mul(97) | 1);
        let policy = || {
            TenancyPolicy::new(3)
                .tenant(TenantSpec::new(SlaClass::Premium))
                .tenant(TenantSpec::new(SlaClass::Standard))
                .tenant(TenantSpec::new(SlaClass::BestEffort))
                .ladder(LadderConfig {
                    high,
                    low: 2,
                    sustain,
                    retry_after: 32,
                })
        };
        let run_once = || {
            Supervisor::new(
                builder(cluster, pet, 2, Some(policy()))
                    .build()
                    .expect("valid configuration"),
                RecoveryPolicy::default(),
            )
            .run_stream(tasks.iter().copied())
        };
        let stats = run_once();
        let log = stats.recovery_log();
        let mut rung = 0u8;
        for action in log.actions() {
            let to = match action.kind {
                RecoveryActionKind::OverloadStepUp { rung: to } => {
                    prop_assert_eq!(to, rung + 1, "up-step must be +1");
                    to
                }
                RecoveryActionKind::OverloadStepDown { rung: to } => {
                    prop_assert!(rung > 0, "down-step below rung 0");
                    prop_assert_eq!(to, rung - 1, "down-step must be -1");
                    to
                }
                _ => continue,
            };
            prop_assert!(to <= 3, "rung escaped the ladder");
            rung = to;
        }
        let again = run_once();
        prop_assert_eq!(&json(&stats), &json(&again));
        prop_assert_eq!(log, again.recovery_log());
    }
}

// ---------------------------------------------------------------------
// Full-scale tier.
// ---------------------------------------------------------------------

#[test]
#[ignore = "full-size tenancy sweep; run with --ignored"]
fn full_scale_isolation_and_driver_agreement() {
    let (cluster, pet, tasks) = fixture(8801, 1.0);
    let base: Vec<Task> =
        tasks.iter().copied().filter(|t| t.id.0 % 3 != 2).collect();
    let burst = TenantBurst {
        tenant: 2,
        lanes: 3,
        start: base[base.len() / 3].arrival.ticks(),
        count: 1_000,
        every: 1,
        type_id: 0,
        deadline_slack: 500,
        seed: 0xB002,
    };
    let spliced = burst.splice(&base);
    for threads in [None, Some(4)] {
        let calm = run(
            builder(&cluster, &pet, 4, Some(isolation_policy())),
            threads,
            &base,
        );
        let stormy = run(
            builder(&cluster, &pet, 4, Some(isolation_policy())),
            threads,
            &spliced,
        );
        let calm_slices = calm.tenant_slices().expect("tenancy on");
        let storm_slices = stormy.tenant_slices().expect("tenancy on");
        for t in 0..2 {
            assert_eq!(
                json(&calm_slices[t]),
                json(&storm_slices[t]),
                "threads={threads:?} tenant {t}"
            );
        }
        assert_eq!(storm_slices[2].counters.shed_quota, burst.count);
    }
}
