//! Property-based tests across the whole stack: random small workloads
//! through the full allocator pipeline must uphold conservation,
//! determinism, and metric bounds for every heuristic × pruning combo.

use proptest::prelude::*;
use taskprune::prelude::*;
use taskprune_model::{BinSpec, Cluster, TaskTypeId};
use taskprune_prob::Pmf;

/// A small random PET matrix (2 machines × 3 task types) with arbitrary
/// two-point execution distributions.
fn arb_pet() -> impl Strategy<Value = PetMatrix> {
    prop::collection::vec((1u64..20, 1u64..20, 0.05f64..0.95), 6).prop_map(
        |cells| {
            let entries: Vec<Pmf> = cells
                .into_iter()
                .map(|(a, b, w)| {
                    let mut pmf = Pmf::from_points(&[(a, w), (a + b, 1.0 - w)])
                        .expect("two-point pmf");
                    pmf.normalise().expect("positive mass");
                    pmf
                })
                .collect();
            PetMatrix::new(BinSpec::new(100), 2, 3, entries)
        },
    )
}

/// A random workload of up to 60 tasks with arbitrary (sorted) arrivals
/// and non-negative slacks.
fn arb_tasks() -> impl Strategy<Value = Vec<Task>> {
    prop::collection::vec((0u64..20_000, 0u64..8_000, 0u16..3), 1..60).prop_map(
        |mut raw| {
            raw.sort_by_key(|&(arr, _, _)| arr);
            raw.into_iter()
                .enumerate()
                .map(|(i, (arr, slack, tt))| {
                    Task::new(
                        i as u64,
                        TaskTypeId(tt),
                        SimTime(arr),
                        SimTime(arr + slack),
                    )
                })
                .collect()
        },
    )
}

fn outcome_total(stats: &SimStats) -> usize {
    [
        TaskOutcome::CompletedOnTime,
        TaskOutcome::CompletedLate,
        TaskOutcome::DroppedReactive,
        TaskOutcome::DroppedProactive,
        TaskOutcome::CancelledRunning,
        TaskOutcome::Rejected,
        TaskOutcome::Unfinished,
    ]
    .iter()
    .map(|&o| stats.count(o))
    .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_and_bounds_hold_for_all_pipelines(
        pet in arb_pet(),
        tasks in arb_tasks(),
        seed in 0u64..1000,
    ) {
        let cluster = Cluster::one_per_type(2);
        for kind in [
            HeuristicKind::Mm,
            HeuristicKind::Msd,
            HeuristicKind::Kpb,
            HeuristicKind::FcfsRr,
        ] {
            let sim = if kind.is_immediate() {
                SimConfig::immediate(seed)
            } else {
                SimConfig::batch(seed)
            };
            for pruning in [None, Some(PruningConfig::paper_default())] {
                let stats =
                    ResourceAllocator::new(&cluster, &pet, sim)
                        .heuristic(kind)
                        .pruning_opt(pruning)
                        .run(&tasks);
                prop_assert_eq!(stats.unreported(), 0);
                prop_assert_eq!(outcome_total(&stats), tasks.len());
                let r = stats.robustness_pct(0);
                prop_assert!((0.0..=100.0).contains(&r));
                let w = stats.wasted_fraction();
                prop_assert!((0.0..=1.0).contains(&w));
            }
        }
    }

    #[test]
    fn pipeline_determinism(
        pet in arb_pet(),
        tasks in arb_tasks(),
        seed in 0u64..1000,
    ) {
        let cluster = Cluster::one_per_type(2);
        let run = || {
            ResourceAllocator::new(&cluster, &pet, SimConfig::batch(seed))
                .heuristic(HeuristicKind::Mmu)
                .pruning(PruningConfig::paper_default())
                .run(&tasks)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.robustness_pct(0), b.robustness_pct(0));
        prop_assert_eq!(a.deferrals, b.deferrals);
        prop_assert_eq!(a.mapping_events, b.mapping_events);
    }

    #[test]
    fn on_time_tasks_really_met_their_deadline(
        pet in arb_pet(),
        tasks in arb_tasks(),
    ) {
        // A task reported on-time must have had a feasible deadline at
        // all (deadline >= arrival + 1 minimum-duration tick).
        let cluster = Cluster::one_per_type(2);
        let stats =
            ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
                .heuristic(HeuristicKind::Mm)
                .run(&tasks);
        for task in &tasks {
            if stats.outcome(task.id)
                == Some(TaskOutcome::CompletedOnTime)
            {
                prop_assert!(task.deadline > task.arrival);
            }
        }
    }
}
