//! The self-healing supervisor's two headline guarantees (ISSUE pins):
//!
//! 1. **Recovery is exact.** With a retry budget covering every
//!    injected fault, a supervised run's serialized `FederationStats`
//!    is bit-identical to the fault-free run's — for the serial
//!    `Supervisor` and the parallel `ParallelSupervisor` alike, and
//!    across explicitly generated fault storms (crashes, lost /
//!    duplicated / delayed completions, transient checkpoint and
//!    recovery failures).
//! 2. **Degradation is graceful and deterministic.** With a zero
//!    retry budget, a permanent shard crash quarantines the shard:
//!    the run still completes, every arrival is accounted for
//!    (`unreported() == 0`), the stranded batch backlog is re-routed
//!    to healthy shards (serial driver), and the `RecoveryLog` is
//!    identical across repeated runs.
//!
//! Plus the supporting contracts: supervision itself never perturbs a
//! fault-free run, `recover_shard` without a journal is the typed
//! `RunError::RecoveryUnavailable`, and the facade's
//! `try_run_federated_supervised` survives a mid-run coordinator
//! restart bit-identically.

mod common;

use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_sim::{FaultEvent, RecoveryActionKind, TraceLog};

/// Two fixed plan seeds — the same pair the CI fault-matrix job pins.
const PLAN_SEEDS: [u64; 2] = [0xFA01, 0xFA02];

fn fixture(scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(1_500, scale) as usize,
        span_tu: common::scaled(260, scale) as f64,
        ..WorkloadConfig::paper_default(4321)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

/// Traced + pruned, so the serialized comparisons carry every
/// per-shard trace event — supervision perturbing a single tick or
/// event would show.
fn builder<'a>(
    cluster: &Cluster,
    pet: &'a PetMatrix,
    shards: usize,
) -> GatewayBuilder<'a, TraceLog> {
    let n_types = pet.n_task_types();
    GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(55))
        .shards(shards)
        .policy(RoundRobinRoute::new())
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        })
        .sink_with(|_| TraceLog::new(1_000_000, 4))
}

/// A storm plan sized to the fixture: ordinals span roughly one
/// shard's share of the arrivals, so the crash and delivery faults
/// actually fire mid-run.
fn storm_plan(seed: u64, shards: usize, tasks: usize) -> FaultPlan {
    let span = (tasks / shards).max(8) as u64;
    FaultPlan::generate(seed, &FaultSpec::storm(shards, span))
}

/// Generous budget: a storm puts at most ~9 faults on one shard, and
/// interleaved transient checkpoint/recovery failures consume extra
/// attempts.
fn healing_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        retry_budget: 32,
        ..RecoveryPolicy::default()
    }
}

// ---------------------------------------------------------------------
// Guarantee 0: supervision alone never perturbs the simulation.
// ---------------------------------------------------------------------

/// A supervised run with no fault plan equals the unsupervised run,
/// byte for byte: checkpoints, journaling, and health checks are pure
/// observation.
#[test]
fn supervision_without_faults_is_invisible() {
    let (cluster, pet, tasks) = fixture(common::test_scale());
    let reference = builder(&cluster, &pet, 3)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());
    assert_eq!(reference.unreported(), 0);

    let engine = builder(&cluster, &pet, 3)
        .build()
        .expect("valid configuration");
    let supervised = Supervisor::new(engine, RecoveryPolicy::default())
        .run_stream(tasks.iter().copied());
    assert_eq!(json(&reference), json(&supervised));
    // The run was healthy, so the log holds checkpoints and nothing
    // else.
    let log = supervised.recovery_log();
    assert!(!log.is_empty(), "auto-checkpoints are logged");
    assert_eq!(
        log.len(),
        log.count(|k| matches!(k, RecoveryActionKind::CheckpointTaken { .. })),
        "a fault-free run logs only checkpoints: {log:?}"
    );

    let engine = builder(&cluster, &pet, 3)
        .threads(2)
        .build_parallel()
        .expect("valid configuration");
    let supervised_par =
        ParallelSupervisor::new(engine, RecoveryPolicy::default())
            .run_stream(tasks.iter().copied());
    assert_eq!(json(&reference), json(&supervised_par));
}

// ---------------------------------------------------------------------
// Guarantee 1: full-budget healing is bit-exact — both drivers.
// ---------------------------------------------------------------------

/// Serial headline: for each fixed plan seed, the supervised run under
/// a generated fault storm serializes identically to the fault-free
/// run, and the log shows the storm was actually fought.
#[test]
fn healed_storm_matches_fault_free_serial() {
    let (cluster, pet, tasks) = fixture(common::test_scale());
    let reference = builder(&cluster, &pet, 3)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());
    let reference_json = json(&reference);

    for seed in PLAN_SEEDS {
        let plan = storm_plan(seed, 3, tasks.len());
        assert!(!plan.is_empty());
        let engine = builder(&cluster, &pet, 3)
            .build()
            .expect("valid configuration");
        let mut sup = Supervisor::new(engine, healing_policy());
        sup.arm(plan.clone());
        let healed = sup.run_stream(tasks.iter().copied());
        assert_eq!(
            reference_json,
            json(&healed),
            "plan seed {seed:#x}: healing diverged from fault-free"
        );
        let log = healed.recovery_log();
        assert!(
            log.count(|k| matches!(
                k,
                RecoveryActionKind::FaultDetected { .. }
            )) > 0,
            "plan seed {seed:#x}: no fault ever fired — widen the span"
        );
        assert_eq!(
            log.count(|k| matches!(k, RecoveryActionKind::Quarantined { .. })),
            0,
            "plan seed {seed:#x}: the budget must cover the storm"
        );
    }
}

/// Parallel headline: the same storms, healed lane-locally, still
/// serialize identically to the fault-free run — at 1 worker thread
/// and at several.
#[test]
fn healed_storm_matches_fault_free_parallel() {
    let (cluster, pet, tasks) = fixture(common::test_scale());
    let reference = builder(&cluster, &pet, 3)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());
    let reference_json = json(&reference);

    for seed in PLAN_SEEDS {
        let plan = storm_plan(seed, 3, tasks.len());
        for threads in [1usize, 4] {
            let engine = builder(&cluster, &pet, 3)
                .threads(threads)
                .build_parallel()
                .expect("valid configuration");
            let mut sup = ParallelSupervisor::new(engine, healing_policy());
            sup.arm(&plan);
            let healed = sup.run_stream(tasks.iter().copied());
            assert_eq!(
                reference_json,
                json(&healed),
                "plan seed {seed:#x}, {threads} threads: lane-local \
                 healing diverged from fault-free"
            );
            assert!(
                healed.recovery_log().count(|k| matches!(
                    k,
                    RecoveryActionKind::FaultDetected { .. }
                )) > 0,
                "plan seed {seed:#x}: no fault fired in the lanes"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Guarantee 2: zero budget degrades gracefully and deterministically.
// ---------------------------------------------------------------------

/// A heavily oversubscribed fixture for the degradation tests: the
/// same task count squeezed into a third of the span, so mapping
/// events defer work and the crash shard's batch queue is non-empty
/// when the quarantine salvages it.
fn oversubscribed_fixture(scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(1_500, scale) as usize,
        span_tu: common::scaled(40, scale) as f64,
        ..WorkloadConfig::paper_default(4321)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

/// The permanent mid-run crash both degradation tests inject.
fn permanent_crash(shard: usize, nth: u64) -> FaultPlan {
    FaultPlan::new(vec![FaultEvent {
        shard,
        kind: FaultKind::ShardCrash,
        nth,
        delay: 0,
    }])
}

/// Serial: budget 0 + permanent crash ⇒ the shard is quarantined, its
/// batch backlog re-routes to the survivors, every arrival is
/// accounted for, and two runs produce the same stats and the same
/// log.
#[test]
fn budget_zero_crash_quarantines_and_reroutes_serial() {
    let (cluster, pet, tasks) = oversubscribed_fixture(common::test_scale());
    let crash_shard = 1usize;
    // Mid-run: roughly half of the crash shard's arrivals ingested.
    let nth = (tasks.len() / 6).max(2) as u64;
    let run = || {
        let engine = builder(&cluster, &pet, 3)
            .build()
            .expect("valid configuration");
        let mut sup = Supervisor::new(engine, RecoveryPolicy::no_retries());
        sup.arm(permanent_crash(crash_shard, nth));
        sup.run_stream(tasks.iter().copied())
    };

    let stats = run();
    assert_eq!(
        stats.unreported(),
        0,
        "a degraded run must still account for every arrival"
    );
    let log = stats.recovery_log();
    assert_eq!(
        log.count(|k| matches!(k, RecoveryActionKind::Quarantined { .. })),
        1,
        "exactly one quarantine: {log:?}"
    );
    let rerouted = log
        .actions()
        .iter()
        .find_map(|a| match a.kind {
            RecoveryActionKind::Quarantined { rerouted } => Some(rerouted),
            _ => None,
        })
        .expect("quarantine action present");
    assert!(
        rerouted > 0,
        "the salvaged batch backlog re-routes to healthy shards"
    );
    // Degradation changed the outcome — this is not the fault-free
    // run.
    let reference = builder(&cluster, &pet, 3)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());
    assert_ne!(json(&reference), json(&stats));
    assert!(stats.count(TaskOutcome::Unfinished) > 0);

    // Deterministic: same stats, same log, run to run.
    let again = run();
    assert_eq!(json(&stats), json(&again));
    assert_eq!(log, again.recovery_log());
}

/// Parallel: budget 0 + permanent crash ⇒ the lane fail-stops
/// (quarantine without the cross-shard re-route — `rerouted == 0` by
/// design), the run completes with every arrival accounted for, and
/// the log is deterministic.
#[test]
fn budget_zero_crash_fail_stops_parallel() {
    let (cluster, pet, tasks) = oversubscribed_fixture(common::test_scale());
    let crash_shard = 1usize;
    let nth = (tasks.len() / 6).max(2) as u64;
    let run = || {
        let engine = builder(&cluster, &pet, 3)
            .threads(2)
            .build_parallel()
            .expect("valid configuration");
        let mut sup =
            ParallelSupervisor::new(engine, RecoveryPolicy::no_retries());
        sup.arm(&permanent_crash(crash_shard, nth));
        sup.run_stream(tasks.iter().copied())
    };

    let stats = run();
    assert_eq!(
        stats.unreported(),
        0,
        "a fail-stopped lane must still account for every arrival"
    );
    let log = stats.recovery_log();
    assert_eq!(
        log.count(|k| matches!(
            k,
            RecoveryActionKind::Quarantined { rerouted: 0 }
        )),
        1,
        "one lane-local quarantine, no cross-shard re-route: {log:?}"
    );
    assert!(stats.count(TaskOutcome::Unfinished) > 0);

    let again = run();
    assert_eq!(json(&stats), json(&again));
    assert_eq!(log, again.recovery_log());
}

// ---------------------------------------------------------------------
// Typed error: recovery without a journal.
// ---------------------------------------------------------------------

/// `recover_shard` on an engine that never enabled journaling is the
/// typed `RunError::RecoveryUnavailable`, not a panic or a silent
/// partial restore.
#[test]
fn recovery_without_a_journal_is_a_typed_error() {
    let (cluster, pet, tasks) = fixture(common::test_scale() * 0.5);
    let mut engine = builder(&cluster, &pet, 3)
        .build()
        .expect("valid configuration");
    let mut source = tasks.iter().copied().peekable();
    engine.run_until(&mut source, (tasks.len() / 3) as u64);
    let snap = engine.checkpoint(1);
    let err = engine
        .recover_shard(1, &snap)
        .expect_err("no journal was ever enabled");
    assert!(
        matches!(err, RunError::RecoveryUnavailable),
        "expected RecoveryUnavailable, got {err:?}"
    );
    assert!(!err.to_string().is_empty());
}

// ---------------------------------------------------------------------
// Facade: supervised runs and cold restarts through the allocator.
// ---------------------------------------------------------------------

fn allocator<'a>(
    cluster: &'a Cluster,
    pet: &'a PetMatrix,
) -> ResourceAllocator<'a> {
    ResourceAllocator::new(cluster, pet, SimConfig::batch(55))
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig::paper_default())
}

/// `try_run_federated_supervised` equals the plain federated run when
/// nothing goes wrong — with and without a mid-run coordinator
/// restart from a snapshot, and with a fully-healed fault storm.
#[test]
fn facade_supervised_restart_matches_uninterrupted() {
    let (cluster, pet, tasks) = fixture(common::test_scale());
    let reference = allocator(&cluster, &pet)
        .try_run_federated(3, Box::new(RoundRobinRoute::new()), &tasks)
        .expect("valid configuration");
    let reference_json = json(&reference);

    // Supervised, no faults, no restart.
    let supervised = allocator(&cluster, &pet)
        .try_run_federated_supervised(
            3,
            Box::new(RoundRobinRoute::new()),
            RecoveryPolicy::default(),
            None,
            None,
            &tasks,
        )
        .expect("valid configuration");
    assert_eq!(reference_json, json(&supervised));

    // Supervised with a cold restart at the midpoint watermark: the
    // coordinator is serialized, dropped, and rebuilt from the wire
    // form before the second half runs.
    let restarted = allocator(&cluster, &pet)
        .try_run_federated_supervised(
            3,
            Box::new(RoundRobinRoute::new()),
            RecoveryPolicy::default(),
            None,
            Some(((tasks.len() / 2) as u64, Box::new(RoundRobinRoute::new()))),
            &tasks,
        )
        .expect("valid configuration");
    assert_eq!(
        reference_json,
        json(&restarted),
        "a cold coordinator restart diverged from the uninterrupted run"
    );

    // Supervised with an armed storm AND a restart: the fault-plan
    // cursor travels inside the coordinator snapshot, so healing
    // stays exact across the restart boundary.
    let stormy = allocator(&cluster, &pet)
        .try_run_federated_supervised(
            3,
            Box::new(RoundRobinRoute::new()),
            healing_policy(),
            Some(storm_plan(PLAN_SEEDS[0], 3, tasks.len())),
            Some(((tasks.len() / 2) as u64, Box::new(RoundRobinRoute::new()))),
            &tasks,
        )
        .expect("valid configuration");
    assert_eq!(
        reference_json,
        json(&stormy),
        "healing across a restart boundary diverged from fault-free"
    );
}

// ---------------------------------------------------------------------
// Full-scale tier.
// ---------------------------------------------------------------------

#[test]
#[ignore = "full-size self-healing sweep; run with --ignored"]
fn full_scale_healed_storms_match_fault_free() {
    let (cluster, pet, tasks) = fixture(1.0);
    let reference = builder(&cluster, &pet, 4)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());
    let reference_json = json(&reference);
    for seed in PLAN_SEEDS {
        let plan = storm_plan(seed, 4, tasks.len());
        let engine = builder(&cluster, &pet, 4)
            .build()
            .expect("valid configuration");
        let mut sup = Supervisor::new(engine, healing_policy());
        sup.arm(plan.clone());
        assert_eq!(
            reference_json,
            json(&sup.run_stream(tasks.iter().copied())),
            "serial, plan seed {seed:#x}"
        );
        let engine = builder(&cluster, &pet, 4)
            .threads(4)
            .build_parallel()
            .expect("valid configuration");
        let mut sup = ParallelSupervisor::new(engine, healing_policy());
        sup.arm(&plan);
        assert_eq!(
            reference_json,
            json(&sup.run_stream(tasks.iter().copied())),
            "parallel, plan seed {seed:#x}"
        );
    }
}
