//! Parallel federation ≡ serial federation: running K shards on K
//! threads must be **purely a wall-clock change**.
//!
//! The contract under test: for every (seed, shard count, thread
//! count), `ParallelFederatedEngine::run_stream` produces a serialized
//! `FederationStats` — per-shard outcome tables, counters, end times,
//! the global arrival record, and (in the traced variants) the full
//! per-shard `TraceLog` — **byte-identical** to the single-threaded
//! `FederatedEngine` on the same inputs. Since the 1-shard serial
//! federation is already pinned to `Engine::run_stream`
//! (`tests/federation_equivalence.rs`), this transitively pins the
//! parallel driver all the way down to the plain engine.
//!
//! Both scheduling regimes are covered:
//!
//! * **stateless routing** (round-robin): arrivals are routed up front
//!   and every shard replays with zero cross-shard barriers;
//! * **state-dependent routing** (least-queued, best-chance): lockstep
//!   epochs — every shard advances to each arrival's watermark before
//!   the coordinator routes on fresh views.
//!
//! A property test feeds hostile arrival bursts (many tasks at the
//! same instant, sparse/duplicated external ids, deadlines tight
//! enough to force reactive and proactive drops) through both drivers.

mod common;

use proptest::prelude::*;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_sim::TraceLog;

fn fixture(seed: u64, scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(1_500, scale) as usize,
        span_tu: common::scaled(260, scale) as f64,
        ..WorkloadConfig::paper_default(seed)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn policy_by_index(policy: usize) -> Box<dyn RoutePolicy> {
    match policy {
        0 => Box::new(RoundRobinRoute::new()),
        1 => Box::new(LeastQueuedRoute::new()),
        _ => Box::new(BestChanceRoute::new()),
    }
}

/// Builds the federation and runs it through the serial driver
/// (`threads == None`) or the parallel driver at the given thread
/// count — everything else identical.
#[allow(clippy::too_many_arguments)]
fn federated_stats(
    cluster: &Cluster,
    pet: &PetMatrix,
    seed: u64,
    shards: usize,
    threads: Option<usize>,
    policy: usize,
    traced: bool,
    tasks: &[Task],
) -> FederationStats {
    let n_types = pet.n_task_types();
    let b = GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(seed))
        .shards(shards)
        .policy_boxed(policy_by_index(policy))
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        });
    match (traced, threads) {
        (false, None) => b
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
        (false, Some(t)) => b
            .threads(t)
            .build_parallel()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
        (true, None) => b
            .sink_with(|_| TraceLog::new(1_000_000, 4))
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
        (true, Some(t)) => b
            .sink_with(|_| TraceLog::new(1_000_000, 4))
            .threads(t)
            .build_parallel()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
    }
}

/// The headline matrix: seeds × shard counts {1, 2, 4} × thread counts
/// {1, 2, 8}, round-robin (the zero-barrier schedule).
#[test]
fn parallel_matches_serial_across_shards_and_threads() {
    let scale = common::test_scale();
    for seed in [55u64, 7u64] {
        let (cluster, pet, tasks) = fixture(4321 + seed, scale);
        for shards in [1usize, 2, 4] {
            let serial = federated_stats(
                &cluster, &pet, seed, shards, None, 0, false, &tasks,
            );
            assert_eq!(serial.unreported(), 0);
            let serial_json = json(&serial);
            for threads in [1usize, 2, 8] {
                let parallel = federated_stats(
                    &cluster,
                    &pet,
                    seed,
                    shards,
                    Some(threads),
                    0,
                    false,
                    &tasks,
                );
                assert_eq!(
                    serial_json,
                    json(&parallel),
                    "seed={seed} shards={shards} threads={threads}: \
                     parallel driver diverged from FederatedEngine"
                );
            }
        }
    }
}

/// State-dependent policies drive the lockstep schedule; the routed
/// views must be exactly as fresh as the serial driver's.
#[test]
fn lockstep_policies_match_serial() {
    let scale = common::test_scale();
    let (cluster, pet, tasks) = fixture(1111, scale);
    for policy in [1usize, 2] {
        let serial =
            federated_stats(&cluster, &pet, 55, 4, None, policy, false, &tasks);
        assert_eq!(serial.unreported(), 0);
        let serial_json = json(&serial);
        for threads in [1usize, 2, 8] {
            let parallel = federated_stats(
                &cluster,
                &pet,
                55,
                4,
                Some(threads),
                policy,
                false,
                &tasks,
            );
            assert_eq!(
                serial_json,
                json(&parallel),
                "policy #{policy} threads={threads}: lockstep schedule \
                 diverged from FederatedEngine"
            );
        }
    }
}

/// The traced variant carries every shard's full `TraceLog` through the
/// serialized comparison — per-event timestamps included, so a lane
/// clock drifting even one tick would show.
#[test]
fn traced_runs_carry_identical_per_shard_traces() {
    let scale = common::test_scale() * 0.5;
    let (cluster, pet, tasks) = fixture(2222, scale);
    for policy in [0usize, 1] {
        let serial =
            federated_stats(&cluster, &pet, 55, 2, None, policy, true, &tasks);
        let parallel = federated_stats(
            &cluster,
            &pet,
            55,
            2,
            Some(2),
            policy,
            true,
            &tasks,
        );
        assert!(
            serial.per_shard.iter().all(|s| s.trace.is_some()),
            "traced fixture must actually record traces"
        );
        assert_eq!(
            json(&serial),
            json(&parallel),
            "policy #{policy}: traced parallel run diverged"
        );
    }
}

/// A caller that re-submits an external id can still complete the
/// superseded instance via its `FedStart` handle — the
/// `Gateway::resolve` latest-wins map no longer strands it.
#[test]
fn superseded_duplicate_external_id_completes_via_internal_handle() {
    use taskprune_model::{BinSpec, SimTime, TaskId, TaskTypeId};
    use taskprune_prob::Pmf;

    let pet = PetMatrix::new(BinSpec::new(100), 1, 1, vec![Pmf::point_mass(2)]);
    let cluster = Cluster::one_per_type(1);
    let mut gw = GatewayBuilder::new(&cluster, &pet)
        .config(SimConfig::batch(1))
        .shards(2)
        .policy(RoundRobinRoute::new())
        .strategy_with(|_| HeuristicKind::FcfsRr.make())
        .build_gateway()
        .expect("valid configuration");

    let external = TaskId(9_999_999);
    let task =
        Task::new(external.0, TaskTypeId(0), SimTime(0), SimTime(100_000));
    // First submission lands on shard 0 and starts executing.
    assert_eq!(
        gw.push_arrival(task),
        Admission::Routed {
            shard: 0,
            internal: TaskId(0)
        }
    );
    let first_start = gw.drain_starts()[0];
    assert_eq!(first_start.shard, 0);
    assert_eq!(first_start.task.id, external);
    // Re-submission of the same external id lands on shard 1 and
    // shadows the first instance in the latest-wins map.
    assert_eq!(
        gw.push_arrival(task),
        Admission::Routed {
            shard: 1,
            internal: TaskId(0)
        }
    );
    let second_start = gw.drain_starts()[0];
    assert_eq!(second_start.shard, 1);
    assert_eq!(gw.resolve(external), Some((1, TaskId(0))));

    // The footgun: by external id only the newest instance is
    // reachable. The fix: the FedStart handle reaches the superseded
    // one directly.
    gw.advance_to(SimTime(500));
    assert!(
        gw.complete_internal(&first_start),
        "superseded instance must complete via its FedStart handle"
    );
    assert!(
        gw.complete_internal(&second_start),
        "latest instance completes too"
    );
    // Both completions are stale the second time around.
    assert!(!gw.complete_internal(&first_start));
    assert!(!gw.complete_internal(&second_start));

    let stats = gw.finish();
    assert_eq!(stats.n_tasks(), 2);
    assert_eq!(stats.unreported(), 0);
    assert_eq!(stats.count(TaskOutcome::CompletedOnTime), 2);
}

// ---------------------------------------------------------------------
// Property test: hostile arrival bursts.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bursts of simultaneous arrivals with sparse/duplicate external
    /// ids and burst-dependent deadlines (tight enough under load to
    /// force reactive drops and pruning) replay bit-identically
    /// through the parallel driver, under both scheduling regimes.
    #[test]
    fn hostile_bursts_replay_bit_identically(
        raw in proptest::collection::vec((any::<u32>(), 0u64..3), 8..60),
    ) {
        use taskprune_model::{BinSpec, SimTime, TaskTypeId};
        use taskprune_prob::Pmf;

        let spread = Pmf::from_points(&[(1, 0.4), (3, 0.4), (6, 0.2)])
            .expect("valid PMF");
        let heavy = Pmf::from_points(&[(2, 0.5), (5, 0.3), (9, 0.2)])
            .expect("valid PMF");
        let pet =
            PetMatrix::new(BinSpec::new(100), 1, 2, vec![spread, heavy]);
        let cluster = Cluster::one_per_type(1);

        // Hostile stream: arrival deltas of 0 (same-instant bursts) or
        // small jumps, snowflake ids with forced repeats, deadlines
        // oscillating between generous and barely-meetable (reactive
        // drops and pruning both fire under a burst).
        let mut stream: Vec<Task> = Vec::with_capacity(raw.len());
        let mut t = 0u64;
        for (i, &(r, delta)) in raw.iter().enumerate() {
            t += delta * 137;
            let external = if i % 6 == 5 {
                stream[i - 1].id.0
            } else {
                (r as u64).wrapping_mul(1_000_003)
            };
            let deadline = t + if r % 3 == 0 { 150 } else { 40_000 };
            stream.push(Task::new(
                external,
                TaskTypeId((r % 2) as u16),
                SimTime(t),
                SimTime(deadline),
            ));
        }

        for policy in [0usize, 1] {
            let run = |threads: Option<usize>| -> FederationStats {
                let b = GatewayBuilder::new(&cluster, &pet)
                    .config(SimConfig::batch(9))
                    .shards(3)
                    .policy_boxed(policy_by_index(policy))
                    .strategy_with(|_| HeuristicKind::FcfsRr.make())
                    .pruner_with(|_| {
                        Box::new(PruningMechanism::new(
                            PruningConfig::paper_default(),
                            2,
                        ))
                    });
                match threads {
                    None => b
                        .build()
                        .expect("valid configuration")
                        .run_stream(stream.iter().copied()),
                    Some(t) => b
                        .threads(t)
                        .build_parallel()
                        .expect("valid configuration")
                        .run_stream(stream.iter().copied()),
                }
            };
            let serial = run(None);
            prop_assert_eq!(serial.unreported(), 0);
            let parallel = run(Some(3));
            prop_assert_eq!(
                json(&serial),
                json(&parallel),
                "policy #{} diverged on a hostile burst stream",
                policy
            );
        }
    }
}

#[test]
#[ignore = "full-size parallel-equivalence sweep; run with --ignored"]
fn full_scale_parallel_matches_serial() {
    let (cluster, pet, tasks) = fixture(4376, 1.0);
    for (shards, threads, policy) in
        [(4usize, 8usize, 0usize), (4, 8, 1), (2, 2, 2)]
    {
        let serial = federated_stats(
            &cluster, &pet, 55, shards, None, policy, false, &tasks,
        );
        let parallel = federated_stats(
            &cluster,
            &pet,
            55,
            shards,
            Some(threads),
            policy,
            false,
            &tasks,
        );
        assert_eq!(
            json(&serial),
            json(&parallel),
            "shards={shards} threads={threads} policy={policy}"
        );
    }
}
