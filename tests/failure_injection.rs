//! Failure injection: degenerate and adversarial inputs must be handled
//! gracefully — no panics, no lost tasks, sane metrics.
//!
//! The second half injects **runtime** faults: generated `FaultPlan`
//! storms and property-tested arbitrary fault schedules against the
//! supervised drivers (serial and parallel — the parallel default
//! honours `TASKPRUNE_THREADS`, which the CI fault-matrix job pins to
//! 1 and the core count).

use proptest::prelude::*;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune::ClusterKind;
use taskprune_model::{BinSpec, TaskTypeId};
use taskprune_prob::Pmf;
use taskprune_sim::FaultEvent;

mod common;
use common::{scaled, test_scale};

fn het() -> (Cluster, PetMatrix) {
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    (cluster, petgen.generate())
}

fn run_all_heuristics(cluster: &Cluster, pet: &PetMatrix, tasks: &[Task]) {
    for kind in HeuristicKind::BATCH
        .iter()
        .chain(&HeuristicKind::IMMEDIATE)
        .chain(&HeuristicKind::HOMOGENEOUS)
    {
        let sim = if kind.is_immediate() {
            SimConfig::immediate(1)
        } else {
            SimConfig::batch(1)
        };
        for pruning in [None, Some(PruningConfig::paper_default())] {
            let stats = ResourceAllocator::new(cluster, pet, sim)
                .heuristic(*kind)
                .pruning_opt(pruning)
                .run(tasks);
            assert_eq!(stats.unreported(), 0, "{} lost tasks", kind.name());
            let r = stats.robustness_pct(0);
            assert!((0.0..=100.0).contains(&r), "{} r={r}", kind.name());
        }
    }
}

#[test]
fn empty_workload() {
    let (cluster, pet) = het();
    run_all_heuristics(&cluster, &pet, &[]);
}

#[test]
fn single_task() {
    let (cluster, pet) = het();
    let tasks = vec![Task::new(
        0,
        TaskTypeId(0),
        SimTime::from_time_units(1.0),
        SimTime::from_time_units(100.0),
    )];
    run_all_heuristics(&cluster, &pet, &tasks);
}

#[test]
fn single_machine_cluster() {
    let pet = PetMatrix::new(
        BinSpec::new(250),
        1,
        2,
        vec![
            Pmf::from_points(&[(2, 0.5), (6, 0.5)]).unwrap(),
            Pmf::point_mass(4),
        ],
    );
    let cluster = Cluster::one_per_type(1);
    let n = scaled(200, test_scale());
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            Task::new(
                i,
                TaskTypeId((i % 2) as u16),
                SimTime(i * 200),
                SimTime(i * 200 + 3_000),
            )
        })
        .collect();
    let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(2))
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig::paper_default())
        .run(&tasks);
    assert_eq!(stats.unreported(), 0);
}

#[test]
fn zero_slack_deadlines_all_fail_cleanly() {
    let (cluster, pet) = het();
    // Deadline equals arrival: nothing can ever complete on time.
    let tasks: Vec<Task> = (0..scaled(300, test_scale()))
        .map(|i| {
            let t = SimTime(i * 100);
            Task::new(i, TaskTypeId((i % 12) as u16), t, t)
        })
        .collect();
    let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(3))
        .heuristic(HeuristicKind::Msd)
        .pruning(PruningConfig::paper_default())
        .run(&tasks);
    assert_eq!(stats.count(TaskOutcome::CompletedOnTime), 0);
    assert_eq!(stats.unreported(), 0);
    assert_eq!(stats.robustness_pct(0), 0.0);
}

fn identical_deadlines_mass_arrival_impl(factor: f64) {
    let (cluster, pet) = het();
    // 500 tasks (at full scale) all arriving at t=0 with one shared
    // deadline: an extreme burst; MSD's deadline ordering degenerates
    // entirely.
    let tasks: Vec<Task> = (0..scaled(500, factor))
        .map(|i| {
            Task::new(
                i,
                TaskTypeId((i % 12) as u16),
                SimTime(0),
                SimTime::from_time_units(40.0),
            )
        })
        .collect();
    run_all_heuristics(&cluster, &pet, &tasks);
}

#[test]
fn identical_deadlines_mass_arrival() {
    identical_deadlines_mass_arrival_impl(test_scale());
}

#[test]
#[ignore = "heavy tier: original full-size burst"]
fn identical_deadlines_mass_arrival_full_scale() {
    identical_deadlines_mass_arrival_impl(1.0);
}

#[test]
fn deterministic_point_mass_pets() {
    // A fully deterministic system: chance estimates become 0/1.
    let pet = PetMatrix::new(
        BinSpec::new(100),
        2,
        2,
        vec![
            Pmf::point_mass(3),
            Pmf::point_mass(7),
            Pmf::point_mass(5),
            Pmf::point_mass(2),
        ],
    );
    let cluster = Cluster::one_per_type(2);
    let tasks: Vec<Task> = (0..scaled(100, test_scale()))
        .map(|i| {
            Task::new(
                i,
                TaskTypeId((i % 2) as u16),
                SimTime(i * 150),
                SimTime(i * 150 + 2_000),
            )
        })
        .collect();
    let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(4))
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig::paper_default())
        .run(&tasks);
    assert_eq!(stats.unreported(), 0);
}

fn extreme_oversubscription_impl(factor: f64) {
    let (cluster, pet) = het();
    // ~10x capacity: nearly everything must be pruned or expire. The
    // span shrinks with the task count so the density (and thus the
    // oversubscription regime) is scale-invariant.
    let trial = WorkloadConfig {
        total_tasks: scaled(3_000, factor) as usize,
        span_tu: 60.0 * factor,
        ..WorkloadConfig::paper_default(55)
    }
    .generate_trial(&pet, 0);
    let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(5))
        .heuristic(HeuristicKind::Mmu)
        .pruning(PruningConfig::paper_default())
        .run(&trial.tasks);
    assert_eq!(stats.unreported(), 0);
    // The pruner must be doing heavy lifting here.
    assert!(
        stats.count(TaskOutcome::DroppedProactive) > 0 || stats.deferrals > 0
    );
}

#[test]
fn extreme_oversubscription_survives() {
    extreme_oversubscription_impl(test_scale());
}

#[test]
#[ignore = "heavy tier: original 3000-task overload"]
fn extreme_oversubscription_full_scale() {
    extreme_oversubscription_impl(1.0);
}

#[test]
fn trial_smaller_than_trim_window() {
    let (cluster, pet) = het();
    let tasks: Vec<Task> = (0..150)
        .map(|i| {
            Task::new(
                i,
                TaskTypeId(0),
                SimTime(i * 500),
                SimTime(i * 500 + 10_000),
            )
        })
        .collect();
    let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(6))
        .heuristic(HeuristicKind::Mm)
        .run(&tasks);
    // 150 tasks < 2×100 trim → the paper window is empty → 0 by
    // definition, not a panic.
    assert_eq!(stats.robustness_pct(100), 0.0);
    assert!(stats.robustness_pct(0) > 0.0);
}

#[test]
fn queue_capacity_one_still_flows() {
    let (cluster, pet) = het();
    let factor = test_scale();
    let trial = WorkloadConfig {
        total_tasks: scaled(400, factor) as usize,
        span_tu: 100.0 * factor,
        ..WorkloadConfig::paper_default(66)
    }
    .generate_trial(&pet, 0);
    let mut sim = SimConfig::batch(7);
    sim.queue_capacity = 1;
    let stats = ResourceAllocator::new(&cluster, &pet, sim)
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig::paper_default())
        .run(&trial.tasks);
    assert_eq!(stats.unreported(), 0);
    assert!(stats.count(TaskOutcome::CompletedOnTime) > 0);
}

fn cancel_running_late_impl(factor: f64) {
    let (cluster, pet) = het();
    let trial = WorkloadConfig {
        total_tasks: scaled(1_000, factor) as usize,
        span_tu: 150.0 * factor,
        slack_range: (0.3, 0.8), // tight deadlines → mid-run expiries
        ..WorkloadConfig::paper_default(77)
    }
    .generate_trial(&pet, 0);
    let mut sim = SimConfig::batch(8);
    sim.cancel_running_late = true;
    let stats = ResourceAllocator::new(&cluster, &pet, sim)
        .heuristic(HeuristicKind::Mm)
        .run(&trial.tasks);
    assert_eq!(stats.unreported(), 0);
    assert!(
        stats.count(TaskOutcome::CancelledRunning) > 0,
        "tight deadlines must cause mid-run cancellations"
    );
    // Cancellation fires at mapping events, so a task finishing between
    // events can still complete late — but the policy must leave fewer
    // late completions than running everything to the end does.
    let mut sim_off = SimConfig::batch(8);
    sim_off.cancel_running_late = false;
    let without = ResourceAllocator::new(&cluster, &pet, sim_off)
        .heuristic(HeuristicKind::Mm)
        .run(&trial.tasks);
    assert!(
        stats.count(TaskOutcome::CompletedLate)
            < without.count(TaskOutcome::CompletedLate),
        "cancellation did not reduce late completions: {} vs {}",
        stats.count(TaskOutcome::CompletedLate),
        without.count(TaskOutcome::CompletedLate)
    );
}

#[test]
fn cancel_running_late_policy_end_to_end() {
    cancel_running_late_impl(test_scale());
}

#[test]
#[ignore = "heavy tier: original 1000-task cancellation workload"]
fn cancel_running_late_full_scale() {
    cancel_running_late_impl(1.0);
}

// ---------------------------------------------------------------------
// Runtime fault injection: FaultPlan storms against both drivers.
// ---------------------------------------------------------------------

fn fault_fixture() -> (Cluster, PetMatrix, Vec<Task>) {
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    let pet = petgen.generate();
    let factor = test_scale();
    let tasks = WorkloadConfig {
        total_tasks: scaled(1_500, factor) as usize,
        span_tu: scaled(260, factor) as f64,
        ..WorkloadConfig::paper_default(4321)
    }
    .generate_trial(&pet, 0)
    .tasks;
    (cluster, pet, tasks)
}

fn json(stats: &FederationStats) -> String {
    serde_json::to_string(stats).expect("serializes")
}

fn federated_builder<'a>(
    cluster: &Cluster,
    pet: &'a PetMatrix,
    shards: usize,
) -> GatewayBuilder<'a> {
    let n_types = pet.n_task_types();
    GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(9))
        .shards(shards)
        .policy(RoundRobinRoute::new())
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        })
}

/// Generous enough that no storm can exhaust a shard's budget.
fn full_budget() -> RecoveryPolicy {
    RecoveryPolicy {
        retry_budget: 64,
        ..RecoveryPolicy::default()
    }
}

/// The runtime fault matrix: two fixed storm seeds × {serial,
/// parallel at 1 thread, parallel at the ambient `TASKPRUNE_THREADS`
/// default} — every cell heals to the fault-free serialized stats.
#[test]
fn fault_storms_heal_identically_across_the_driver_matrix() {
    let (cluster, pet, tasks) = fault_fixture();
    let shards = 3usize;
    let reference = federated_builder(&cluster, &pet, shards)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());
    assert_eq!(reference.unreported(), 0);
    let reference_json = json(&reference);

    for plan_seed in [0xFA01u64, 0xFA02] {
        let plan = FaultPlan::generate(
            plan_seed,
            &FaultSpec::storm(shards, (tasks.len() / shards) as u64),
        );
        // Serial.
        let engine = federated_builder(&cluster, &pet, shards)
            .build()
            .expect("valid configuration");
        let mut sup = Supervisor::new(engine, full_budget());
        sup.arm(plan.clone());
        assert_eq!(
            reference_json,
            json(&sup.run_stream(tasks.iter().copied())),
            "serial, plan seed {plan_seed:#x}"
        );
        // Parallel: pinned single worker, then the ambient default
        // (`TASKPRUNE_THREADS` when set — the CI matrix covers 1 and
        // the core count).
        for threads in [Some(1usize), None] {
            let mut b = federated_builder(&cluster, &pet, shards);
            if let Some(t) = threads {
                b = b.threads(t);
            }
            let engine = b.build_parallel().expect("valid configuration");
            let mut sup = ParallelSupervisor::new(engine, full_budget());
            sup.arm(&plan);
            assert_eq!(
                reference_json,
                json(&sup.run_stream(tasks.iter().copied())),
                "parallel threads={threads:?}, plan seed {plan_seed:#x}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Property test: arbitrary fault schedules.
// ---------------------------------------------------------------------

const PROP_SHARDS: usize = 3;
const PROP_SPAN: u64 = 60;

fn arb_fault() -> impl Strategy<Value = FaultEvent> {
    (0..PROP_SHARDS, 0u8..6, 1..=PROP_SPAN, 1u64..512).prop_map(
        |(shard, kind, nth, delay)| {
            let kind = match kind {
                0 => FaultKind::ShardCrash,
                1 => FaultKind::LostCompletion,
                2 => FaultKind::DuplicateCompletion,
                3 => FaultKind::DelayedCompletion,
                4 => FaultKind::CheckpointFailure,
                _ => FaultKind::RecoveryFailure,
            };
            FaultEvent {
                shard,
                kind,
                nth,
                delay: if kind == FaultKind::DelayedCompletion {
                    delay
                } else {
                    0
                },
            }
        },
    )
}

/// A small, dense workload so crashes land on non-trivial state.
fn prop_fixture() -> (Cluster, PetMatrix, Vec<Task>) {
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    let pet = petgen.generate();
    let tasks = WorkloadConfig {
        total_tasks: 240,
        span_tu: 40.0,
        ..WorkloadConfig::paper_default(4321)
    }
    .generate_trial(&pet, 0)
    .tasks;
    (cluster, pet, tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any fault schedule, fully budgeted, heals bit-identically on
    /// both drivers; the same schedule with a zero budget still
    /// completes with every arrival accounted for. No panics anywhere.
    #[test]
    fn arbitrary_fault_schedules_never_lose_tasks(
        events in proptest::collection::vec(arb_fault(), 1..12),
    ) {
        let (cluster, pet, tasks) = prop_fixture();
        let plan = FaultPlan::new(events);
        let reference = federated_builder(&cluster, &pet, PROP_SHARDS)
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied());
        let reference_json = json(&reference);

        // Full budget: recovery is exact, serial and parallel.
        let engine = federated_builder(&cluster, &pet, PROP_SHARDS)
            .build()
            .expect("valid configuration");
        let mut sup = Supervisor::new(engine, full_budget());
        sup.arm(plan.clone());
        let healed = sup.run_stream(tasks.iter().copied());
        prop_assert_eq!(&reference_json, &json(&healed));

        let engine = federated_builder(&cluster, &pet, PROP_SHARDS)
            .threads(2)
            .build_parallel()
            .expect("valid configuration");
        let mut sup = ParallelSupervisor::new(engine, full_budget());
        sup.arm(&plan);
        let healed_par = sup.run_stream(tasks.iter().copied());
        prop_assert_eq!(&reference_json, &json(&healed_par));

        // Zero budget: degraded, but complete and accounted for.
        let engine = federated_builder(&cluster, &pet, PROP_SHARDS)
            .build()
            .expect("valid configuration");
        let mut sup =
            Supervisor::new(engine, RecoveryPolicy::no_retries());
        sup.arm(plan.clone());
        let degraded = sup.run_stream(tasks.iter().copied());
        prop_assert_eq!(degraded.unreported(), 0);
        prop_assert_eq!(degraded.n_tasks() >= tasks.len(), true);

        let engine = federated_builder(&cluster, &pet, PROP_SHARDS)
            .threads(2)
            .build_parallel()
            .expect("valid configuration");
        let mut sup = ParallelSupervisor::new(
            engine,
            RecoveryPolicy::no_retries(),
        );
        sup.arm(&plan);
        let degraded_par = sup.run_stream(tasks.iter().copied());
        prop_assert_eq!(degraded_par.unreported(), 0);
    }
}
