//! Integration tests pinning the pruning mechanism's behavioural
//! contracts from §IV of the paper.

use taskprune::prelude::*;
use taskprune::ClusterKind;

mod common;
use common::{scaled, test_scale};

fn setup_with(
    factor: f64,
) -> (Cluster, PetMatrix, taskprune_workload::WorkloadTrial) {
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    let pet = petgen.generate();
    let trial = WorkloadConfig {
        total_tasks: scaled(2_500, factor) as usize,
        span_tu: 300.0 * factor, // heavy oversubscription
        ..WorkloadConfig::paper_default(11)
    }
    .generate_trial(&pet, 0);
    (cluster, pet, trial)
}

fn setup() -> (Cluster, PetMatrix, taskprune_workload::WorkloadTrial) {
    setup_with(test_scale())
}

fn run(
    cluster: &Cluster,
    pet: &PetMatrix,
    tasks: &[Task],
    pruning: PruningConfig,
) -> SimStats {
    ResourceAllocator::new(cluster, pet, SimConfig::batch(21))
        .heuristic(HeuristicKind::Mm)
        .pruning(pruning)
        .run(tasks)
}

#[test]
fn defer_only_configuration_never_drops_proactively() {
    let (cluster, pet, trial) = setup();
    let stats =
        run(&cluster, &pet, &trial.tasks, PruningConfig::defer_only(0.5));
    assert!(stats.deferrals > 0, "defer-only must defer under load");
    assert_eq!(stats.count(TaskOutcome::DroppedProactive), 0);
}

#[test]
fn always_toggle_drops_at_least_as_much_as_reactive() {
    let (cluster, pet, trial) = setup();
    let always = run(
        &cluster,
        &pet,
        &trial.tasks,
        PruningConfig::paper_default().with_toggle(ToggleMode::Always),
    );
    let reactive =
        run(&cluster, &pet, &trial.tasks, PruningConfig::paper_default());
    let never =
        run(&cluster, &pet, &trial.tasks, PruningConfig::defer_only(0.5));
    assert!(
        always.count(TaskOutcome::DroppedProactive)
            >= reactive.count(TaskOutcome::DroppedProactive)
    );
    assert_eq!(never.count(TaskOutcome::DroppedProactive), 0);
    // Under *heavy* oversubscription the reactive toggle fires nearly
    // every event, so its drop count approaches always-on.
    assert!(reactive.count(TaskOutcome::DroppedProactive) > 0);
}

#[test]
fn higher_threshold_defers_more() {
    let (cluster, pet, trial) = setup();
    let low = run(
        &cluster,
        &pet,
        &trial.tasks,
        PruningConfig::defer_only(0.25),
    );
    let high = run(
        &cluster,
        &pet,
        &trial.tasks,
        PruningConfig::defer_only(0.75),
    );
    assert!(
        high.deferrals > low.deferrals,
        "75% threshold deferred {} <= 25% threshold {}",
        high.deferrals,
        low.deferrals
    );
}

/// The Fairness module's contract (§IV-D): a task type that the
/// chance-based pruner would *persistently* sacrifice must accumulate
/// sufferage until the pruner relents.
///
/// Crafted starvation scenario: on one machine, a "long" task type's
/// chance of success is exactly 50 % even on an idle machine, so the
/// β = 50 % pruner defers every single instance forever — they all
/// expire. With sufferage also fed by those reactive expiries
/// (`count_reactive_drops`), the type's threshold decays and instances
/// start being mapped again.
#[test]
fn fairness_rescues_a_starved_task_type() {
    use taskprune_model::{BinSpec, TaskTypeId};
    use taskprune_prob::Pmf;

    let pet = PetMatrix::new(
        BinSpec::new(100),
        1,
        2,
        vec![
            Pmf::point_mass(2), // short type
            Pmf::from_points(&[(6, 0.5), (12, 0.5)]).unwrap(), // long type
        ],
    );
    let cluster = Cluster::one_per_type(1);
    // Alternating arrivals; the long type's deadline bin (slack 1 000
    // ticks = bin 10 − 1 = 9) sits between its two execution outcomes
    // (bins 6 and 12) → chance is exactly 0.5 on an idle machine.
    let tasks: Vec<Task> = (0..400)
        .map(|i| {
            let arr = SimTime(i * 400);
            if i % 2 == 0 {
                Task::new(i, TaskTypeId(0), arr, SimTime(arr.ticks() + 4_000))
            } else {
                Task::new(i, TaskTypeId(1), arr, SimTime(arr.ticks() + 1_000))
            }
        })
        .collect();

    let base = PruningConfig::paper_default();
    let starved = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(9))
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig {
            fairness: FairnessConfig::disabled(),
            ..base
        })
        .run(&tasks);
    let rescued = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(9))
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig {
            fairness: FairnessConfig {
                count_reactive_drops: true,
                ..FairnessConfig::paper_default(base.threshold)
            },
            ..base
        })
        .run(&tasks);

    let long_type = |s: &SimStats| s.per_type()[1].on_time;
    assert_eq!(
        long_type(&starved),
        0,
        "without fairness the 50%-chance type must be starved outright"
    );
    assert!(
        long_type(&rescued) > 0,
        "sufferage must eventually let the starved type through"
    );
    // The short type keeps flowing in both configurations.
    assert!(rescued.per_type()[0].on_time > 150);
}

#[test]
fn pruned_tasks_are_counted_not_lost() {
    let (cluster, pet, trial) = setup();
    let stats =
        run(&cluster, &pet, &trial.tasks, PruningConfig::paper_default());
    assert_eq!(stats.unreported(), 0);
    // Heavy oversubscription: a meaningful share of the workload is
    // pruned or expires, and the counters agree with per-type sums.
    let per_type_proactive: u64 =
        stats.per_type().iter().map(|t| t.dropped_proactive).sum();
    assert_eq!(
        per_type_proactive as usize,
        stats.count(TaskOutcome::DroppedProactive)
    );
    let per_type_on_time: u64 =
        stats.per_type().iter().map(|t| t.on_time).sum();
    assert_eq!(
        per_type_on_time as usize,
        stats.count(TaskOutcome::CompletedOnTime)
    );
}

fn wasted_work_monotonic_impl(
    (cluster, pet, trial): (
        Cluster,
        PetMatrix,
        taskprune_workload::WorkloadTrial,
    ),
) {
    let bare = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(21))
        .heuristic(HeuristicKind::Mm)
        .run(&trial.tasks);
    let defer_only =
        run(&cluster, &pet, &trial.tasks, PruningConfig::defer_only(0.5));
    let full =
        run(&cluster, &pet, &trial.tasks, PruningConfig::paper_default());
    assert!(defer_only.wasted_fraction() < bare.wasted_fraction());
    assert!(full.wasted_fraction() <= defer_only.wasted_fraction() + 0.02);
}

#[test]
fn wasted_work_shrinks_monotonically_with_mechanism_strength() {
    wasted_work_monotonic_impl(setup());
}

/// Heavy tier (`cargo test -- --ignored`): the §IV behaviour contracts
/// at the paper-sized 2 500-task workload.
#[test]
#[ignore = "heavy tier: original 2500-task oversubscribed workload"]
fn full_scale_contracts() {
    let (cluster, pet, trial) = setup_with(1.0);
    let defer =
        run(&cluster, &pet, &trial.tasks, PruningConfig::defer_only(0.5));
    assert!(defer.deferrals > 0);
    assert_eq!(defer.count(TaskOutcome::DroppedProactive), 0);
    let full =
        run(&cluster, &pet, &trial.tasks, PruningConfig::paper_default());
    assert_eq!(full.unreported(), 0);
    assert!(full.count(TaskOutcome::DroppedProactive) > 0);
    wasted_work_monotonic_impl((cluster, pet, trial));
}
