//! Crash-failover ≡ never crashing: a shard rebuilt from its last
//! checkpoint plus the journal recorded since must be indistinguishable
//! from a shard that never died.
//!
//! The failure model (see `FederatedEngine::recover_shard`): the
//! coordinator — event heap, ground-truth RNG streams, the other
//! shards — survives; one shard's in-memory state is lost. Recovery is
//! `restore(checkpoint)` + `journal.replay()`: every arrival,
//! completion and wakeup the shard saw since the checkpoint is
//! re-applied at its original timestamp, and the starts/decisions the
//! replay re-emits are discarded because the surviving heap already
//! holds their consequences.
//!
//! The contract under test (ISSUE pin a): `replay(snapshot, log_suffix)`
//! reproduces the shard **bit-identically** — pinned two ways:
//!
//! 1. the recovered shard's next sealed checkpoint equals the
//!    uninterrupted shard's, byte for byte (state hash and serialized
//!    payload, `TraceLog` included);
//! 2. the whole federation's serialized `FederationStats` after a
//!    mid-run crash + recovery equals the uninterrupted reference.
//!
//! A property test drives the same contract through hostile bursts:
//! simultaneous arrivals, sparse/duplicate external ids, deadlines
//! tight enough to force reactive drops and pruning.

mod common;

use proptest::prelude::*;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_sim::TraceLog;

fn fixture(scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(1_500, scale) as usize,
        span_tu: common::scaled(260, scale) as f64,
        ..WorkloadConfig::paper_default(4321)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn policy_by_index(policy: usize) -> Box<dyn RoutePolicy> {
    match policy {
        0 => Box::new(RoundRobinRoute::new()),
        1 => Box::new(LeastQueuedRoute::new()),
        _ => Box::new(BestChanceRoute::new()),
    }
}

/// Traced + pruned, so the serialized comparisons carry every per-shard
/// trace event — a replay drifting one tick or one event would show.
fn builder<'a>(
    cluster: &Cluster,
    pet: &'a PetMatrix,
    shards: usize,
    policy: usize,
) -> GatewayBuilder<'a, TraceLog> {
    let n_types = pet.n_task_types();
    GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(55))
        .shards(shards)
        .policy_boxed(policy_by_index(policy))
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        })
        .sink_with(|_| TraceLog::new(1_000_000, 4))
}

/// Crash shard `k` between two watermarks, recover it, and the final
/// merged stats equal an uninterrupted run — for every shard index and
/// both scheduling regimes.
#[test]
fn recovered_federation_matches_the_uninterrupted_run() {
    let (cluster, pet, tasks) = fixture(common::test_scale());
    let w1 = (tasks.len() / 3) as u64;
    let w2 = (2 * tasks.len() / 3) as u64;
    for policy in [0usize, 1] {
        let reference = builder(&cluster, &pet, 3, policy)
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied());
        assert_eq!(reference.unreported(), 0);
        let reference_json = json(&reference);
        for crash_shard in 0..3 {
            let mut engine = builder(&cluster, &pet, 3, policy)
                .build()
                .expect("valid configuration");
            engine.enable_journal();
            let mut source = tasks.iter().copied().peekable();
            engine.run_until(&mut source, w1);
            let snap = engine.checkpoint(crash_shard);
            assert!(
                engine.journal(crash_shard).is_empty(),
                "checkpoint supersedes the journaled prefix"
            );
            engine.run_until(&mut source, w2);
            // The crash: shard state is lost here; the checkpoint and
            // the journal recorded since are all that survives of it.
            engine
                .recover_shard(crash_shard, &snap)
                .expect("checkpoint verifies and the journal replays");
            let recovered = engine.finish_stream(&mut source);
            assert_eq!(
                reference_json,
                json(&recovered),
                "policy #{policy} crash_shard={crash_shard}: recovery \
                 diverged from the uninterrupted run"
            );
        }
    }
}

/// The direct state pin: after recovery, the shard's next sealed
/// checkpoint — state hash and full serialized payload, trace included
/// — equals the checkpoint an uninterrupted twin takes at the same
/// watermark.
#[test]
fn replayed_shard_state_equals_the_uninterrupted_shard_bit_for_bit() {
    let (cluster, pet, tasks) = fixture(common::test_scale() * 0.5);
    let w1 = (tasks.len() / 3) as u64;
    let w2 = (2 * tasks.len() / 3) as u64;
    let crash_shard = 1usize;

    // Twin A never crashes; its checkpoint at w2 is the ground truth.
    let mut a = builder(&cluster, &pet, 3, 0)
        .build()
        .expect("valid configuration");
    a.enable_journal();
    let mut src_a = tasks.iter().copied().peekable();
    a.run_until(&mut src_a, w2);
    let expected = a.checkpoint(crash_shard);

    // Twin B checkpoints at w1, "crashes" at w2, recovers, and is
    // re-checkpointed at the same watermark.
    let mut b = builder(&cluster, &pet, 3, 0)
        .build()
        .expect("valid configuration");
    b.enable_journal();
    let mut src_b = tasks.iter().copied().peekable();
    b.run_until(&mut src_b, w1);
    let snap = b.checkpoint(crash_shard);
    b.run_until(&mut src_b, w2);
    assert!(
        !b.journal(crash_shard).is_empty(),
        "the shard saw operations between the watermarks"
    );
    b.recover_shard(crash_shard, &snap)
        .expect("checkpoint verifies and the journal replays");
    let recovered = b.checkpoint(crash_shard);

    assert_eq!(expected.state_hash(), recovered.state_hash());
    assert_eq!(
        json(&expected),
        json(&recovered),
        "replayed shard state diverged from the uninterrupted shard"
    );
    // Both twins still finish identically.
    assert_eq!(
        json(&a.finish_stream(&mut src_a)),
        json(&b.finish_stream(&mut src_b))
    );
}

/// Total cluster wipe: every shard is checkpointed at w1 and recovered
/// at w2 — recovery order must not matter, and the federation still
/// matches the uninterrupted reference.
#[test]
fn all_shards_recover_from_their_checkpoints() {
    let (cluster, pet, tasks) = fixture(common::test_scale() * 0.5);
    let w1 = (tasks.len() / 3) as u64;
    let w2 = (2 * tasks.len() / 3) as u64;
    let reference = builder(&cluster, &pet, 3, 1)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());

    let mut engine = builder(&cluster, &pet, 3, 1)
        .build()
        .expect("valid configuration");
    engine.enable_journal();
    let mut source = tasks.iter().copied().peekable();
    engine.run_until(&mut source, w1);
    let snaps: Vec<_> = (0..3).map(|shard| engine.checkpoint(shard)).collect();
    engine.run_until(&mut source, w2);
    // Recover in an order different from shard order.
    for shard in [2usize, 0, 1] {
        engine
            .recover_shard(shard, &snaps[shard])
            .expect("checkpoint verifies and the journal replays");
    }
    assert_eq!(
        json(&reference),
        json(&engine.finish_stream(&mut source)),
        "full-wipe recovery diverged from the uninterrupted run"
    );
}

// ---------------------------------------------------------------------
// Property test: crash-failover under hostile bursts.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hostile streams (same-instant bursts, sparse/duplicate external
    /// ids, oscillating deadlines) survive a mid-run crash of a
    /// stream-chosen shard bit-identically.
    #[test]
    fn hostile_streams_survive_a_crash_bit_identically(
        raw in proptest::collection::vec((any::<u32>(), 0u64..3), 8..48),
    ) {
        use taskprune_model::{BinSpec, SimTime, TaskTypeId};
        use taskprune_prob::Pmf;

        let spread = Pmf::from_points(&[(1, 0.4), (3, 0.4), (6, 0.2)])
            .expect("valid PMF");
        let heavy = Pmf::from_points(&[(2, 0.5), (5, 0.3), (9, 0.2)])
            .expect("valid PMF");
        let pet =
            PetMatrix::new(BinSpec::new(100), 1, 2, vec![spread, heavy]);
        let cluster = Cluster::one_per_type(1);

        let mut stream: Vec<Task> = Vec::with_capacity(raw.len());
        let mut t = 0u64;
        for (i, &(r, delta)) in raw.iter().enumerate() {
            t += delta * 137;
            let external = if i % 6 == 5 {
                stream[i - 1].id.0
            } else {
                (r as u64).wrapping_mul(1_000_003)
            };
            let deadline = t + if r % 3 == 0 { 150 } else { 40_000 };
            stream.push(Task::new(
                external,
                TaskTypeId((r % 2) as u16),
                SimTime(t),
                SimTime(deadline),
            ));
        }
        let crash_shard = (raw[0].0 % 3) as usize;
        let w1 = (stream.len() / 3) as u64;
        let w2 = (2 * stream.len() / 3) as u64;

        let build = || {
            GatewayBuilder::new(&cluster, &pet)
                .config(SimConfig::batch(9))
                .shards(3)
                .policy(RoundRobinRoute::new())
                .strategy_with(|_| HeuristicKind::FcfsRr.make())
                .pruner_with(|_| {
                    Box::new(PruningMechanism::new(
                        PruningConfig::paper_default(),
                        2,
                    ))
                })
                .sink_with(|_| TraceLog::new(100_000, 4))
        };

        let reference = build()
            .build()
            .expect("valid configuration")
            .run_stream(stream.iter().copied());
        prop_assert_eq!(reference.unreported(), 0);

        let mut engine = build().build().expect("valid configuration");
        engine.enable_journal();
        let mut source = stream.iter().copied().peekable();
        engine.run_until(&mut source, w1);
        let snap = engine.checkpoint(crash_shard);
        engine.run_until(&mut source, w2);
        engine
            .recover_shard(crash_shard, &snap)
            .expect("checkpoint verifies and the journal replays");
        let recovered = engine.finish_stream(&mut source);
        prop_assert_eq!(
            json(&reference),
            json(&recovered),
            "crash of shard {} diverged on a hostile stream",
            crash_shard
        );
    }
}

#[test]
#[ignore = "full-size crash-failover sweep; run with --ignored"]
fn full_scale_recovery_matches_uninterrupted() {
    let (cluster, pet, tasks) = fixture(1.0);
    let w1 = (tasks.len() / 3) as u64;
    let w2 = (2 * tasks.len() / 3) as u64;
    let reference = builder(&cluster, &pet, 4, 1)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());
    for crash_shard in 0..4 {
        let mut engine = builder(&cluster, &pet, 4, 1)
            .build()
            .expect("valid configuration");
        engine.enable_journal();
        let mut source = tasks.iter().copied().peekable();
        engine.run_until(&mut source, w1);
        let snap = engine.checkpoint(crash_shard);
        engine.run_until(&mut source, w2);
        engine
            .recover_shard(crash_shard, &snap)
            .expect("checkpoint verifies and the journal replays");
        assert_eq!(
            json(&reference),
            json(&engine.finish_stream(&mut source)),
            "crash_shard={crash_shard}"
        );
    }
}
