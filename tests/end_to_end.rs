//! Cross-crate integration tests: full workload → allocator → simulator
//! pipelines, checking the paper's qualitative claims end to end.

use taskprune::prelude::*;
use taskprune::ClusterKind;

/// A moderately oversubscribed spiky workload (paper density, small span).
fn oversubscribed(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        total_tasks: 2_000,
        span_tu: 300.0, // ~6.7 tasks/tu ≈ the paper's 20K regime
        ..WorkloadConfig::paper_default(seed)
    }
}

fn het() -> (Cluster, PetMatrix) {
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    (cluster, petgen.generate())
}

#[test]
fn pruning_improves_every_batch_heuristic_when_oversubscribed() {
    let (cluster, pet) = het();
    let trial = oversubscribed(1).generate_trial(&pet, 0);
    for kind in HeuristicKind::BATCH {
        let bare = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .heuristic(kind)
            .run(&trial.tasks);
        let pruned =
            ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
                .heuristic(kind)
                .pruning(PruningConfig::paper_default())
                .run(&trial.tasks);
        assert!(
            pruned.robustness_pct(100) > bare.robustness_pct(100),
            "{}: pruned {:.1}% <= bare {:.1}%",
            kind.name(),
            pruned.robustness_pct(100),
            bare.robustness_pct(100)
        );
        // Pruning must also cut wasted machine time.
        assert!(
            pruned.wasted_fraction() < bare.wasted_fraction(),
            "{}: waste did not shrink",
            kind.name()
        );
    }
}

#[test]
fn pruning_improves_homogeneous_heuristics() {
    let (cluster, petgen) = ClusterKind::Homogeneous { n: 8 }.materialise();
    let pet = petgen.generate();
    let trial = oversubscribed(2).generate_trial(&pet, 0);
    for kind in HeuristicKind::HOMOGENEOUS {
        let bare = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(2))
            .heuristic(kind)
            .run(&trial.tasks);
        let pruned =
            ResourceAllocator::new(&cluster, &pet, SimConfig::batch(2))
                .heuristic(kind)
                .pruning(PruningConfig::paper_default())
                .run(&trial.tasks);
        assert!(
            pruned.robustness_pct(100) > bare.robustness_pct(100),
            "{}: pruned {:.1}% <= bare {:.1}%",
            kind.name(),
            pruned.robustness_pct(100),
            bare.robustness_pct(100)
        );
    }
}

#[test]
fn probabilistic_dropping_helps_immediate_mode() {
    let (cluster, pet) = het();
    let trial = oversubscribed(3).generate_trial(&pet, 0);
    // KPB — the paper's strongest immediate heuristic.
    let bare = ResourceAllocator::new(&cluster, &pet, SimConfig::immediate(3))
        .heuristic(HeuristicKind::Kpb)
        .run(&trial.tasks);
    let dropping =
        ResourceAllocator::new(&cluster, &pet, SimConfig::immediate(3))
            .heuristic(HeuristicKind::Kpb)
            .pruning(PruningConfig {
                defer_enabled: false,
                ..PruningConfig::paper_default()
            })
            .run(&trial.tasks);
    assert!(
        dropping.robustness_pct(100) > bare.robustness_pct(100),
        "dropping {:.1}% <= bare {:.1}%",
        dropping.robustness_pct(100),
        bare.robustness_pct(100)
    );
    assert!(dropping.count(TaskOutcome::DroppedProactive) > 0);
    // Immediate mode never defers (no arrival queue).
    assert_eq!(dropping.deferrals, 0);
}

#[test]
fn every_task_gets_exactly_one_outcome() {
    let (cluster, pet) = het();
    let trial = oversubscribed(4).generate_trial(&pet, 0);
    for kind in [HeuristicKind::Mm, HeuristicKind::Kpb] {
        let sim = if kind.is_immediate() {
            SimConfig::immediate(4)
        } else {
            SimConfig::batch(4)
        };
        let stats = ResourceAllocator::new(&cluster, &pet, sim)
            .heuristic(kind)
            .pruning(PruningConfig::paper_default())
            .run(&trial.tasks);
        assert_eq!(stats.unreported(), 0, "{} lost tasks", kind.name());
        let accounted: usize = [
            TaskOutcome::CompletedOnTime,
            TaskOutcome::CompletedLate,
            TaskOutcome::DroppedReactive,
            TaskOutcome::DroppedProactive,
            TaskOutcome::CancelledRunning,
            TaskOutcome::Rejected,
            TaskOutcome::Unfinished,
        ]
        .iter()
        .map(|&o| stats.count(o))
        .sum();
        assert_eq!(accounted, trial.len(), "{}", kind.name());
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let (cluster, pet) = het();
    let trial = oversubscribed(5).generate_trial(&pet, 0);
    let run = || {
        ResourceAllocator::new(&cluster, &pet, SimConfig::batch(5))
            .heuristic(HeuristicKind::Msd)
            .pruning(PruningConfig::paper_default())
            .run(&trial.tasks)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.robustness_pct(0), b.robustness_pct(0));
    assert_eq!(a.deferrals, b.deferrals);
    assert_eq!(
        a.count(TaskOutcome::DroppedProactive),
        b.count(TaskOutcome::DroppedProactive)
    );
    for i in 0..trial.len() as u64 {
        assert_eq!(
            a.outcome(taskprune_model::TaskId(i)),
            b.outcome(taskprune_model::TaskId(i))
        );
    }
}

#[test]
fn underloaded_system_needs_no_pruning() {
    let (cluster, pet) = het();
    // 8 machines, tasks arriving slower than aggregate service rate.
    let trial = WorkloadConfig {
        total_tasks: 300,
        span_tu: 600.0,
        ..WorkloadConfig::paper_default(6)
    }
    .generate_trial(&pet, 0);
    let pruned = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(6))
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig::paper_default())
        .run(&trial.tasks);
    // Nearly everything completes; the reactive toggle almost never
    // engages so proactive drops stay rare.
    assert!(
        pruned.robustness_pct(0) > 90.0,
        "robustness {:.1}%",
        pruned.robustness_pct(0)
    );
    let drops = pruned.count(TaskOutcome::DroppedProactive);
    assert!(drops < trial.len() / 20, "{drops} proactive drops");
}

#[test]
fn experiment_runner_matches_direct_allocator_runs() {
    // The rayon-parallel experiment runner must agree with a serial
    // loop over the same seeds.
    let workload = WorkloadConfig {
        total_tasks: 500,
        span_tu: 100.0,
        ..WorkloadConfig::paper_default(7)
    };
    let cfg = taskprune::ExperimentConfig::new(
        HeuristicKind::Mm,
        Some(PruningConfig::paper_default()),
        workload.clone(),
    )
    .trials(3);
    let parallel = taskprune::run_experiment(&cfg);

    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    let pet = petgen.generate();
    for (trial_idx, expected) in
        parallel.per_trial_robustness.iter().enumerate()
    {
        let trial = workload.generate_trial(&pet, trial_idx as u32);
        let mut sim = SimConfig::batch(0);
        sim.seed = taskprune_prob::rng::derive_seed(
            workload.seed,
            0x51D_0000 + trial_idx as u64,
        );
        let stats = ResourceAllocator::new(&cluster, &pet, sim)
            .heuristic(HeuristicKind::Mm)
            .pruning(PruningConfig::paper_default())
            .run(&trial.tasks);
        assert_eq!(
            stats.robustness_pct(taskprune_sim::stats::PAPER_TRIM),
            *expected,
            "trial {trial_idx} diverged"
        );
    }
}
