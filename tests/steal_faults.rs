//! Stealing under fire: batch-queue stealing composes with the fault
//! and recovery layers without weakening either guarantee.
//!
//! 1. **Healing is exact with steals in flight.** A fully budgeted
//!    supervisor heals fault storms injected into a stealing,
//!    bounded-staleness run back to the fault-free serialized stats,
//!    byte for byte — serial and parallel, fixed storms and
//!    property-tested arbitrary schedules. Steal/Adopt journal ops
//!    replay exactly, and because steal transfers never touch the
//!    per-shard completion counters, fault coordinates (`nth`
//!    completion on shard `s`) name the same events with or without a
//!    mid-run recovery.
//! 2. **Stealing never lowers merged robustness.** At the same seed,
//!    turning stealing on moves work from backlogged batch-queue tails
//!    to idle shards — tasks start no later than they would have, so
//!    the merged robustness is never worse than the no-steal run's.
//! 3. **Degradation stays safe.** With a zero retry budget a permanent
//!    crash quarantines the shard; its batch backlog — including tasks
//!    it stole from other shards — is salvaged, and every arrival is
//!    still accounted for.

use proptest::prelude::*;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_sim::FaultEvent;

const SHARDS: usize = 4;
const STALENESS: Consistency = Consistency::BoundedStale { k: 16 };

/// The oversubscribed stream that actually triggers steals: the paper
/// workload squeezed into a short span (fixed size — steal counts are
/// workload-sensitive, so this must not shrink under
/// `TASKPRUNE_TEST_SCALE`).
fn fixture(seed: u64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: 2_000,
        span_tu: 60.0,
        ..WorkloadConfig::paper_default(seed)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn stealing_builder<'a>(
    cluster: &Cluster,
    pet: &'a PetMatrix,
    stealing: bool,
) -> GatewayBuilder<'a> {
    let n_types = pet.n_task_types();
    GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(55))
        .shards(SHARDS)
        .policy(LeastQueuedRoute::new())
        .consistency(STALENESS)
        .stealing(stealing)
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        })
}

fn full_budget() -> RecoveryPolicy {
    RecoveryPolicy {
        retry_budget: 64,
        ..RecoveryPolicy::default()
    }
}

// ---------------------------------------------------------------------
// Guarantee 1: fixed storms heal a stealing run bit-identically.
// ---------------------------------------------------------------------

#[test]
fn fault_storms_heal_a_stealing_run_bit_identically() {
    let (cluster, pet, tasks) = fixture(606);
    let reference = stealing_builder(&cluster, &pet, true)
        .build()
        .expect("valid configuration")
        .run_stream(tasks.iter().copied());
    assert_eq!(reference.unreported(), 0);
    assert!(
        reference.steal_stats().tasks_moved > 0,
        "the fixture must steal, or this exercises nothing new"
    );
    let reference_json = json(&reference);

    for plan_seed in [0xFA01u64, 0xFA02] {
        let plan = FaultPlan::generate(
            plan_seed,
            &FaultSpec::storm(SHARDS, (tasks.len() / SHARDS) as u64),
        );
        let engine = stealing_builder(&cluster, &pet, true)
            .build()
            .expect("valid configuration");
        let mut sup = Supervisor::new(engine, full_budget());
        sup.arm(plan.clone());
        assert_eq!(
            reference_json,
            json(&sup.run_stream(tasks.iter().copied())),
            "serial, plan seed {plan_seed:#x}"
        );

        for threads in [1usize, 2] {
            let engine = stealing_builder(&cluster, &pet, true)
                .threads(threads)
                .build_parallel()
                .expect("valid configuration");
            let mut sup = ParallelSupervisor::new(engine, full_budget());
            sup.arm(&plan);
            assert_eq!(
                reference_json,
                json(&sup.run_stream(tasks.iter().copied())),
                "parallel threads={threads}, plan seed {plan_seed:#x}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Guarantee 2: stealing never lowers merged robustness.
// ---------------------------------------------------------------------

/// A structurally imbalanced stream: round-robin pins every 4th
/// arrival — the heaviest task type — onto shard 0, which backlogs
/// while the light-typed shards drain to idle. This is the shape
/// stealing is *for*; on symmetric oversubscription the delta is noise
/// in either direction (moving a tail reshuffles every downstream
/// mapping decision), and under stale views stealing can even
/// mis-route — the router keeps feeding the thief it still believes
/// idle — which is why this test runs at `Lockstep`.
fn skewed_fixture(pet: &PetMatrix) -> Vec<Task> {
    use taskprune_model::{SimTime, TaskTypeId, TICKS_PER_TIME_UNIT};
    let n_types = pet.n_task_types();
    let mut by_mean: Vec<(usize, f64)> = (0..n_types)
        .map(|t| {
            (
                t,
                pet.mean_expected_ticks_across_machines(TaskTypeId(t as u16)),
            )
        })
        .collect();
    by_mean.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite means"));
    let light = by_mean[0].0 as u16;
    let heavy = by_mean[n_types - 1].0 as u16;
    let gap = TICKS_PER_TIME_UNIT / 8;
    (0..1_200u64)
        .map(|i| {
            let t = i * gap;
            let (ty, slack) = if i.is_multiple_of(4) {
                (heavy, 30 * TICKS_PER_TIME_UNIT)
            } else {
                (light, 10 * TICKS_PER_TIME_UNIT)
            };
            Task::new(i, TaskTypeId(ty), SimTime(t), SimTime(t + slack))
        })
        .collect()
}

#[test]
fn stealing_never_lowers_merged_robustness() {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let n_types = pet.n_task_types();
    let tasks = skewed_fixture(&pet);
    for seed in [55u64, 77, 99] {
        for pruning in [false, true] {
            let build = |stealing: bool| {
                let mut b = GatewayBuilder::new(&cluster, &pet)
                    .config(SimConfig::batch(seed))
                    .shards(SHARDS)
                    .policy(RoundRobinRoute::new())
                    .consistency(Consistency::Lockstep)
                    .stealing(stealing)
                    .strategy_with(move |_| HeuristicKind::Mm.make());
                if pruning {
                    b = b.pruner_with(move |_| {
                        Box::new(PruningMechanism::new(
                            PruningConfig::paper_default(),
                            n_types,
                        ))
                    });
                }
                b.build().expect("valid configuration")
            };
            let without = build(false).run_stream(tasks.iter().copied());
            let with = build(true).run_stream(tasks.iter().copied());
            assert_eq!(with.unreported(), 0);
            assert_eq!(with.n_tasks(), without.n_tasks());
            assert!(
                with.steal_stats().tasks_moved > 0,
                "seed {seed} pruning={pruning}: fixture stopped stealing"
            );
            assert!(
                with.paper_robustness_pct() >= without.paper_robustness_pct(),
                "seed {seed} pruning={pruning}: stealing lowered \
                 robustness ({:.3}% -> {:.3}%)",
                without.paper_robustness_pct(),
                with.paper_robustness_pct(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Guarantee 3: zero-budget degradation stays safe while stealing.
// ---------------------------------------------------------------------

/// A permanent crash with no retry budget quarantines the shard; the
/// batch backlog it holds — stolen tasks included — is salvaged by the
/// re-route drain, and every arrival stays accounted for.
#[test]
fn quarantine_covers_stolen_tasks() {
    let (cluster, pet, tasks) = fixture(606);
    let plan = FaultPlan::new(vec![FaultEvent {
        shard: 0,
        kind: FaultKind::ShardCrash,
        nth: (tasks.len() / (2 * SHARDS)) as u64,
        delay: 0,
    }]);
    let engine = stealing_builder(&cluster, &pet, true)
        .build()
        .expect("valid configuration");
    let mut sup = Supervisor::new(engine, RecoveryPolicy::no_retries());
    sup.arm(plan);
    let degraded = sup.run_stream(tasks.iter().copied());
    assert_eq!(degraded.unreported(), 0);
    assert!(degraded.n_tasks() >= tasks.len());
}

// ---------------------------------------------------------------------
// Property test: arbitrary fault schedules against a stealing run.
// ---------------------------------------------------------------------

/// Dense and small, same arrival rate as `fixture` so the stealing
/// machinery stays engaged at property-test size.
fn prop_fixture() -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let tasks = WorkloadConfig {
        total_tasks: 400,
        span_tu: 12.0,
        ..WorkloadConfig::paper_default(606)
    }
    .generate_trial(&pet, 0)
    .tasks;
    (cluster, pet, tasks)
}

const PROP_SPAN: u64 = 60;

fn arb_fault() -> impl Strategy<Value = FaultEvent> {
    (0..SHARDS, 0u8..6, 1..=PROP_SPAN, 1u64..512).prop_map(
        |(shard, kind, nth, delay)| {
            let kind = match kind {
                0 => FaultKind::ShardCrash,
                1 => FaultKind::LostCompletion,
                2 => FaultKind::DuplicateCompletion,
                3 => FaultKind::DelayedCompletion,
                4 => FaultKind::CheckpointFailure,
                _ => FaultKind::RecoveryFailure,
            };
            FaultEvent {
                shard,
                kind,
                nth,
                delay: if kind == FaultKind::DelayedCompletion {
                    delay
                } else {
                    0
                },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any fault schedule, fully budgeted, heals a stealing run to the
    /// fault-free bytes; the same schedule with a zero budget still
    /// completes with every arrival accounted for.
    #[test]
    fn arbitrary_fault_storms_heal_stealing_runs(
        events in proptest::collection::vec(arb_fault(), 1..10),
    ) {
        let (cluster, pet, tasks) = prop_fixture();
        let plan = FaultPlan::new(events);
        let reference = stealing_builder(&cluster, &pet, true)
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied());
        let reference_json = json(&reference);

        let engine = stealing_builder(&cluster, &pet, true)
            .build()
            .expect("valid configuration");
        let mut sup = Supervisor::new(engine, full_budget());
        sup.arm(plan.clone());
        let healed = sup.run_stream(tasks.iter().copied());
        prop_assert_eq!(&reference_json, &json(&healed));

        let engine = stealing_builder(&cluster, &pet, true)
            .threads(2)
            .build_parallel()
            .expect("valid configuration");
        let mut sup = ParallelSupervisor::new(engine, full_budget());
        sup.arm(&plan);
        let healed_par = sup.run_stream(tasks.iter().copied());
        prop_assert_eq!(&reference_json, &json(&healed_par));

        let engine = stealing_builder(&cluster, &pet, true)
            .build()
            .expect("valid configuration");
        let mut sup =
            Supervisor::new(engine, RecoveryPolicy::no_retries());
        sup.arm(plan);
        let degraded = sup.run_stream(tasks.iter().copied());
        prop_assert_eq!(degraded.unreported(), 0);
    }
}
