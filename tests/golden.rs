//! Golden regression tests: exact pinned outcomes for small, fully
//! deterministic pipelines.
//!
//! Every component in the chain (workload synthesis, PET generation,
//! event ordering, heuristics, pruning, execution sampling) is seeded
//! and deterministic, so these values are stable across runs and
//! platforms. If an intentional behaviour change moves them, update the
//! constants *deliberately* — an unintentional move is a regression in
//! one of a dozen interacting components that unit tests may individually
//! miss.

use taskprune::prelude::*;
use taskprune::ClusterKind;

fn fixture() -> (Cluster, PetMatrix, taskprune_workload::WorkloadTrial) {
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    let pet = petgen.generate();
    let trial = WorkloadConfig {
        total_tasks: 800,
        span_tu: 150.0,
        ..WorkloadConfig::paper_default(0x601D)
    }
    .generate_trial(&pet, 0);
    (cluster, pet, trial)
}

#[test]
fn workload_synthesis_is_pinned() {
    let (_, _, trial) = fixture();
    assert_eq!(trial.len(), 724);
    let t0 = &trial.tasks[0];
    let t_mid = &trial.tasks[400];
    assert_eq!(
        (t0.arrival.ticks(), t0.deadline.ticks(), t0.type_id.0),
        (2_071, 12_649, 0)
    );
    assert_eq!(
        (
            t_mid.arrival.ticks(),
            t_mid.deadline.ticks(),
            t_mid.type_id.0
        ),
        (87_442, 99_516, 10)
    );
}

#[test]
fn bare_mm_outcomes_are_pinned() {
    let (cluster, pet, trial) = fixture();
    let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(9))
        .heuristic(HeuristicKind::Mm)
        .run(&trial.tasks);
    assert_eq!(
        (
            stats.count(TaskOutcome::CompletedOnTime),
            stats.count(TaskOutcome::CompletedLate),
            stats.count(TaskOutcome::DroppedReactive),
        ),
        (GOLDEN_MM_BARE.0, GOLDEN_MM_BARE.1, GOLDEN_MM_BARE.2),
        "bare MM outcome counts moved"
    );
}

#[test]
fn pruned_mm_outcomes_are_pinned() {
    let (cluster, pet, trial) = fixture();
    let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(9))
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig::paper_default())
        .run(&trial.tasks);
    assert_eq!(
        (
            stats.count(TaskOutcome::CompletedOnTime),
            stats.count(TaskOutcome::DroppedProactive),
            stats.deferrals,
        ),
        (GOLDEN_MM_PRUNED.0, GOLDEN_MM_PRUNED.1, GOLDEN_MM_PRUNED.2),
        "pruned MM outcome counts moved"
    );
}

// Pinned values, regenerated via `cargo run -p taskprune-bench --bin
// golden_pin` whenever behaviour changes intentionally.
const GOLDEN_MM_BARE: (usize, usize, usize) = (446, 126, 152);
const GOLDEN_MM_PRUNED: (usize, usize, u64) = (636, 36, 2_872);
