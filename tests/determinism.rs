//! Determinism guarantees: the entire pipeline — workload synthesis, PET
//! generation, the simulator's execution-time sampling, and the parallel
//! experiment runner — is seeded explicitly, so two runs with the same
//! seed and configuration must agree bit-for-bit. Serialized `SimStats`
//! is compared, which covers every outcome, counter, and per-type stat.

use taskprune::prelude::*;

fn stats_for(kind: HeuristicKind, pruning: Option<PruningConfig>) -> String {
    let pet = PetGenConfig::paper_heterogeneous(5).generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: 400,
        span_tu: 80.0,
        ..WorkloadConfig::paper_default(21)
    };
    let trial = workload.generate_trial(&pet, 0);
    let sim = if kind.is_immediate() {
        SimConfig::immediate(13)
    } else {
        SimConfig::batch(13)
    };
    let stats = ResourceAllocator::new(&cluster, &pet, sim)
        .heuristic(kind)
        .pruning_opt(pruning)
        .run(&trial.tasks);
    serde_json::to_string(&stats).expect("SimStats serializes")
}

#[test]
fn same_seed_same_stats_batch_pruned() {
    let a = stats_for(HeuristicKind::Mm, Some(PruningConfig::paper_default()));
    let b = stats_for(HeuristicKind::Mm, Some(PruningConfig::paper_default()));
    assert_eq!(a, b, "pruned batch run diverged between identical runs");
}

#[test]
fn same_seed_same_stats_batch_baseline() {
    let a = stats_for(HeuristicKind::Msd, None);
    let b = stats_for(HeuristicKind::Msd, None);
    assert_eq!(a, b, "baseline batch run diverged between identical runs");
}

#[test]
fn same_seed_same_stats_immediate() {
    let a = stats_for(HeuristicKind::Kpb, Some(PruningConfig::paper_default()));
    let b = stats_for(HeuristicKind::Kpb, Some(PruningConfig::paper_default()));
    assert_eq!(a, b, "immediate-mode run diverged between identical runs");
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against the degenerate explanation for the tests above: if
    // seeding were ignored entirely, everything would trivially agree.
    let pet = PetGenConfig::paper_heterogeneous(5).generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: 400,
        span_tu: 80.0,
        ..WorkloadConfig::paper_default(21)
    };
    let trial = workload.generate_trial(&pet, 0);
    let run = |seed: u64| {
        let stats =
            ResourceAllocator::new(&cluster, &pet, SimConfig::batch(seed))
                .heuristic(HeuristicKind::Mm)
                .run(&trial.tasks);
        serde_json::to_string(&stats).expect("SimStats serializes")
    };
    assert_ne!(
        run(1),
        run(2),
        "execution sampling ignored the simulator seed"
    );
}

#[test]
fn parallel_experiment_runner_is_deterministic() {
    // The experiment fan-out runs trials on worker threads; chunked
    // order-preserving collection must keep results identical across
    // runs (and identical to what a serial evaluation would produce).
    let workload = WorkloadConfig {
        total_tasks: 250,
        span_tu: 60.0,
        ..WorkloadConfig::paper_default(33)
    };
    let cfg = ExperimentConfig::new(
        HeuristicKind::Mm,
        Some(PruningConfig::paper_default()),
        workload,
    )
    .trials(4);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "parallel experiment runner diverged between identical runs"
    );
}
