//! Determinism guarantees: the entire pipeline — workload synthesis, PET
//! generation, the simulator's execution-time sampling, the
//! work-stealing experiment runner, and the parallel federated driver —
//! is seeded explicitly, so two runs with the same seed and
//! configuration must agree bit-for-bit **at any pool size**
//! (`TASKPRUNE_THREADS`; CI runs this suite at 1 and max). Serialized
//! `SimStats` is compared, which covers every outcome, counter, and
//! per-type stat.

use taskprune::prelude::*;

fn stats_for(kind: HeuristicKind, pruning: Option<PruningConfig>) -> String {
    let pet = PetGenConfig::paper_heterogeneous(5).generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: 400,
        span_tu: 80.0,
        ..WorkloadConfig::paper_default(21)
    };
    let trial = workload.generate_trial(&pet, 0);
    let sim = if kind.is_immediate() {
        SimConfig::immediate(13)
    } else {
        SimConfig::batch(13)
    };
    let stats = ResourceAllocator::new(&cluster, &pet, sim)
        .heuristic(kind)
        .pruning_opt(pruning)
        .run(&trial.tasks);
    serde_json::to_string(&stats).expect("SimStats serializes")
}

#[test]
fn same_seed_same_stats_batch_pruned() {
    let a = stats_for(HeuristicKind::Mm, Some(PruningConfig::paper_default()));
    let b = stats_for(HeuristicKind::Mm, Some(PruningConfig::paper_default()));
    assert_eq!(a, b, "pruned batch run diverged between identical runs");
}

#[test]
fn same_seed_same_stats_batch_baseline() {
    let a = stats_for(HeuristicKind::Msd, None);
    let b = stats_for(HeuristicKind::Msd, None);
    assert_eq!(a, b, "baseline batch run diverged between identical runs");
}

#[test]
fn same_seed_same_stats_immediate() {
    let a = stats_for(HeuristicKind::Kpb, Some(PruningConfig::paper_default()));
    let b = stats_for(HeuristicKind::Kpb, Some(PruningConfig::paper_default()));
    assert_eq!(a, b, "immediate-mode run diverged between identical runs");
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against the degenerate explanation for the tests above: if
    // seeding were ignored entirely, everything would trivially agree.
    let pet = PetGenConfig::paper_heterogeneous(5).generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: 400,
        span_tu: 80.0,
        ..WorkloadConfig::paper_default(21)
    };
    let trial = workload.generate_trial(&pet, 0);
    let run = |seed: u64| {
        let stats =
            ResourceAllocator::new(&cluster, &pet, SimConfig::batch(seed))
                .heuristic(HeuristicKind::Mm)
                .run(&trial.tasks);
        serde_json::to_string(&stats).expect("SimStats serializes")
    };
    assert_ne!(
        run(1),
        run(2),
        "execution sampling ignored the simulator seed"
    );
}

#[test]
fn parallel_experiment_runner_is_deterministic() {
    // The experiment fan-out runs trials as work-stealing pool jobs;
    // steal-order must never reach the results (each trial writes its
    // own slot), so results are identical across runs.
    let workload = WorkloadConfig {
        total_tasks: 250,
        span_tu: 60.0,
        ..WorkloadConfig::paper_default(33)
    };
    let cfg = ExperimentConfig::new(
        HeuristicKind::Mm,
        Some(PruningConfig::paper_default()),
        workload,
    )
    .trials(4);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "parallel experiment runner diverged between identical runs"
    );
}

#[test]
fn work_stealing_runner_matches_a_serial_reference() {
    // Pool-size independence, pinned without restarting the process:
    // the work-stealing runner's per-trial robustness must equal a
    // plain serial loop over the same trials (same seed derivation).
    // Together with `parallel_experiment_runner_is_deterministic`,
    // this pins `run_experiment` for every TASKPRUNE_THREADS value —
    // CI runs the suite at 1 and max.
    let workload = WorkloadConfig {
        total_tasks: 250,
        span_tu: 60.0,
        ..WorkloadConfig::paper_default(47)
    };
    let cfg = ExperimentConfig::new(
        HeuristicKind::Msd,
        Some(PruningConfig::paper_default()),
        workload.clone(),
    )
    .trials(5);
    let pooled = run_experiment(&cfg);

    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let serial: Vec<f64> = (0..5u32)
        .map(|trial_idx| {
            let trial = workload.generate_trial(&pet, trial_idx);
            let mut sim = SimConfig::batch(0);
            sim.seed = taskprune_prob::rng::derive_seed(
                workload.seed,
                0x51D_0000 + u64::from(trial_idx),
            );
            let stats = ResourceAllocator::new(&cluster, &pet, sim)
                .heuristic(HeuristicKind::Msd)
                .pruning(PruningConfig::paper_default())
                .run(&trial.tasks);
            stats.robustness_pct(taskprune_sim::stats::PAPER_TRIM)
        })
        .collect();
    assert_eq!(
        pooled.per_trial_robustness, serial,
        "work-stealing trial fan-out diverged from the serial reference"
    );
}

#[test]
fn parallel_federated_engine_is_deterministic_across_thread_counts() {
    // The parallel shard executor: same seed and stream => identical
    // serialized FederationStats at 1, 2 and 8 threads (the full
    // serial-vs-parallel matrix lives in tests/parallel_equivalence).
    let pet = PetGenConfig::paper_heterogeneous(5).generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: 400,
        span_tu: 80.0,
        ..WorkloadConfig::paper_default(21)
    };
    let trial = workload.generate_trial(&pet, 0);
    let run = |threads: usize| -> String {
        let stats =
            ResourceAllocator::new(&cluster, &pet, SimConfig::batch(13))
                .heuristic(HeuristicKind::Mm)
                .pruning(PruningConfig::paper_default())
                .try_run_federated_parallel(
                    4,
                    Some(threads),
                    Box::new(taskprune_sim::RoundRobinRoute::new()),
                    &trial.tasks,
                )
                .expect("valid parallel federated configuration");
        serde_json::to_string(&stats).expect("FederationStats serializes")
    };
    let reference = run(1);
    assert_eq!(reference, run(2), "2-thread run diverged from 1-thread");
    assert_eq!(reference, run(8), "8-thread run diverged from 1-thread");
}
