//! Live resharding ≡ a fresh federation: pausing a K-shard run at an
//! arrival watermark and re-splitting its history across K′ shards must
//! be invisible in the outcome record.
//!
//! The contract under test (ISSUE pin b): a federation paused at
//! watermark `w`, whose gateway snapshot verifies, and whose logged
//! arrival prefix is re-routed through a freshly built K′-shard
//! federation followed by the rest of the stream, produces a serialized
//! `FederationStats` — outcome tables, counters, the global arrival
//! record, and the full per-shard `TraceLog` — **byte-identical** to an
//! uninterrupted K′-shard run of the same stream. Both drivers are
//! pinned: the serial `FederatedEngine` (`run_until` + `arrival_log`)
//! and the `ParallelFederatedEngine` (`ingest_prefix`), plus the
//! `ResourceAllocator` facade over both.
//!
//! The corruption half (ISSUE pin c): a sealed [`Snapshot`] whose
//! payload is tampered with after sealing is rejected with
//! [`SnapshotError::HashMismatch`] — by `verify()` at the watermark and
//! by `recover_shard` at the next recovery point. Tampering has to go
//! through the serialized form (fields are private), exactly like an
//! attacker flipping bits in a checkpoint file would.

mod common;

use proptest::prelude::*;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_sim::{Snapshot, SnapshotError, TraceLog};

fn fixture(scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(1_500, scale) as usize,
        span_tu: common::scaled(260, scale) as f64,
        ..WorkloadConfig::paper_default(4321)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn policy_by_index(policy: usize) -> Box<dyn RoutePolicy> {
    match policy {
        0 => Box::new(RoundRobinRoute::new()),
        1 => Box::new(LeastQueuedRoute::new()),
        _ => Box::new(BestChanceRoute::new()),
    }
}

/// The traced + pruned federation under test: every run carries the
/// full per-shard `TraceLog` through the serialized comparison, so a
/// reshard perturbing even one event timestamp would show.
fn builder<'a>(
    cluster: &Cluster,
    pet: &'a PetMatrix,
    shards: usize,
    policy: usize,
) -> GatewayBuilder<'a, TraceLog> {
    let n_types = pet.n_task_types();
    GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(55))
        .shards(shards)
        .policy_boxed(policy_by_index(policy))
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        })
        .sink_with(|_| TraceLog::new(1_000_000, 4))
}

/// Serial driver: pause a 4-shard run at the watermark, verify the
/// gateway snapshot, re-split the logged history across 3 shards, and
/// compare against an uninterrupted 3-shard run — for stateless and
/// lockstep routing, at an early and a midpoint watermark (including
/// `w = 0`, the degenerate "reshard before anything happened" case).
#[test]
fn serial_reshard_matches_the_uninterrupted_target_shard_count() {
    let (cluster, pet, tasks) = fixture(common::test_scale());
    for policy in [0usize, 1] {
        let reference = builder(&cluster, &pet, 3, policy)
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied());
        assert_eq!(reference.unreported(), 0);
        let reference_json = json(&reference);
        for watermark in [0u64, (tasks.len() / 2) as u64] {
            let mut engine = builder(&cluster, &pet, 4, policy)
                .build()
                .expect("valid configuration");
            engine.enable_arrival_log();
            let mut source = tasks.iter().copied().peekable();
            engine.run_until(&mut source, watermark);
            assert_eq!(engine.arrivals_ingested(), watermark);
            engine
                .snapshot_gateway()
                .verify()
                .expect("pause-point gateway snapshot verifies");
            let logged: Vec<Task> = engine.arrival_log().to_vec();
            assert_eq!(logged.len() as u64, watermark);
            drop(engine); // the 4-shard federation is gone
            let resharded = builder(&cluster, &pet, 3, policy)
                .build()
                .expect("valid configuration")
                .run_stream(logged.into_iter().chain(source));
            assert_eq!(
                reference_json,
                json(&resharded),
                "policy #{policy} watermark={watermark}: reshard 4→3 \
                 diverged from an uninterrupted 3-shard run"
            );
        }
    }
}

/// Parallel driver: same contract through `ingest_prefix` — the
/// pause-point for a pool-driven federation — across thread counts and
/// both scheduling regimes (stateless mailbox fill vs lockstep epochs).
#[test]
fn parallel_reshard_matches_the_uninterrupted_target_shard_count() {
    let (cluster, pet, tasks) = fixture(common::test_scale() * 0.5);
    let split = tasks.len() / 2;
    for policy in [0usize, 1] {
        for threads in [1usize, 2] {
            let reference = builder(&cluster, &pet, 2, policy)
                .threads(threads)
                .build_parallel()
                .expect("valid configuration")
                .run_stream(tasks.iter().copied());
            let mut engine = builder(&cluster, &pet, 3, policy)
                .threads(threads)
                .build_parallel()
                .expect("valid configuration");
            engine.enable_arrival_log();
            engine.ingest_prefix(tasks[..split].iter().copied());
            engine
                .snapshot_gateway()
                .verify()
                .expect("pause-point gateway snapshot verifies");
            let logged: Vec<Task> = engine.arrival_log().to_vec();
            assert_eq!(logged.len(), split);
            drop(engine);
            let resharded = builder(&cluster, &pet, 2, policy)
                .threads(threads)
                .build_parallel()
                .expect("valid configuration")
                .run_stream(
                    logged.into_iter().chain(tasks[split..].iter().copied()),
                );
            assert_eq!(
                json(&reference),
                json(&resharded),
                "policy #{policy} threads={threads}: parallel reshard \
                 3→2 diverged from an uninterrupted 2-shard run"
            );
        }
    }
}

/// The `ResourceAllocator` facade over both drivers. The pre-reshard
/// policy is deliberately *different* from the successor's: only the
/// logged history crosses the reshard boundary, so the old federation's
/// routing choices must not leak into the outcome.
#[test]
fn facade_elastic_reshard_matches_the_uninterrupted_run() {
    let pet = PetGenConfig::paper_heterogeneous(3).generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let tasks = WorkloadConfig {
        total_tasks: common::scaled(1_200, common::test_scale()) as usize,
        span_tu: common::scaled(200, common::test_scale()) as f64,
        ..WorkloadConfig::paper_default(8)
    }
    .generate_trial(&pet, 0)
    .tasks;
    let alloc = || {
        ResourceAllocator::new(&cluster, &pet, SimConfig::batch(2))
            .heuristic(HeuristicKind::Mm)
            .pruning(PruningConfig::paper_default())
    };
    let watermark = (tasks.len() / 2) as u64;
    let reference = alloc()
        .try_run_federated(2, Box::new(RoundRobinRoute::new()), &tasks)
        .expect("valid federated configuration");
    let reference_json = json(&reference);

    let serial = alloc()
        .try_run_federated_elastic(
            3,
            2,
            watermark,
            Box::new(LeastQueuedRoute::new()),
            Box::new(RoundRobinRoute::new()),
            &tasks,
        )
        .expect("valid elastic configuration");
    assert_eq!(
        reference_json,
        json(&serial),
        "serial facade reshard diverged from try_run_federated"
    );

    let parallel = alloc()
        .try_run_federated_elastic_parallel(
            3,
            2,
            Some(2),
            watermark,
            Box::new(LeastQueuedRoute::new()),
            Box::new(RoundRobinRoute::new()),
            &tasks,
        )
        .expect("valid elastic configuration");
    assert_eq!(
        reference_json,
        json(&parallel),
        "parallel facade reshard diverged from try_run_federated"
    );
}

// ---------------------------------------------------------------------
// Corruption: the state hash is the desync detector.
// ---------------------------------------------------------------------

/// Flips the low bit of the first integer leaf in a `Value` tree.
/// Returns `false` when the tree holds no integer to corrupt.
fn corrupt_first_uint(v: &mut serde::Value) -> bool {
    match v {
        serde::Value::UInt(x) => {
            *x ^= 1;
            true
        }
        serde::Value::Int(x) => {
            *x ^= 1;
            true
        }
        serde::Value::Array(items) => items.iter_mut().any(corrupt_first_uint),
        serde::Value::Object(fields) => {
            fields.iter_mut().any(|(_, v)| corrupt_first_uint(v))
        }
        _ => false,
    }
}

/// Round-trips a sealed snapshot through its serialized form with one
/// payload bit flipped — the only way to tamper, since the fields are
/// private and `seal` always stamps a fresh hash.
fn tampered(snap: &Snapshot) -> Snapshot {
    use serde::{Deserialize, Serialize};
    let mut v = snap.to_value();
    let serde::Value::Object(fields) = &mut v else {
        panic!("snapshots serialize as objects");
    };
    let payload = fields
        .iter_mut()
        .find(|(k, _)| k == "payload")
        .map(|(_, v)| v)
        .expect("payload field present");
    assert!(
        corrupt_first_uint(payload),
        "payload holds at least one integer leaf"
    );
    Snapshot::from_value(&v)
        .expect("decode is hash-agnostic — tampering is caught by verify")
}

/// A tampered gateway snapshot fails `verify()` at the watermark with
/// `HashMismatch`, while the untouched one passes.
#[test]
fn tampered_gateway_snapshot_is_rejected_at_the_watermark() {
    let (cluster, pet, tasks) = fixture(common::test_scale() * 0.5);
    let mut engine = builder(&cluster, &pet, 3, 0)
        .build()
        .expect("valid configuration");
    let mut source = tasks.iter().copied().peekable();
    engine.run_until(&mut source, (tasks.len() / 2) as u64);
    let snap = engine.snapshot_gateway();
    snap.verify().expect("the untampered snapshot verifies");
    let bad = tampered(&snap);
    assert_eq!(bad.state_hash(), snap.state_hash(), "envelope untouched");
    match bad.verify() {
        Err(SnapshotError::HashMismatch { expected, found }) => {
            assert_eq!(expected, snap.state_hash());
            assert_ne!(found, expected);
        }
        other => panic!("expected HashMismatch, got {other:?}"),
    }
}

/// A tampered *shard checkpoint* is rejected by `recover_shard` at the
/// next recovery point — the corruption never reaches the core — and
/// the error threads through the facade's `RunError` via `?`.
#[test]
fn tampered_checkpoint_is_rejected_on_recovery() {
    let (cluster, pet, tasks) = fixture(common::test_scale() * 0.5);
    let mut engine = builder(&cluster, &pet, 3, 0)
        .build()
        .expect("valid configuration");
    engine.enable_journal();
    let mut source = tasks.iter().copied().peekable();
    engine.run_until(&mut source, (tasks.len() / 3) as u64);
    let snap = engine.checkpoint(1);
    engine.run_until(&mut source, (2 * tasks.len() / 3) as u64);
    let err = engine
        .recover_shard(1, &tampered(&snap))
        .expect_err("a corrupted checkpoint must not restore");
    assert!(
        matches!(
            err,
            taskprune_sim::RunError::Snapshot(
                SnapshotError::HashMismatch { .. }
            )
        ),
        "expected HashMismatch, got {err:?}"
    );
    assert!(!err.to_string().is_empty());
    // The untampered checkpoint still recovers the shard fine.
    engine
        .recover_shard(1, &snap)
        .expect("the genuine checkpoint restores");
    let stats = engine.finish_stream(&mut source);
    assert_eq!(stats.unreported(), 0);
}

// ---------------------------------------------------------------------
// Property test: resharding under hostile external ids.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bursts of simultaneous arrivals with sparse/duplicate external
    /// ids and oscillating deadlines reshard 3→2 bit-identically under
    /// both drivers, at a watermark derived from the stream itself.
    #[test]
    fn hostile_streams_reshard_bit_identically(
        raw in proptest::collection::vec((any::<u32>(), 0u64..3), 8..48),
    ) {
        use taskprune_model::{BinSpec, SimTime, TaskTypeId};
        use taskprune_prob::Pmf;

        let spread = Pmf::from_points(&[(1, 0.4), (3, 0.4), (6, 0.2)])
            .expect("valid PMF");
        let heavy = Pmf::from_points(&[(2, 0.5), (5, 0.3), (9, 0.2)])
            .expect("valid PMF");
        let pet =
            PetMatrix::new(BinSpec::new(100), 1, 2, vec![spread, heavy]);
        let cluster = Cluster::one_per_type(1);

        let mut stream: Vec<Task> = Vec::with_capacity(raw.len());
        let mut t = 0u64;
        for (i, &(r, delta)) in raw.iter().enumerate() {
            t += delta * 137;
            let external = if i % 6 == 5 {
                stream[i - 1].id.0
            } else {
                (r as u64).wrapping_mul(1_000_003)
            };
            let deadline = t + if r % 3 == 0 { 150 } else { 40_000 };
            stream.push(Task::new(
                external,
                TaskTypeId((r % 2) as u16),
                SimTime(t),
                SimTime(deadline),
            ));
        }
        let watermark = stream.len() / 2;

        let build = |shards: usize| {
            GatewayBuilder::new(&cluster, &pet)
                .config(SimConfig::batch(9))
                .shards(shards)
                .policy(RoundRobinRoute::new())
                .strategy_with(|_| HeuristicKind::FcfsRr.make())
                .pruner_with(|_| {
                    Box::new(PruningMechanism::new(
                        PruningConfig::paper_default(),
                        2,
                    ))
                })
                .sink_with(|_| TraceLog::new(100_000, 4))
        };

        let reference = build(2)
            .build()
            .expect("valid configuration")
            .run_stream(stream.iter().copied());
        prop_assert_eq!(reference.unreported(), 0);
        let reference_json = json(&reference);

        // Serial reshard 3→2.
        let mut engine =
            build(3).build().expect("valid configuration");
        engine.enable_arrival_log();
        let mut source = stream.iter().copied().peekable();
        engine.run_until(&mut source, watermark as u64);
        engine.snapshot_gateway().verify().expect("snapshot verifies");
        let logged: Vec<Task> = engine.arrival_log().to_vec();
        drop(engine);
        let serial = build(2)
            .build()
            .expect("valid configuration")
            .run_stream(logged.into_iter().chain(source));
        prop_assert_eq!(
            &reference_json,
            &json(&serial),
            "serial reshard diverged on a hostile stream"
        );

        // Parallel reshard 3→2 on 2 threads.
        let mut engine = build(3)
            .threads(2)
            .build_parallel()
            .expect("valid configuration");
        engine.enable_arrival_log();
        engine.ingest_prefix(stream[..watermark].iter().copied());
        engine.snapshot_gateway().verify().expect("snapshot verifies");
        let logged: Vec<Task> = engine.arrival_log().to_vec();
        drop(engine);
        let parallel = build(2)
            .threads(2)
            .build_parallel()
            .expect("valid configuration")
            .run_stream(
                logged.into_iter().chain(stream[watermark..].iter().copied()),
            );
        prop_assert_eq!(
            &reference_json,
            &json(&parallel),
            "parallel reshard diverged on a hostile stream"
        );
    }
}

#[test]
#[ignore = "full-size reshard sweep; run with --ignored"]
fn full_scale_reshard_matches_uninterrupted() {
    let (cluster, pet, tasks) = fixture(1.0);
    for policy in [0usize, 1, 2] {
        let reference = builder(&cluster, &pet, 3, policy)
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied());
        let mut engine = builder(&cluster, &pet, 4, policy)
            .build()
            .expect("valid configuration");
        engine.enable_arrival_log();
        let mut source = tasks.iter().copied().peekable();
        engine.run_until(&mut source, (tasks.len() / 2) as u64);
        engine
            .snapshot_gateway()
            .verify()
            .expect("snapshot verifies");
        let logged: Vec<Task> = engine.arrival_log().to_vec();
        drop(engine);
        let resharded = builder(&cluster, &pet, 3, policy)
            .build()
            .expect("valid configuration")
            .run_stream(logged.into_iter().chain(source));
        assert_eq!(json(&reference), json(&resharded), "policy #{policy}");
    }
}
