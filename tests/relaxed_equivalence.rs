//! The **relaxed equivalence contract**: bounded-staleness routing and
//! federation-level batch stealing keep serial ≡ parallel, byte for
//! byte.
//!
//! `tests/parallel_equivalence.rs` pins the Lockstep story. This suite
//! pins the new degrees of freedom from the relaxed-consistency layer:
//!
//! 1. Under `Consistency::BoundedStale { k }`, stateful policies route
//!    on an epoch-stamped view table at most `k` arrivals stale, and
//!    the parallel driver only synchronises at the view-refresh
//!    ordinals. The serialized `FederationStats` must still be
//!    **byte-identical** between `FederatedEngine` and
//!    `ParallelFederatedEngine` at every (seed, shard count, thread
//!    count) — staleness changes *which* run happens, never lets the
//!    two drivers disagree about it.
//! 2. `BoundedStale { k: 0 }` refreshes before every arrival, so it is
//!    **bit-for-bit `Lockstep`** — the relaxed machinery at zero
//!    staleness is invisible.
//! 3. Steal transfers are journaled (`JournalOp::Steal` / `Adopt`) and
//!    replay from checkpoint + journal bit-identically, so the
//!    crash-failover story survives stealing.

mod common;

use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_sim::{FederatedEngine, NullSink};

fn fixture(seed: u64, scale: f64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: common::scaled(1_200, scale) as usize,
        span_tu: common::scaled(220, scale) as f64,
        ..WorkloadConfig::paper_default(seed)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

/// A deliberately oversubscribed stream: the same paper workload
/// squeezed into a short span, so stale least-queued routing piles
/// arrivals onto one shard while others drain to idle — the shape that
/// actually triggers batch-queue stealing. Fixed size on purpose: the
/// steal count is workload-sensitive, so this fixture must not shrink
/// under `TASKPRUNE_TEST_SCALE`.
fn oversubscribed_fixture(seed: u64) -> (Cluster, PetMatrix, Vec<Task>) {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: 2_000,
        span_tu: 60.0,
        ..WorkloadConfig::paper_default(seed)
    };
    let tasks = workload.generate_trial(&pet, 0).tasks;
    (cluster, pet, tasks)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn policy_by_index(policy: usize) -> Box<dyn RoutePolicy> {
    match policy {
        0 => Box::new(LeastQueuedRoute::new()),
        _ => Box::new(BestChanceRoute::new()),
    }
}

/// One fully configured relaxed federation builder.
#[allow(clippy::too_many_arguments)]
fn relaxed_builder<'a>(
    cluster: &'a Cluster,
    pet: &'a PetMatrix,
    seed: u64,
    shards: usize,
    policy: usize,
    consistency: Consistency,
    stealing: bool,
) -> GatewayBuilder<'a, NullSink> {
    let n_types = pet.n_task_types();
    GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(seed))
        .shards(shards)
        .policy_boxed(policy_by_index(policy))
        .consistency(consistency)
        .stealing(stealing)
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        })
}

#[allow(clippy::too_many_arguments)]
fn relaxed_stats(
    cluster: &Cluster,
    pet: &PetMatrix,
    seed: u64,
    shards: usize,
    threads: Option<usize>,
    policy: usize,
    consistency: Consistency,
    stealing: bool,
    tasks: &[Task],
) -> FederationStats {
    let b = relaxed_builder(
        cluster,
        pet,
        seed,
        shards,
        policy,
        consistency,
        stealing,
    );
    match threads {
        None => b
            .build()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
        // `Some(0)`: parallel driver at the ambient TASKPRUNE_THREADS
        // pool default rather than an explicit count.
        Some(0) => b
            .build_parallel()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
        Some(t) => b
            .threads(t)
            .build_parallel()
            .expect("valid configuration")
            .run_stream(tasks.iter().copied()),
    }
}

/// Contract 1, the headline matrix: BoundedStale{k} × stealing ×
/// shards {1, 2, 4} × threads {1, 2, 8} — serial and parallel agree
/// byte for byte at every point.
#[test]
fn bounded_stale_serial_matches_parallel_across_matrix() {
    let scale = common::test_scale();
    let (cluster, pet, tasks) = fixture(8755, scale);
    for (k, stealing) in [(4u64, true), (4, false), (16, true)] {
        let consistency = Consistency::BoundedStale { k };
        for shards in [1usize, 2, 4] {
            let serial = relaxed_stats(
                &cluster,
                &pet,
                55,
                shards,
                None,
                0,
                consistency,
                stealing,
                &tasks,
            );
            assert_eq!(serial.unreported(), 0);
            let serial_json = json(&serial);
            for threads in [1usize, 2, 8] {
                let parallel = relaxed_stats(
                    &cluster,
                    &pet,
                    55,
                    shards,
                    Some(threads),
                    0,
                    consistency,
                    stealing,
                    &tasks,
                );
                assert_eq!(
                    serial_json,
                    json(&parallel),
                    "k={k} stealing={stealing} shards={shards} \
                     threads={threads}: relaxed schedule diverged"
                );
            }
        }
    }
}

/// Contract 1 for the probability-aware policy: best-chance routes on
/// cached Eq. 1 chance summaries under staleness; the runs must still
/// agree across drivers.
#[test]
fn best_chance_routes_identically_on_stale_views() {
    let scale = common::test_scale() * 0.5;
    let (cluster, pet, tasks) = fixture(911, scale);
    let consistency = Consistency::BoundedStale { k: 8 };
    for stealing in [false, true] {
        let serial = relaxed_stats(
            &cluster,
            &pet,
            7,
            4,
            None,
            1,
            consistency,
            stealing,
            &tasks,
        );
        let serial_json = json(&serial);
        for threads in [2usize, 8] {
            let parallel = relaxed_stats(
                &cluster,
                &pet,
                7,
                4,
                Some(threads),
                1,
                consistency,
                stealing,
                &tasks,
            );
            assert_eq!(
                serial_json,
                json(&parallel),
                "best-chance stealing={stealing} threads={threads}"
            );
        }
    }
}

/// Contract 2: `BoundedStale { k: 0 }` refreshes the table before
/// every arrival, so its cloned views equal the live views at every
/// routing decision — bit-for-bit `Lockstep`, in both drivers.
#[test]
fn bounded_stale_zero_is_lockstep_bit_for_bit() {
    let scale = common::test_scale();
    let (cluster, pet, tasks) = fixture(4242, scale);
    for policy in [0usize, 1] {
        let lockstep = relaxed_stats(
            &cluster,
            &pet,
            55,
            4,
            None,
            policy,
            Consistency::Lockstep,
            false,
            &tasks,
        );
        let zero_stale = relaxed_stats(
            &cluster,
            &pet,
            55,
            4,
            None,
            policy,
            Consistency::BoundedStale { k: 0 },
            false,
            &tasks,
        );
        assert_eq!(
            json(&lockstep),
            json(&zero_stale),
            "policy #{policy}: k=0 serial run diverged from Lockstep"
        );
        let zero_stale_parallel = relaxed_stats(
            &cluster,
            &pet,
            55,
            4,
            Some(4),
            policy,
            Consistency::BoundedStale { k: 0 },
            false,
            &tasks,
        );
        assert_eq!(
            json(&lockstep),
            json(&zero_stale_parallel),
            "policy #{policy}: k=0 parallel run diverged from Lockstep"
        );
    }
}

/// The CI steal-matrix leg: `TASKPRUNE_CONSISTENCY` names a
/// consistency mode (`lockstep` or `bounded-stale-<k>`), and that mode
/// — with stealing on — must keep serial ≡ parallel at the ambient
/// thread default (`TASKPRUNE_THREADS`, which the matrix pins to 1 and
/// the runner's core count). Defaults to `bounded-stale-4` so the test
/// is never vacuous locally.
#[test]
fn env_selected_consistency_stays_driver_agnostic() {
    let raw = std::env::var("TASKPRUNE_CONSISTENCY")
        .unwrap_or_else(|_| "bounded-stale-4".to_string());
    let consistency = if raw == "lockstep" {
        Consistency::Lockstep
    } else if let Some(k) = raw.strip_prefix("bounded-stale-") {
        Consistency::BoundedStale {
            k: k.parse().expect("TASKPRUNE_CONSISTENCY staleness bound"),
        }
    } else {
        panic!("unrecognised TASKPRUNE_CONSISTENCY {raw:?}");
    };
    let scale = common::test_scale();
    let (cluster, pet, tasks) = fixture(2024, scale);
    let serial = relaxed_stats(
        &cluster,
        &pet,
        55,
        4,
        None,
        0,
        consistency,
        true,
        &tasks,
    );
    assert_eq!(serial.unreported(), 0);
    // `threads(0)` resolves to the ambient TASKPRUNE_THREADS default.
    let parallel = relaxed_stats(
        &cluster,
        &pet,
        55,
        4,
        Some(0),
        0,
        consistency,
        true,
        &tasks,
    );
    assert_eq!(
        json(&serial),
        json(&parallel),
        "{raw}: drivers diverged at the ambient thread default"
    );
}

/// Steal/staleness counters land in the stats accessor but stay off
/// the serialized wire shape (the recovery-log convention), so the
/// byte-identity contracts above cannot be satisfied vacuously.
#[test]
fn steal_counters_are_populated_and_off_the_wire() {
    let scale = common::test_scale();
    let (cluster, pet, tasks) = fixture(31337, scale);
    let consistency = Consistency::BoundedStale { k: 4 };
    let stats = relaxed_stats(
        &cluster,
        &pet,
        55,
        4,
        None,
        0,
        consistency,
        true,
        &tasks,
    );
    let counters = stats.steal_stats();
    assert!(
        counters.view_refreshes > 0,
        "a BoundedStale run must publish view tables"
    );
    assert!(
        counters.steal_points > 0,
        "an oversubscribed 4-shard run must hit idle shards"
    );
    let wire = json(&stats);
    assert!(
        !wire.contains("steals") && !wire.contains("view_refreshes"),
        "steal counters must stay off the stats wire shape"
    );
    let back: FederationStats =
        serde_json::from_str(&wire).expect("stats deserialize");
    assert_eq!(back.steal_stats(), taskprune_sim::StealStats::default());
    assert_eq!(json(&back), wire);
}

/// Contract 3: steals are journaled (`JournalOp::Steal` / `Adopt`)
/// and a crashed shard rebuilt from checkpoint + journal replay — with
/// steal transfers inside the replay window — finishes the run
/// byte-identically to an uninterrupted one.
#[test]
fn steals_replay_from_checkpoint_plus_journal() {
    use taskprune_sim::JournalOp;

    const SHARDS: usize = 4;
    let (cluster, pet, tasks) = oversubscribed_fixture(606);
    let consistency = Consistency::BoundedStale { k: 16 };

    let reference = relaxed_stats(
        &cluster,
        &pet,
        55,
        SHARDS,
        None,
        0,
        consistency,
        true,
        &tasks,
    );
    assert!(
        reference.steal_stats().tasks_moved > 0,
        "fixture must actually steal for this test to mean anything"
    );

    let mut engine: FederatedEngine<'_, NullSink> =
        relaxed_builder(&cluster, &pet, 55, SHARDS, 0, consistency, true)
            .build()
            .expect("valid configuration");
    engine.enable_journal();
    let mut source = tasks.iter().copied().peekable();
    // Steals cluster in the oversubscribed ramp-up (the stale table
    // piles the opening burst onto few shards), so checkpoint early and
    // stretch the replay window across that ramp.
    let w1 = (tasks.len() / 10) as u64;
    let w2 = (tasks.len() / 2) as u64;
    engine.run_until(&mut source, w1);
    let snaps: Vec<_> = (0..SHARDS).map(|s| engine.checkpoint(s)).collect();
    engine.run_until(&mut source, w2);
    let steal_ops: usize = (0..SHARDS)
        .map(|s| {
            engine
                .journal(s)
                .entries()
                .iter()
                .filter(|e| {
                    matches!(
                        e.op,
                        JournalOp::Steal { .. } | JournalOp::Adopt { .. }
                    )
                })
                .count()
        })
        .sum();
    assert!(
        steal_ops > 0,
        "the replay window must contain steal transfers"
    );
    for (shard, snap) in snaps.iter().enumerate() {
        engine
            .recover_shard(shard, snap)
            .expect("checkpoint + journal replay rebuilds the shard");
    }
    let recovered = engine.finish_stream(&mut source);
    assert_eq!(
        json(&reference),
        json(&recovered),
        "stealing run did not replay bit-identically from \
         checkpoint + journal"
    );
}
