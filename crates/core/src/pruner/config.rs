//! Pruning Configuration (the user-facing knobs of Fig. 4).

use serde::{Deserialize, Serialize};

/// When the Toggle module engages probabilistic task dropping (§IV-C and
/// the Fig. 7 experiment's three scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ToggleMode {
    /// Dropping never engages ("no Toggle, no dropping").
    Never,
    /// Dropping is engaged at every mapping event ("no Toggle, always
    /// dropping").
    Always,
    /// Dropping engages when at least `alpha` tasks missed their
    /// deadlines since the previous mapping event ("reactive Toggle";
    /// the paper reacts to "at least one task missing its deadline").
    Reactive {
        /// The Dropping Toggle α threshold.
        alpha: usize,
    },
}

impl ToggleMode {
    /// The paper's reactive default (α = 1).
    pub fn reactive() -> Self {
        ToggleMode::Reactive { alpha: 1 }
    }
}

/// Fairness module configuration (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessConfig {
    /// The fairness factor `c`: how much one completion/drop moves a
    /// type's sufferage score (0.05 in the paper's experiments).
    pub factor: f64,
    /// Lower clamp for sufferage scores. The paper's text lets on-time
    /// completions push the score negative without bound, which would
    /// eventually price successful types out entirely (threshold
    /// β − γ > 1); 0.0 — "sufferage only accumulates net suffering" — is
    /// the stable reading and the default. Set to `-threshold` for the
    /// literal-text behaviour.
    pub min_score: f64,
    /// Upper clamp for sufferage scores; `threshold` (β) by default so a
    /// fully suffered type's pruning threshold bottoms out at zero.
    pub max_score: f64,
    /// Whether reactive (deadline-miss) drops also count as suffering.
    /// The Fig. 5 pseudo-code only bumps scores on proactive drops
    /// (Step 6), which is the default.
    pub count_reactive_drops: bool,
}

impl FairnessConfig {
    /// The paper's configuration: c = 0.05, scores clamped to [0, β].
    pub fn paper_default(threshold: f64) -> Self {
        Self {
            factor: 0.05,
            min_score: 0.0,
            max_score: threshold,
            count_reactive_drops: false,
        }
    }

    /// Fairness disabled: scores pinned at zero, every type sees the raw
    /// pruning threshold.
    pub fn disabled() -> Self {
        Self {
            factor: 0.0,
            min_score: 0.0,
            max_score: 0.0,
            count_reactive_drops: false,
        }
    }
}

/// Full pruning-mechanism configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningConfig {
    /// The Pruning Threshold β: minimum chance of success a task needs
    /// to be mapped (deferred otherwise) or to stay in a machine queue
    /// when dropping is engaged. 50 % in the paper's experiments.
    pub threshold: f64,
    /// Whether Step 10 deferring is active (batch mode only — immediate
    /// mode has no arrival queue to defer into, §IV-B).
    pub defer_enabled: bool,
    /// When the dropping operation engages.
    pub toggle: ToggleMode,
    /// Fairness module settings.
    pub fairness: FairnessConfig,
}

impl PruningConfig {
    /// The paper's default: β = 50 %, deferring on, reactive Toggle,
    /// fairness factor 0.05.
    pub fn paper_default() -> Self {
        let threshold = 0.5;
        Self {
            threshold,
            defer_enabled: true,
            toggle: ToggleMode::reactive(),
            fairness: FairnessConfig::paper_default(threshold),
        }
    }

    /// Same configuration at a different pruning threshold (the Fig. 8
    /// sweep), fairness clamp following the threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "β must be in [0, 1]");
        self.threshold = threshold;
        self.fairness.max_score = self.fairness.max_score.min(threshold);
        self
    }

    /// Same configuration with a different toggle mode (the Fig. 7
    /// scenarios).
    pub fn with_toggle(mut self, toggle: ToggleMode) -> Self {
        self.toggle = toggle;
        self
    }

    /// Defer-only variant (dropping never engages) — the Fig. 8
    /// deferring experiment.
    pub fn defer_only(threshold: f64) -> Self {
        Self {
            threshold,
            defer_enabled: true,
            toggle: ToggleMode::Never,
            fairness: FairnessConfig::paper_default(threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let cfg = PruningConfig::paper_default();
        assert_eq!(cfg.threshold, 0.5);
        assert_eq!(cfg.fairness.factor, 0.05);
        assert_eq!(cfg.toggle, ToggleMode::Reactive { alpha: 1 });
        assert!(cfg.defer_enabled);
    }

    #[test]
    fn threshold_sweep_keeps_fairness_clamp_consistent() {
        let cfg = PruningConfig::paper_default().with_threshold(0.25);
        assert_eq!(cfg.threshold, 0.25);
        assert!(cfg.fairness.max_score <= 0.25);
    }

    #[test]
    #[should_panic(expected = "β must be in")]
    fn rejects_out_of_range_threshold() {
        PruningConfig::paper_default().with_threshold(1.5);
    }

    #[test]
    fn defer_only_never_drops() {
        let cfg = PruningConfig::defer_only(0.5);
        assert_eq!(cfg.toggle, ToggleMode::Never);
        assert!(cfg.defer_enabled);
    }
}
