//! The Accounting module (Fig. 4): task meta-data gathered from the
//! resource allocation system.
//!
//! Accounting is the mechanism's only window into the system: it digests
//! each mapping event's [`EventReport`] into the counters the Toggle and
//! Fairness modules consume, and keeps lifetime totals for reporting.

use serde::{Deserialize, Serialize};
use taskprune_sim::EventReport;

/// Lifetime and per-event counters of task outcomes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Accounting {
    /// Deadline misses observed at the most recent mapping event (the
    /// Toggle's input signal).
    misses_last_event: usize,
    /// Lifetime on-time completions.
    pub total_on_time: u64,
    /// Lifetime late completions.
    pub total_late: u64,
    /// Lifetime reactive (deadline) drops.
    pub total_reactive_drops: u64,
    /// Lifetime proactive (probabilistic) drops.
    pub total_proactive_drops: u64,
    /// Mapping events observed.
    pub events: u64,
}

impl Accounting {
    /// Creates zeroed accounting state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Digests one mapping event's report.
    pub fn observe(&mut self, report: &EventReport) {
        self.events += 1;
        self.misses_last_event = report.deadline_misses();
        for (_, on_time) in &report.completed {
            if *on_time {
                self.total_on_time += 1;
            } else {
                self.total_late += 1;
            }
        }
        self.total_reactive_drops += report.dropped_reactive.len() as u64;
        self.total_reactive_drops += report.cancelled.len() as u64;
    }

    /// Registers a proactive drop decided by the Pruner.
    pub fn observe_proactive_drop(&mut self) {
        self.total_proactive_drops += 1;
    }

    /// Deadline misses at the most recent event — what the Toggle
    /// thresholds on ("the number of tasks missing their deadlines since
    /// the previous mapping event").
    pub fn misses_since_last_event(&self) -> usize {
        self.misses_last_event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_model::{SimTime, Task, TaskTypeId};

    fn task(id: u64) -> Task {
        Task::new(id, TaskTypeId(0), SimTime(0), SimTime(100))
    }

    #[test]
    fn digests_event_reports() {
        let mut acc = Accounting::new();
        let report = EventReport {
            now: SimTime(50),
            completed: vec![(task(0), true), (task(1), false)],
            dropped_reactive: vec![task(2), task(3)],
            cancelled: vec![],
        };
        acc.observe(&report);
        assert_eq!(acc.total_on_time, 1);
        assert_eq!(acc.total_late, 1);
        assert_eq!(acc.total_reactive_drops, 2);
        // Misses = 1 late + 2 reactive.
        assert_eq!(acc.misses_since_last_event(), 3);
        assert_eq!(acc.events, 1);
    }

    #[test]
    fn miss_counter_resets_each_event() {
        let mut acc = Accounting::new();
        acc.observe(&EventReport {
            now: SimTime(1),
            completed: vec![],
            dropped_reactive: vec![task(0)],
            cancelled: vec![],
        });
        assert_eq!(acc.misses_since_last_event(), 1);
        acc.observe(&EventReport {
            now: SimTime(2),
            completed: vec![(task(1), true)],
            dropped_reactive: vec![],
            cancelled: vec![],
        });
        assert_eq!(acc.misses_since_last_event(), 0);
        assert_eq!(acc.total_reactive_drops, 1);
    }

    #[test]
    fn proactive_drops_are_counted_separately() {
        let mut acc = Accounting::new();
        acc.observe_proactive_drop();
        acc.observe_proactive_drop();
        assert_eq!(acc.total_proactive_drops, 2);
        assert_eq!(acc.total_reactive_drops, 0);
    }
}
