//! The Fairness module (§IV-D): per-task-type sufferage scores.
//!
//! Pruning purely by chance of success favours short task types (they
//! are simply likelier to fit before a deadline); long types would be
//! consistently sacrificed. The Fairness module tracks a sufferage score
//! γₖ per task type — dropping a type-k task raises γₖ by the fairness
//! factor c, an on-time completion lowers it by c — and the Pruner uses
//! β − γₖ as the type's effective threshold: the more a type has
//! suffered, the more lenient the pruner becomes towards it.

use super::config::FairnessConfig;
use taskprune_model::TaskTypeId;

/// Sufferage-score table.
#[derive(Debug, Clone)]
pub struct Fairness {
    cfg: FairnessConfig,
    scores: Vec<f64>,
}

impl Fairness {
    /// Creates zeroed scores for `n_task_types` types.
    pub fn new(cfg: FairnessConfig, n_task_types: usize) -> Self {
        Self {
            cfg,
            scores: vec![0.0; n_task_types],
        }
    }

    /// Current sufferage score γₖ.
    pub fn score(&self, k: TaskTypeId) -> f64 {
        self.scores[k.0 as usize]
    }

    /// All scores, indexed by task type.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The effective pruning threshold for type `k` given the base
    /// threshold β: `β − γₖ` (Step 6 / Step 10 of Fig. 5).
    pub fn effective_threshold(&self, beta: f64, k: TaskTypeId) -> f64 {
        beta - self.score(k)
    }

    /// Step 2: an on-time completion of type `k` reduces its sufferage.
    pub fn on_completion(&mut self, k: TaskTypeId) {
        self.bump(k, -self.cfg.factor);
    }

    /// Step 6: a proactive drop of type `k` increases its sufferage.
    pub fn on_proactive_drop(&mut self, k: TaskTypeId) {
        self.bump(k, self.cfg.factor);
    }

    /// A reactive drop; only counts if configured
    /// ([`FairnessConfig::count_reactive_drops`]).
    pub fn on_reactive_drop(&mut self, k: TaskTypeId) {
        if self.cfg.count_reactive_drops {
            self.bump(k, self.cfg.factor);
        }
    }

    /// Replaces the whole score table from a checkpoint. Returns
    /// `false` (and changes nothing) when the checkpoint was taken for
    /// a different number of task types.
    pub(crate) fn restore_scores(&mut self, scores: &[f64]) -> bool {
        if scores.len() != self.scores.len() {
            return false;
        }
        self.scores.copy_from_slice(scores);
        true
    }

    fn bump(&mut self, k: TaskTypeId, delta: f64) {
        let s = &mut self.scores[k.0 as usize];
        *s = (*s + delta).clamp(self.cfg.min_score, self.cfg.max_score);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FairnessConfig {
        FairnessConfig::paper_default(0.5)
    }

    #[test]
    fn scores_start_at_zero() {
        let f = Fairness::new(cfg(), 3);
        for k in 0..3 {
            assert_eq!(f.score(TaskTypeId(k)), 0.0);
            assert_eq!(f.effective_threshold(0.5, TaskTypeId(k)), 0.5);
        }
    }

    #[test]
    fn drops_raise_sufferage_and_lower_threshold() {
        let mut f = Fairness::new(cfg(), 2);
        f.on_proactive_drop(TaskTypeId(1));
        f.on_proactive_drop(TaskTypeId(1));
        assert!((f.score(TaskTypeId(1)) - 0.10).abs() < 1e-12);
        assert!(
            (f.effective_threshold(0.5, TaskTypeId(1)) - 0.40).abs() < 1e-12
        );
        // Type 0 untouched.
        assert_eq!(f.score(TaskTypeId(0)), 0.0);
    }

    #[test]
    fn completions_recover_sufferage() {
        let mut f = Fairness::new(cfg(), 1);
        f.on_proactive_drop(TaskTypeId(0));
        f.on_completion(TaskTypeId(0));
        assert!(f.score(TaskTypeId(0)).abs() < 1e-12);
    }

    #[test]
    fn scores_clamp_at_configured_bounds() {
        let mut f = Fairness::new(cfg(), 1);
        // 100 completions cannot push the score below min_score = 0.
        for _ in 0..100 {
            f.on_completion(TaskTypeId(0));
        }
        assert_eq!(f.score(TaskTypeId(0)), 0.0);
        // 100 drops cannot push it above max_score = β.
        for _ in 0..100 {
            f.on_proactive_drop(TaskTypeId(0));
        }
        assert!((f.score(TaskTypeId(0)) - 0.5).abs() < 1e-12);
        // Effective threshold bottoms out at zero: the suffered type is
        // never pruned.
        assert!(f.effective_threshold(0.5, TaskTypeId(0)).abs() < 1e-12);
    }

    #[test]
    fn literal_paper_mode_allows_negative_scores() {
        let mut f = Fairness::new(
            FairnessConfig {
                min_score: -0.5,
                ..FairnessConfig::paper_default(0.5)
            },
            1,
        );
        for _ in 0..3 {
            f.on_completion(TaskTypeId(0));
        }
        assert!((f.score(TaskTypeId(0)) + 0.15).abs() < 1e-12);
        // Successful types are held to a *higher* bar.
        assert!(
            (f.effective_threshold(0.5, TaskTypeId(0)) - 0.65).abs() < 1e-12
        );
    }

    #[test]
    fn reactive_drops_respect_configuration() {
        let mut off = Fairness::new(cfg(), 1);
        off.on_reactive_drop(TaskTypeId(0));
        assert_eq!(off.score(TaskTypeId(0)), 0.0);

        let mut on = Fairness::new(
            FairnessConfig {
                count_reactive_drops: true,
                ..cfg()
            },
            1,
        );
        on.on_reactive_drop(TaskTypeId(0));
        assert!((on.score(TaskTypeId(0)) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn disabled_fairness_pins_scores() {
        let mut f = Fairness::new(FairnessConfig::disabled(), 1);
        f.on_proactive_drop(TaskTypeId(0));
        f.on_completion(TaskTypeId(0));
        assert_eq!(f.score(TaskTypeId(0)), 0.0);
    }
}
