//! The pruning mechanism (§IV of the paper, Fig. 4–5).
//!
//! Four cooperating modules, mirroring the paper's architecture:
//!
//! * [`accounting`] — gathers task meta-data from the resource
//!   allocation system (completions, drops, misses);
//! * [`toggle`] — measures oversubscription and decides when the
//!   aggressive dropping operation engages;
//! * [`fairness`] — per-task-type sufferage scores offsetting the
//!   pruning threshold so no type is persistently sacrificed;
//! * [`mechanism`] — the Pruner itself: deferring (Step 10) and
//!   dropping (Steps 4–6), driven by the chance-of-success estimates the
//!   simulator's machine queues maintain.

pub mod accounting;
pub mod config;
pub mod fairness;
pub mod mechanism;
pub mod toggle;

pub use accounting::Accounting;
pub use config::{FairnessConfig, PruningConfig, ToggleMode};
pub use fairness::Fairness;
pub use mechanism::PruningMechanism;
pub use toggle::Toggle;
