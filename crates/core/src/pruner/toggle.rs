//! The Toggle module (§IV-C): deciding when dropping engages.
//!
//! Proactive dropping is "a more aggressive pruning decision and should
//! be enacted only under high levels of oversubscription". The Toggle
//! measures oversubscription as the number of deadline misses since the
//! previous mapping event and engages dropping when that count reaches
//! the configurable Dropping Toggle α.

use super::config::ToggleMode;

/// The dropping on/off switch.
#[derive(Debug, Clone, Copy)]
pub struct Toggle {
    mode: ToggleMode,
    engaged: bool,
}

impl Toggle {
    /// Creates a toggle in the given mode, initially disengaged (except
    /// for [`ToggleMode::Always`]).
    pub fn new(mode: ToggleMode) -> Self {
        Self {
            mode,
            engaged: matches!(mode, ToggleMode::Always),
        }
    }

    /// Updates the engagement decision from this event's miss count.
    pub fn update(&mut self, misses_since_last_event: usize) {
        self.engaged = match self.mode {
            ToggleMode::Never => false,
            ToggleMode::Always => true,
            ToggleMode::Reactive { alpha } => misses_since_last_event >= alpha,
        };
    }

    /// Whether dropping is engaged for the current mapping event.
    pub fn dropping_engaged(&self) -> bool {
        self.engaged
    }

    /// Overrides the engagement decision — only for restoring a
    /// checkpointed mechanism mid-event-cycle.
    pub(crate) fn set_engaged(&mut self, engaged: bool) {
        self.engaged = engaged;
    }

    /// The configured mode.
    pub fn mode(&self) -> ToggleMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_mode_stays_off() {
        let mut t = Toggle::new(ToggleMode::Never);
        t.update(100);
        assert!(!t.dropping_engaged());
    }

    #[test]
    fn always_mode_stays_on() {
        let mut t = Toggle::new(ToggleMode::Always);
        assert!(t.dropping_engaged());
        t.update(0);
        assert!(t.dropping_engaged());
    }

    #[test]
    fn reactive_mode_follows_misses() {
        let mut t = Toggle::new(ToggleMode::Reactive { alpha: 1 });
        assert!(!t.dropping_engaged());
        t.update(1);
        assert!(t.dropping_engaged());
        t.update(0);
        assert!(!t.dropping_engaged());
    }

    #[test]
    fn reactive_alpha_thresholds() {
        let mut t = Toggle::new(ToggleMode::Reactive { alpha: 3 });
        t.update(2);
        assert!(!t.dropping_engaged());
        t.update(3);
        assert!(t.dropping_engaged());
    }
}
