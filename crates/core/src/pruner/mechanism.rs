//! The Pruner (Fig. 5): deferring and dropping decisions.
//!
//! Implements the paper's per-mapping-event procedure:
//!
//! ```text
//! (2) collect completions since the previous event  → Fairness γₖ −= c
//! (3) if oversubscription > α                       → Toggle engages
//! (4–6) for each task in each machine queue:
//!         if chance(i,j) ≤ β − γₖ → drop, γₖ += c
//! (10) for each task the heuristic mapped:
//!         if chance(i,j) ≤ β − γₖ → defer to the next mapping event
//! ```
//!
//! Steps 1 (reactive drops) and 7–9/11 (the mapping loop and dispatch)
//! are the engine's responsibility; this type plugs into the engine via
//! the [`Pruner`] trait, leaving the mapping heuristic untouched.

use super::accounting::Accounting;
use super::config::PruningConfig;
use super::fairness::Fairness;
use super::toggle::Toggle;
use serde::{Deserialize, Serialize};
use taskprune_model::{MachineId, Task, TaskId};
use taskprune_sim::{EventReport, Pruner, SystemView};

/// The probabilistic task-pruning mechanism.
#[derive(Debug, Clone)]
pub struct PruningMechanism {
    cfg: PruningConfig,
    accounting: Accounting,
    toggle: Toggle,
    fairness: Fairness,
}

impl PruningMechanism {
    /// Builds the mechanism for a system with `n_task_types` task types.
    pub fn new(cfg: PruningConfig, n_task_types: usize) -> Self {
        Self {
            cfg,
            accounting: Accounting::new(),
            toggle: Toggle::new(cfg.toggle),
            fairness: Fairness::new(cfg.fairness, n_task_types),
        }
    }

    /// The mechanism's configuration.
    pub fn config(&self) -> &PruningConfig {
        &self.cfg
    }

    /// Read access to the accounting counters (for reports and tests).
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Read access to the fairness scores (for reports and tests).
    pub fn fairness(&self) -> &Fairness {
        &self.fairness
    }

    /// Whether dropping is engaged for the current event.
    pub fn dropping_engaged(&self) -> bool {
        self.toggle.dropping_engaged()
    }
}

impl Pruner for PruningMechanism {
    fn name(&self) -> &str {
        "probabilistic-pruning"
    }

    fn begin_event(&mut self, report: &EventReport) {
        // Step 2: Accounting digests the report; Fairness credits
        // on-time completions.
        self.accounting.observe(report);
        for (task, on_time) in &report.completed {
            if *on_time {
                self.fairness.on_completion(task.type_id);
            }
        }
        for task in &report.dropped_reactive {
            self.fairness.on_reactive_drop(task.type_id);
        }
        // Step 3: Toggle re-evaluates oversubscription.
        self.toggle
            .update(self.accounting.misses_since_last_event());
    }

    fn select_drops(
        &mut self,
        view: &SystemView<'_>,
    ) -> Vec<(MachineId, TaskId)> {
        let mut out = Vec::new();
        self.select_drops_into(view, &mut out);
        out
    }

    /// The real implementation: the scheduler core calls this on the
    /// hot path with a reused output buffer.
    fn select_drops_into(
        &mut self,
        view: &SystemView<'_>,
        out: &mut Vec<(MachineId, TaskId)>,
    ) {
        // Steps 4–6, guarded by the Toggle.
        if !self.toggle.dropping_engaged() {
            return;
        }
        for machine in view.machines() {
            let beta = self.cfg.threshold;
            let fairness = &mut self.fairness;
            let accounting = &mut self.accounting;
            let drops = view.plan_queue_drops(machine.id, |task, chance| {
                let threshold =
                    fairness.effective_threshold(beta, task.type_id);
                if chance <= threshold {
                    // Step 6: drop and record the type's suffering.
                    fairness.on_proactive_drop(task.type_id);
                    accounting.observe_proactive_drop();
                    true
                } else {
                    false
                }
            });
            out.extend(drops.into_iter().map(|id| (machine.id, id)));
        }
    }

    fn should_defer(&mut self, task: &Task, chance: f64) -> bool {
        // Step 10. Deferring applies only in batch mode; the engine only
        // consults this hook from the batch mapping loop.
        if !self.cfg.defer_enabled {
            return false;
        }
        chance
            <= self
                .fairness
                .effective_threshold(self.cfg.threshold, task.type_id)
    }

    fn tighten_threshold(&mut self, factor: f64) {
        // Raising β prunes more: every chance ≤ β − γₖ comparison
        // catches more tasks. Clamp to the same (0, 1] range
        // `with_threshold` enforces, and keep the fairness clamp
        // consistent with it (sufferage never exempts past β).
        let t = (self.cfg.threshold * factor).clamp(0.0, 1.0);
        self.cfg.threshold = t;
        self.cfg.fairness.max_score = self.cfg.fairness.max_score.min(t);
    }

    fn snapshot_state(&self) -> serde::Value {
        // Configuration (toggle mode, fairness factor) is
        // construction-time state, like a queue's capacity: the restore
        // target must be built with the same config, so only the
        // evolving state travels. The threshold is the exception since
        // `tighten_threshold` made it mutable mid-run.
        serde::Value::Object(vec![
            (
                "threshold".to_owned(),
                serde::Value::Float(self.cfg.threshold),
            ),
            ("accounting".to_owned(), self.accounting.to_value()),
            (
                "engaged".to_owned(),
                serde::Value::Bool(self.toggle.dropping_engaged()),
            ),
            (
                "scores".to_owned(),
                serde::Serialize::to_value(self.fairness.scores()),
            ),
        ])
    }

    fn restore_state(
        &mut self,
        state: &serde::Value,
    ) -> Result<(), serde::Error> {
        let accounting =
            Accounting::from_value(state.get_field("accounting")?)?;
        let engaged = bool::from_value(state.get_field("engaged")?)?;
        let scores = Vec::<f64>::from_value(state.get_field("scores")?)?;
        if !self.fairness.restore_scores(&scores) {
            return Err(serde::Error::custom(
                "fairness score count differs from this mechanism's \
                 task-type count",
            ));
        }
        // Absent in pre-tightening snapshots: the threshold was
        // construction-only then, so the built value is already right.
        if let Some(v) = state.get_opt("threshold") {
            self.cfg.threshold = f64::from_value(v)?;
        }
        self.accounting = accounting;
        self.toggle.set_engaged(engaged);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruner::config::ToggleMode;
    use taskprune_model::{BinSpec, Cluster, PetMatrix, SimTime, TaskTypeId};
    use taskprune_prob::Pmf;
    use taskprune_sim::queue_testing::make_queues;

    fn pet() -> PetMatrix {
        // One machine type, one task type: PET = {2: 0.5, 4: 0.5} bins.
        PetMatrix::new(
            BinSpec::new(100),
            1,
            1,
            vec![Pmf::from_points(&[(2, 0.5), (4, 0.5)]).unwrap()],
        )
    }

    fn task(id: u64, deadline: u64) -> Task {
        Task::new(id, TaskTypeId(0), SimTime(0), SimTime(deadline))
    }

    fn miss_report() -> EventReport {
        EventReport {
            now: SimTime(0),
            completed: vec![],
            dropped_reactive: vec![task(999, 0)],
            cancelled: vec![],
        }
    }

    #[test]
    fn defers_below_threshold_only() {
        let mut p = PruningMechanism::new(PruningConfig::paper_default(), 1);
        assert!(p.should_defer(&task(0, 1_000), 0.49));
        assert!(p.should_defer(&task(1, 1_000), 0.50));
        assert!(!p.should_defer(&task(2, 1_000), 0.51));
    }

    #[test]
    fn defer_disabled_never_defers() {
        let cfg = PruningConfig {
            defer_enabled: false,
            ..PruningConfig::paper_default()
        };
        let mut p = PruningMechanism::new(cfg, 1);
        assert!(!p.should_defer(&task(0, 1_000), 0.0));
    }

    #[test]
    fn drops_require_toggle_engagement() {
        let pet = pet();
        let cluster = Cluster::one_per_type(1);
        let mut queues = make_queues(&cluster, 4, 256);
        // A task with zero chance: deadline bin 1 < min completion bin 2.
        queues[0].admit(task(0, 200));
        let view = SystemView::new(SimTime(0), &queues, &pet);

        let mut p = PruningMechanism::new(PruningConfig::paper_default(), 1);
        // No misses observed → reactive toggle stays off → no drops.
        p.begin_event(&EventReport::default());
        assert!(p.select_drops(&view).is_empty());
        // A deadline miss engages the toggle → the hopeless task drops.
        p.begin_event(&miss_report());
        let drops = p.select_drops(&view);
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].1, task(0, 200).id);
    }

    #[test]
    fn always_toggle_drops_without_misses() {
        let pet = pet();
        let cluster = Cluster::one_per_type(1);
        let mut queues = make_queues(&cluster, 4, 256);
        queues[0].admit(task(0, 200));
        let view = SystemView::new(SimTime(0), &queues, &pet);
        let cfg =
            PruningConfig::paper_default().with_toggle(ToggleMode::Always);
        let mut p = PruningMechanism::new(cfg, 1);
        p.begin_event(&EventReport::default());
        assert_eq!(p.select_drops(&view).len(), 1);
    }

    #[test]
    fn never_toggle_never_drops() {
        let pet = pet();
        let cluster = Cluster::one_per_type(1);
        let mut queues = make_queues(&cluster, 4, 256);
        queues[0].admit(task(0, 200));
        let view = SystemView::new(SimTime(0), &queues, &pet);
        let cfg = PruningConfig::defer_only(0.5);
        let mut p = PruningMechanism::new(cfg, 1);
        p.begin_event(&miss_report());
        assert!(p.select_drops(&view).is_empty());
    }

    #[test]
    fn confident_tasks_survive_dropping() {
        let pet = pet();
        let cluster = Cluster::one_per_type(1);
        let mut queues = make_queues(&cluster, 4, 256);
        // Deadline bin 9 ≥ max completion bin 4 → chance 1.0.
        queues[0].admit(task(0, 999));
        let view = SystemView::new(SimTime(0), &queues, &pet);
        let cfg =
            PruningConfig::paper_default().with_toggle(ToggleMode::Always);
        let mut p = PruningMechanism::new(cfg, 1);
        p.begin_event(&EventReport::default());
        assert!(p.select_drops(&view).is_empty());
    }

    #[test]
    fn dropping_updates_fairness_scores() {
        let pet = pet();
        let cluster = Cluster::one_per_type(1);
        let mut queues = make_queues(&cluster, 4, 256);
        queues[0].admit(task(0, 200));
        queues[0].admit(task(1, 200));
        let view = SystemView::new(SimTime(0), &queues, &pet);
        let cfg =
            PruningConfig::paper_default().with_toggle(ToggleMode::Always);
        let mut p = PruningMechanism::new(cfg, 1);
        p.begin_event(&EventReport::default());
        let drops = p.select_drops(&view);
        assert_eq!(drops.len(), 2);
        // Two drops × c=0.05.
        assert!((p.fairness().score(TaskTypeId(0)) - 0.10).abs() < 1e-12);
        assert_eq!(p.accounting().total_proactive_drops, 2);
    }

    #[test]
    fn suffered_type_becomes_exempt_from_deferral() {
        let cfg = PruningConfig::paper_default();
        let mut p = PruningMechanism::new(cfg, 1);
        // Saturate the sufferage score (clamped at β = 0.5).
        for _ in 0..20 {
            p.fairness.on_proactive_drop(TaskTypeId(0));
        }
        // Effective threshold is now 0: even a hopeless task is mapped.
        assert!(!p.should_defer(&task(0, 1_000), 0.001));
        // But an *exactly* zero chance still defers (chance ≤ 0).
        assert!(p.should_defer(&task(1, 1_000), 0.0));
    }

    #[test]
    fn completions_restore_strictness() {
        let mut p = PruningMechanism::new(PruningConfig::paper_default(), 1);
        for _ in 0..4 {
            p.fairness.on_proactive_drop(TaskTypeId(0));
        }
        // threshold = 0.5 − 0.2 = 0.3.
        assert!(!p.should_defer(&task(0, 1_000), 0.35));
        // Two on-time completions: threshold back to 0.4.
        let report = EventReport {
            now: SimTime(10),
            completed: vec![(task(5, 100), true), (task(6, 100), true)],
            dropped_reactive: vec![],
            cancelled: vec![],
        };
        p.begin_event(&report);
        assert!(p.should_defer(&task(0, 1_000), 0.35));
    }
}
