//! # taskprune — probabilistic task pruning for robust serverless computing
//!
//! A from-scratch Rust implementation of *"Improving Robustness of
//! Heterogeneous Serverless Computing Systems Via Probabilistic Task
//! Pruning"* (Denninnart, Gentry, Amini Salehi — IPDPS Workshops 2019).
//!
//! The paper's idea: in an oversubscribed heterogeneous cluster, mapping
//! a task that probably cannot meet its deadline wastes capacity *and*
//! pushes other tasks past their deadlines. A **pruning mechanism** —
//! pluggable beside any existing mapping heuristic — computes each task's
//! probabilistic chance of success (from execution-time PMFs convolved
//! along the machine queue, Eq. 1–2) and
//!
//! * **defers** batch-queue tasks whose chance is below the *pruning
//!   threshold* (they may find a better machine at a later mapping
//!   event), and
//! * **drops** machine-queue tasks probabilistically once the *Toggle*
//!   module detects oversubscription, which also shrinks the compound
//!   uncertainty for the tasks behind them,
//!
//! while a **Fairness** module offsets the threshold per task type so the
//! mechanism does not starve long-running task types.
//!
//! ## Quick start
//!
//! ```
//! use taskprune::prelude::*;
//!
//! // The paper's cluster, PET matrix, and a small spiky workload.
//! let pet = PetGenConfig::paper_heterogeneous(7).generate();
//! let cluster = taskprune_workload::machines::heterogeneous_cluster();
//! let workload = WorkloadConfig {
//!     total_tasks: 600,
//!     span_tu: 120.0,
//!     ..WorkloadConfig::paper_default(7)
//! };
//! let trial = workload.generate_trial(&pet, 0);
//!
//! // MM heuristic, with and without the pruning mechanism.
//! let baseline = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
//!     .heuristic(HeuristicKind::Mm)
//!     .run(&trial.tasks);
//! let pruned = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
//!     .heuristic(HeuristicKind::Mm)
//!     .pruning(PruningConfig::paper_default())
//!     .run(&trial.tasks);
//!
//! println!(
//!     "robustness: {:.1}% -> {:.1}%",
//!     baseline.robustness_pct(0),
//!     pruned.robustness_pct(0),
//! );
//! ```

#![warn(missing_docs)]

pub mod allocator;
pub mod experiment;
pub mod extensions;
pub mod pruner;

pub use allocator::ResourceAllocator;
pub use experiment::{
    run_experiment, run_federated_experiment, ClusterKind, ExperimentConfig,
    ExperimentResult,
};
pub use pruner::{FairnessConfig, PruningConfig, PruningMechanism, ToggleMode};

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use crate::allocator::ResourceAllocator;
    pub use crate::experiment::{
        run_experiment, run_federated_experiment, ClusterKind,
        ExperimentConfig, ExperimentResult,
    };
    pub use crate::pruner::{
        FairnessConfig, PruningConfig, PruningMechanism, ToggleMode,
    };
    pub use taskprune_heuristics::{BestChanceRoute, HeuristicKind};
    pub use taskprune_model::{Cluster, PetMatrix, SimTime, Task, TaskOutcome};
    pub use taskprune_sim::{
        Admission, Consistency, FaultKind, FaultPlan, FaultSpec,
        FederationStats, GatewayBuilder, LeastQueuedRoute,
        ParallelFederatedEngine, ParallelSupervisor, RecoveryLog,
        RecoveryPolicy, ReuseMode, ReusePolicy, ReuseStats, RoundRobinRoute,
        RoutePolicy, RunError, SimConfig, SimStats, StealStats, Supervisor,
    };
    pub use taskprune_workload::{
        ArrivalPattern, PetGenConfig, WorkloadConfig,
    };
}
