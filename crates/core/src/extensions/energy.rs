//! Energy / incurred-cost accounting (§VII future work).
//!
//! The simulator already splits executed machine time into *useful*
//! (on-time completions) and *wasted* (late or cancelled work). A
//! [`CostModel`] converts both into energy and money, quantifying what
//! the pruning mechanism saves a serverless provider.

use serde::{Deserialize, Serialize};
use taskprune_model::TICKS_PER_TIME_UNIT;
use taskprune_sim::SimStats;

/// Converts machine time into energy and cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Average active power draw of one machine, in watts.
    pub active_power_watts: f64,
    /// Wall-clock seconds represented by one simulated time unit.
    pub seconds_per_time_unit: f64,
    /// Price of a machine-hour, in currency units (the serverless
    /// provider's marginal cost of busy capacity).
    pub price_per_machine_hour: f64,
}

impl CostModel {
    /// A representative model: 200 W servers, 1 simulated time unit =
    /// 1 second, $0.10 per machine-hour.
    pub fn representative() -> Self {
        Self {
            active_power_watts: 200.0,
            seconds_per_time_unit: 1.0,
            price_per_machine_hour: 0.10,
        }
    }

    fn ticks_to_hours(&self, ticks: u64) -> f64 {
        let time_units = ticks as f64 / TICKS_PER_TIME_UNIT as f64;
        time_units * self.seconds_per_time_unit / 3_600.0
    }

    /// Builds the energy/cost report for one run's outcome.
    pub fn report(&self, stats: &SimStats) -> EnergyReport {
        let useful_h = self.ticks_to_hours(stats.useful_ticks);
        let wasted_h = self.ticks_to_hours(stats.wasted_ticks);
        EnergyReport {
            useful_machine_hours: useful_h,
            wasted_machine_hours: wasted_h,
            wasted_energy_wh: wasted_h * self.active_power_watts,
            wasted_cost: wasted_h * self.price_per_machine_hour,
            total_cost: (useful_h + wasted_h) * self.price_per_machine_hour,
        }
    }
}

/// Energy and cost attributed to one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Machine-hours spent on on-time completions.
    pub useful_machine_hours: f64,
    /// Machine-hours spent on work that produced no value.
    pub wasted_machine_hours: f64,
    /// Energy behind the wasted hours, in watt-hours.
    pub wasted_energy_wh: f64,
    /// Cost of the wasted hours.
    pub wasted_cost: f64,
    /// Cost of all executed hours.
    pub total_cost: f64,
}

impl EnergyReport {
    /// Wasted share of the total executed time (0 when idle).
    pub fn wasted_share(&self) -> f64 {
        let total = self.useful_machine_hours + self.wasted_machine_hours;
        if total == 0.0 {
            0.0
        } else {
            self.wasted_machine_hours / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_ticks_to_hours_energy_and_cost() {
        let mut stats = SimStats::new(0, 1);
        // 7200 time units of useful work, 3600 wasted — at 1 s per time
        // unit that is 2 h useful, 1 h wasted.
        stats.record_execution(7_200 * TICKS_PER_TIME_UNIT, true);
        stats.record_execution(3_600 * TICKS_PER_TIME_UNIT, false);
        let report = CostModel::representative().report(&stats);
        assert!((report.useful_machine_hours - 2.0).abs() < 1e-9);
        assert!((report.wasted_machine_hours - 1.0).abs() < 1e-9);
        assert!((report.wasted_energy_wh - 200.0).abs() < 1e-9);
        assert!((report.wasted_cost - 0.10).abs() < 1e-9);
        assert!((report.total_cost - 0.30).abs() < 1e-9);
        assert!((report.wasted_share() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn idle_run_reports_zero() {
        let stats = SimStats::new(0, 1);
        let report = CostModel::representative().report(&stats);
        assert_eq!(report.wasted_share(), 0.0);
        assert_eq!(report.total_cost, 0.0);
    }
}
