//! Extensions beyond the paper's evaluated mechanism — the future-work
//! directions its §VII sketches, implemented so they can be measured:
//!
//! * [`energy`] — energy / incurred-cost accounting of the machine time
//!   pruning saves ("probabilistic task pruning improves energy
//!   efficiency by saving the computing power that is otherwise wasted
//!   to execute failing tasks");
//! * [`priority`] — cost/priority-aware pruning ("pruning methods that
//!   incorporate cost/priority of tasks, when considering dropping each
//!   individual task");
//! * [`learning`] — learned / miscalibrated PET matrices, measuring how
//!   robust the mechanism is when the execution-time model is wrong
//!   (the paper assumes an offline-measured PET).

pub mod energy;
pub mod learning;
pub mod priority;

pub use energy::{CostModel, EnergyReport};
pub use learning::{learn_from_observations, miscalibrate};
pub use priority::PriorityAwarePruner;
