//! Learned execution-time models: how robust is pruning to PET error?
//!
//! The paper assumes the PET matrix is given (measured offline, §V-B).
//! A real serverless platform must *learn* it from observed executions,
//! so its early estimates are noisy. This module builds such learned
//! matrices — histograms over `k` observations per (machine type, task
//! type) cell, exactly the estimator a platform would bootstrap — plus a
//! systematically miscalibrated variant, and the engine's
//! belief-vs-truth split (`Engine::with_truth`) measures what the error
//! costs. The `model_error` bench bin sweeps `k`.

use taskprune_model::{MachineTypeId, PetMatrix, TaskTypeId};
use taskprune_prob::rng::{derive_seed, Xoshiro256PlusPlus};
use taskprune_prob::{Histogram, Pmf};

/// Builds a PET matrix learned from `samples_per_cell` observed
/// executions per cell, drawn from `truth` (the platform watching its
/// own completions). Same shape and bin width as the truth matrix.
pub fn learn_from_observations(
    truth: &PetMatrix,
    samples_per_cell: usize,
    seed: u64,
) -> PetMatrix {
    assert!(samples_per_cell > 0, "need at least one observation");
    let bin_spec = truth.bin_spec();
    let mut entries =
        Vec::with_capacity(truth.n_machine_types() * truth.n_task_types());
    for m in 0..truth.n_machine_types() {
        for t in 0..truth.n_task_types() {
            let machine = MachineTypeId(m as u16);
            let task = TaskTypeId(t as u16);
            let mut rng = Xoshiro256PlusPlus::new(derive_seed(
                seed,
                (m as u64) << 32 | t as u64,
            ));
            let mut hist = Histogram::new(bin_spec.width() as f64)
                .expect("positive bin width");
            for _ in 0..samples_per_cell {
                let d = truth.sample_duration(machine, task, &mut rng);
                hist.add(d.ticks() as f64);
            }
            entries.push(hist.to_pmf().expect("at least one sample"));
        }
    }
    PetMatrix::new(
        bin_spec,
        truth.n_machine_types(),
        truth.n_task_types(),
        entries,
    )
}

/// Builds a systematically miscalibrated belief: every execution-time
/// distribution stretched by `factor` (> 1 = pessimistic belief, < 1 =
/// optimistic). Bin mass moves to `round(bin · factor)`.
pub fn miscalibrate(truth: &PetMatrix, factor: f64) -> PetMatrix {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "factor must be positive"
    );
    let mut entries =
        Vec::with_capacity(truth.n_machine_types() * truth.n_task_types());
    for m in 0..truth.n_machine_types() {
        for t in 0..truth.n_task_types() {
            let pet = truth.pet(MachineTypeId(m as u16), TaskTypeId(t as u16));
            let points: Vec<(u64, f64)> = pet
                .iter()
                .filter(|(_, p)| *p > 0.0)
                .map(|(b, p)| ((b as f64 * factor).round() as u64, p))
                .collect();
            entries.push(
                Pmf::from_points(&points).expect("non-empty stretched PMF"),
            );
        }
    }
    PetMatrix::new(
        truth.bin_spec(),
        truth.n_machine_types(),
        truth.n_task_types(),
        entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_model::BinSpec;

    fn truth() -> PetMatrix {
        PetMatrix::new(
            BinSpec::new(100),
            2,
            2,
            vec![
                Pmf::from_points(&[(2, 0.5), (6, 0.5)]).unwrap(),
                Pmf::point_mass(4),
                Pmf::from_points(&[(1, 0.25), (3, 0.75)]).unwrap(),
                Pmf::point_mass(9),
            ],
        )
    }

    #[test]
    fn learned_matrix_has_truth_shape() {
        let learned = learn_from_observations(&truth(), 50, 1);
        assert_eq!(learned.n_machine_types(), 2);
        assert_eq!(learned.n_task_types(), 2);
        assert_eq!(learned.bin_spec(), truth().bin_spec());
    }

    #[test]
    fn learning_converges_with_samples() {
        let truth = truth();
        let few = learn_from_observations(&truth, 3, 7);
        let many = learn_from_observations(&truth, 5_000, 7);
        let cell =
            |p: &PetMatrix| p.expected_bins(MachineTypeId(0), TaskTypeId(0));
        let true_mean = cell(&truth);
        let err_many = (cell(&many) - true_mean).abs();
        // 5 000 observations pin the mean to within a small fraction of
        // a bin; 3 observations usually do not (not asserted — they may
        // get lucky — but the converged error must be tiny).
        assert!(err_many < 0.1, "err {err_many}");
        let _ = few;
    }

    #[test]
    fn learning_is_deterministic_per_seed() {
        let truth = truth();
        let a = learn_from_observations(&truth, 20, 5);
        let b = learn_from_observations(&truth, 20, 5);
        assert_eq!(a, b);
        let c = learn_from_observations(&truth, 20, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn miscalibration_scales_expectations() {
        let truth = truth();
        let pessimistic = miscalibrate(&truth, 2.0);
        let optimistic = miscalibrate(&truth, 0.5);
        for m in 0..2u16 {
            for t in 0..2u16 {
                let base = truth.expected_bins(MachineTypeId(m), TaskTypeId(t));
                let hi =
                    pessimistic.expected_bins(MachineTypeId(m), TaskTypeId(t));
                let lo =
                    optimistic.expected_bins(MachineTypeId(m), TaskTypeId(t));
                assert!((hi - base * 2.0).abs() <= 0.5, "{hi} vs {base}");
                assert!((lo - base * 0.5).abs() <= 0.5, "{lo} vs {base}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn miscalibrate_rejects_zero_factor() {
        miscalibrate(&truth(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn learning_needs_samples() {
        learn_from_observations(&truth(), 0, 1);
    }
}
