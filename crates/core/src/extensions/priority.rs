//! Priority-aware pruning (§VII future work).
//!
//! The evaluated mechanism treats every task as equally valuable. This
//! extension weighs the *dropping* threshold by each task's `value`: a
//! task worth `v` is dropped only if its chance of success falls below
//! `threshold / v`, so high-value tasks survive with slimmer chances and
//! low-value tasks must be safer bets to keep occupying a queue slot —
//! the "incorporate cost/priority of tasks, when considering dropping
//! each individual task" direction of the paper's conclusion.
//!
//! Deferring deliberately stays value-blind: deferral is *protective*
//! (the task waits in the batch queue for a machine with better odds),
//! so exempting valuable tasks from it would push them onto bad
//! machines early and hurt exactly the tasks it means to protect.

use crate::pruner::{PruningConfig, PruningMechanism};
use taskprune_model::{MachineId, Task, TaskId};
use taskprune_sim::{EventReport, Pruner, SystemView};

/// A pruner that scales the effective threshold by task value.
#[derive(Debug, Clone)]
pub struct PriorityAwarePruner {
    inner: PruningMechanism,
    threshold: f64,
}

impl PriorityAwarePruner {
    /// Wraps the standard mechanism with value-weighted thresholds.
    pub fn new(cfg: PruningConfig, n_task_types: usize) -> Self {
        Self {
            inner: PruningMechanism::new(cfg, n_task_types),
            threshold: cfg.threshold,
        }
    }

    /// The value-weighted dropping threshold for a task: `β / value`,
    /// clamped to [0, 1]. A zero/negative value degenerates to "always
    /// prune-able" via threshold 1.
    fn value_threshold(&self, task: &Task) -> f64 {
        if task.value <= 0.0 {
            return 1.0;
        }
        (self.threshold / task.value).clamp(0.0, 1.0)
    }

    /// Access to the wrapped mechanism (accounting, fairness).
    pub fn inner(&self) -> &PruningMechanism {
        &self.inner
    }
}

impl Pruner for PriorityAwarePruner {
    fn name(&self) -> &str {
        "priority-aware-pruning"
    }

    fn begin_event(&mut self, report: &EventReport) {
        self.inner.begin_event(report);
    }

    fn select_drops(
        &mut self,
        view: &SystemView<'_>,
    ) -> Vec<(MachineId, TaskId)> {
        // Value-weighted drop pass: mirror the inner mechanism's walk
        // but weight each task's bar by its value. Fairness offsets
        // still apply through the inner mechanism's score table.
        if !self.inner.dropping_engaged() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for machine in view.machines() {
            let drops = view.plan_queue_drops(machine.id, |task, chance| {
                let fairness_offset = self.inner.fairness().score(task.type_id);
                let bar =
                    (self.value_threshold(task) - fairness_offset).max(0.0);
                chance <= bar && chance < 1.0
            });
            out.extend(drops.into_iter().map(|id| (machine.id, id)));
        }
        out
    }

    fn should_defer(&mut self, task: &Task, chance: f64) -> bool {
        // Deferral is protective, not destructive: delegate to the
        // standard value-blind mechanism (see module docs).
        self.inner.should_defer(task, chance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_model::{SimTime, TaskTypeId};

    fn task_with_value(value: f64) -> Task {
        let mut t = Task::new(0, TaskTypeId(0), SimTime(0), SimTime(10_000));
        t.value = value;
        t
    }

    fn pruner() -> PriorityAwarePruner {
        PriorityAwarePruner::new(PruningConfig::paper_default(), 1)
    }

    #[test]
    fn deferral_is_value_blind() {
        let mut p = pruner();
        for value in [0.1, 1.0, 5.0] {
            assert!(p.should_defer(&task_with_value(value), 0.49));
            assert!(!p.should_defer(&task_with_value(value), 0.51));
        }
    }

    #[test]
    fn value_threshold_scales_dropping_bar() {
        let p = pruner();
        // value 5 → drop bar 0.1; value 0.5 → bar 1.0; value 1 → β.
        assert!((p.value_threshold(&task_with_value(5.0)) - 0.1).abs() < 1e-12);
        assert!((p.value_threshold(&task_with_value(0.5)) - 1.0).abs() < 1e-12);
        assert!((p.value_threshold(&task_with_value(1.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nonpositive_value_is_always_prunable() {
        let p = pruner();
        assert_eq!(p.value_threshold(&task_with_value(0.0)), 1.0);
        assert_eq!(p.value_threshold(&task_with_value(-2.0)), 1.0);
    }

    #[test]
    fn drops_respect_value_weighting() {
        use taskprune_model::{BinSpec, Cluster, PetMatrix};
        use taskprune_prob::Pmf;
        use taskprune_sim::queue_testing::make_queues;

        let pet = PetMatrix::new(
            BinSpec::new(100),
            1,
            1,
            vec![Pmf::from_points(&[(2, 0.5), (4, 0.5)]).unwrap()],
        );
        let cluster = Cluster::one_per_type(1);
        let mut queues = make_queues(&cluster, 4, 256);
        // Two tasks with 50 % chance (deadline bin 2): the high-value one
        // must survive an always-on dropping pass, the unit-value one
        // (chance ≤ β) must not.
        let mut precious =
            Task::new(0, TaskTypeId(0), SimTime(0), SimTime(300));
        precious.value = 5.0;
        queues[0].admit(precious);

        let mut p = PriorityAwarePruner::new(
            PruningConfig::paper_default()
                .with_toggle(crate::pruner::ToggleMode::Always),
            1,
        );
        p.begin_event(&EventReport::default());
        let view = SystemView::new(SimTime(0), &queues, &pet);
        assert!(
            p.select_drops(&view).is_empty(),
            "value-5 task with 50% chance must survive"
        );

        // Same chance, unit value → dropped.
        let mut queues2 = make_queues(&cluster, 4, 256);
        queues2[0].admit(Task::new(1, TaskTypeId(0), SimTime(0), SimTime(300)));
        let view2 = SystemView::new(SimTime(0), &queues2, &pet);
        assert_eq!(p.select_drops(&view2).len(), 1);
    }
}
