//! The experiment runner: the paper's 30-trial protocol (§V-A).
//!
//! One [`ExperimentConfig`] describes a single point in one of the
//! paper's plots — a (heuristic, pruning, workload, cluster) tuple — and
//! [`run_experiment`] executes its independent trials in parallel with
//! rayon (the paper used an HPC cluster for the same fan-out), reporting
//! the mean and 95 % confidence interval of the robustness metric.
//!
//! Trials are scheduled **one job per trial on a work-stealing pool**
//! (the vendored rayon), not chunk-per-core: trial durations are
//! heavily skewed — an oversubscribed trial's mapping events cost far
//! more than an undersubscribed one's — and contiguous chunks used to
//! leave cores idle behind the slowest chunk. Stealing reorders only
//! *execution*; each trial writes its own result slot, so the
//! aggregate is bit-identical at any pool size (`TASKPRUNE_THREADS`
//! pins the size; `tests/determinism.rs` pins the identity against a
//! serial reference).

use crate::allocator::ResourceAllocator;
use crate::pruner::PruningConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use taskprune_heuristics::HeuristicKind;
use taskprune_model::Cluster;
use taskprune_prob::rng::derive_seed;
use taskprune_prob::stats::SummaryStats;
use taskprune_sim::stats::PAPER_TRIM;
use taskprune_sim::SimConfig;
use taskprune_workload::{PetGenConfig, WorkloadConfig};

/// The PET matrix is held constant across every experiment, exactly as
/// the paper does ("The PET matrix remains constant across all of our
/// experiments"); this is the seed that pins it.
pub const PET_MATRIX_SEED: u64 = 0x9E7_0001;

/// Which cluster the experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterKind {
    /// The paper's 8-type inconsistently heterogeneous cluster.
    Heterogeneous,
    /// A homogeneous cluster of `n` identical machines (Fig. 10).
    Homogeneous {
        /// Number of machines.
        n: u16,
    },
}

impl ClusterKind {
    /// Builds the cluster and its PET generation config.
    pub fn materialise(self) -> (Cluster, PetGenConfig) {
        match self {
            ClusterKind::Heterogeneous => (
                taskprune_workload::machines::heterogeneous_cluster(),
                PetGenConfig::paper_heterogeneous(PET_MATRIX_SEED),
            ),
            ClusterKind::Homogeneous { n } => (
                taskprune_workload::machines::homogeneous_cluster(n),
                PetGenConfig::paper_homogeneous(PET_MATRIX_SEED),
            ),
        }
    }
}

/// One experimental point: heuristic × pruning × workload × cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Label shown in reports (e.g. "MM-P @ 15k spiky").
    pub label: String,
    /// The mapping heuristic.
    pub heuristic: HeuristicKind,
    /// Pruning mechanism configuration; `None` = unmodified baseline.
    pub pruning: Option<PruningConfig>,
    /// The workload family.
    pub workload: WorkloadConfig,
    /// The cluster to schedule onto.
    pub cluster: ClusterKind,
    /// Simulator parameters (mode is overridden to match the heuristic).
    pub sim: SimConfig,
    /// Number of independent trials (30 in the paper).
    pub n_trials: u32,
    /// Overrides the cluster's default PET generation (used by the
    /// bin-width ablation; `None` = the paper's fixed matrix).
    pub petgen: Option<PetGenConfig>,
}

impl ExperimentConfig {
    /// A paper-defaults experiment for the given heuristic and workload.
    pub fn new(
        heuristic: HeuristicKind,
        pruning: Option<PruningConfig>,
        workload: WorkloadConfig,
    ) -> Self {
        let suffix = if pruning.is_some() { "-P" } else { "" };
        Self {
            label: format!(
                "{}{} @ {} {}",
                heuristic.name(),
                suffix,
                workload.total_tasks,
                workload.pattern.label()
            ),
            heuristic,
            pruning,
            workload,
            cluster: ClusterKind::Heterogeneous,
            sim: SimConfig::batch(0),
            n_trials: 30,
            petgen: None,
        }
    }

    /// Switches the cluster kind.
    pub fn on_cluster(mut self, cluster: ClusterKind) -> Self {
        self.cluster = cluster;
        self
    }

    /// Overrides the trial count (smoke tests use fewer than 30).
    pub fn trials(mut self, n: u32) -> Self {
        self.n_trials = n;
        self
    }

    /// Overrides the PET matrix generation (ablations only).
    pub fn with_petgen(mut self, petgen: PetGenConfig) -> Self {
        self.petgen = Some(petgen);
        self
    }
}

/// Aggregated outcome of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The experiment's label.
    pub label: String,
    /// Robustness (% tasks on time, trimmed window) per trial.
    pub per_trial_robustness: Vec<f64>,
    /// Mean ± CI of the robustness metric.
    pub robustness: SummaryStats,
    /// Mean fraction of executed machine-time that was wasted.
    pub mean_wasted_fraction: f64,
    /// Mean number of deferral decisions per trial.
    pub mean_deferrals: f64,
    /// Mean count of proactive drops per trial.
    pub mean_proactive_drops: f64,
    /// Mean variance of per-type on-time fractions (fairness; lower is
    /// fairer).
    pub mean_type_variance: f64,
}

impl ExperimentResult {
    /// Whether this experiment's robustness is statistically above
    /// `other`'s at the 95 % level (one-sided Welch's t-test over the
    /// per-trial values) — the proper way to claim "pruning wins" from
    /// two 30-trial samples.
    pub fn significantly_above(&self, other: &ExperimentResult) -> bool {
        taskprune_prob::stats::significantly_above(
            &self.robustness,
            &other.robustness,
        )
    }

    /// `label: mean ± ci` one-liner for console reports.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<28} {:>6.2} ± {:>5.2} %  (waste {:>5.1} %, defer {:>8.0}, drop {:>7.0})",
            self.label,
            self.robustness.mean,
            self.robustness.ci95_half_width,
            100.0 * self.mean_wasted_fraction,
            self.mean_deferrals,
            self.mean_proactive_drops,
        )
    }
}

/// Per-trial metric tuple: (robustness %, wasted fraction, deferrals,
/// proactive drops, per-type variance).
type TrialMetrics = (f64, f64, f64, f64, f64);

/// The shared trial loop and aggregation behind [`run_experiment`] and
/// [`run_federated_experiment`]: materialises the cluster/PET, runs
/// every trial in parallel (each trial's allocator pre-configured with
/// the heuristic, pruning, and a derived independent execution seed),
/// and folds the per-trial metrics into an [`ExperimentResult`]. One
/// implementation, so the two entry points cannot drift apart on seed
/// derivation or metric definitions.
fn aggregate_trials(
    cfg: &ExperimentConfig,
    label: String,
    run_trial: impl Fn(ResourceAllocator<'_>, &[taskprune_model::Task]) -> TrialMetrics
        + Sync,
) -> ExperimentResult {
    let (cluster, default_petgen) = cfg.cluster.materialise();
    let pet = cfg.petgen.clone().unwrap_or(default_petgen).generate();

    let trials: Vec<u32> = (0..cfg.n_trials).collect();
    let outcomes: Vec<TrialMetrics> = trials
        .par_iter()
        .map(|&trial_idx| {
            let trial = cfg.workload.generate_trial(&pet, trial_idx);
            let mut sim = cfg.sim;
            // Each trial gets an independent execution-sampling stream.
            sim.seed = derive_seed(
                cfg.workload.seed,
                0x51D_0000 + u64::from(trial_idx),
            );
            let allocator = ResourceAllocator::new(&cluster, &pet, sim)
                .heuristic(cfg.heuristic)
                .pruning_opt(cfg.pruning);
            run_trial(allocator, &trial.tasks)
        })
        .collect();

    let per_trial: Vec<f64> = outcomes.iter().map(|o| o.0).collect();
    let robustness =
        SummaryStats::from_values(&per_trial).expect("at least one trial");
    let mean = |f: fn(&TrialMetrics) -> f64| {
        outcomes.iter().map(f).sum::<f64>() / outcomes.len() as f64
    };
    ExperimentResult {
        label,
        per_trial_robustness: per_trial,
        robustness,
        mean_wasted_fraction: mean(|o| o.1),
        mean_deferrals: mean(|o| o.2),
        mean_proactive_drops: mean(|o| o.3),
        mean_type_variance: mean(|o| o.4),
    }
}

/// Runs every trial of an experiment (rayon-parallel) and aggregates.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    aggregate_trials(cfg, cfg.label.clone(), |allocator, tasks| {
        // The allocator resolves this trial's configuration through
        // the validated SchedulerBuilder; a bad experiment config
        // fails every trial identically, so surface the typed error
        // once with context instead of panicking deep in the engine.
        let stats = allocator.try_run(tasks).unwrap_or_else(|e| {
            panic!("experiment {:?} rejected: {e}", cfg.label)
        });
        debug_assert_eq!(stats.unreported(), 0);
        (
            stats.robustness_pct(PAPER_TRIM),
            stats.wasted_fraction(),
            stats.deferrals as f64,
            stats.count(taskprune_model::TaskOutcome::DroppedProactive) as f64,
            stats.per_type_on_time_variance(),
        )
    })
}

/// Runs every trial of an experiment through a federation of `shards`
/// independent paper-system instances behind the routing policy
/// `route` produces (one fresh policy per trial — policies are
/// stateful), aggregating exactly like [`run_experiment`] but with the
/// robustness trim applied in *global arrival order* across the
/// federation.
pub fn run_federated_experiment(
    cfg: &ExperimentConfig,
    shards: usize,
    route: impl Fn() -> Box<dyn taskprune_sim::RoutePolicy> + Sync,
) -> ExperimentResult {
    let label = format!("{} x{shards}", cfg.label);
    aggregate_trials(cfg, label, |allocator, tasks| {
        let stats = allocator
            .try_run_federated(shards, route(), tasks)
            .unwrap_or_else(|e| {
                panic!("experiment {:?} rejected: {e}", cfg.label)
            });
        debug_assert_eq!(stats.unreported(), 0);
        (
            stats.robustness_pct(PAPER_TRIM),
            stats.wasted_fraction(),
            stats.deferrals() as f64,
            stats.count(taskprune_model::TaskOutcome::DroppedProactive) as f64,
            // Fairness folds through the deterministic merged record
            // (per-type counters summed across shards).
            stats.merged().per_type_on_time_variance(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            total_tasks: 400,
            span_tu: 100.0,
            ..WorkloadConfig::paper_default(seed)
        }
    }

    #[test]
    fn experiment_aggregates_trials() {
        let cfg =
            ExperimentConfig::new(HeuristicKind::Mm, None, small_workload(11))
                .trials(4);
        let result = run_experiment(&cfg);
        assert_eq!(result.per_trial_robustness.len(), 4);
        assert_eq!(result.robustness.n, 4);
        assert!(result.robustness.mean >= 0.0);
        assert!(result.robustness.mean <= 100.0);
    }

    #[test]
    fn experiment_is_reproducible() {
        let cfg = ExperimentConfig::new(
            HeuristicKind::Msd,
            Some(PruningConfig::paper_default()),
            small_workload(13),
        )
        .trials(3);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.per_trial_robustness, b.per_trial_robustness);
    }

    #[test]
    fn pruning_gain_is_statistically_significant() {
        // An oversubscribed fixture where the gain is large: the Welch
        // test must call it, and must not call the reverse.
        let workload = WorkloadConfig {
            total_tasks: 800,
            span_tu: 120.0,
            ..WorkloadConfig::paper_default(21)
        };
        let bare = run_experiment(
            &ExperimentConfig::new(HeuristicKind::Msd, None, workload.clone())
                .trials(5),
        );
        let pruned = run_experiment(
            &ExperimentConfig::new(
                HeuristicKind::Msd,
                Some(PruningConfig::paper_default()),
                workload,
            )
            .trials(5),
        );
        assert!(pruned.significantly_above(&bare));
        assert!(!bare.significantly_above(&pruned));
        assert!(!pruned.significantly_above(&pruned));
    }

    #[test]
    fn labels_encode_pruning() {
        let base =
            ExperimentConfig::new(HeuristicKind::Mm, None, small_workload(1));
        let pruned = ExperimentConfig::new(
            HeuristicKind::Mm,
            Some(PruningConfig::paper_default()),
            small_workload(1),
        );
        assert!(base.label.starts_with("MM @"));
        assert!(pruned.label.starts_with("MM-P @"));
    }

    #[test]
    fn federated_experiment_aggregates_and_reproduces() {
        let cfg =
            ExperimentConfig::new(HeuristicKind::Mm, None, small_workload(17))
                .trials(3);
        let route = || -> Box<dyn taskprune_sim::RoutePolicy> {
            Box::new(taskprune_sim::LeastQueuedRoute::new())
        };
        let a = run_federated_experiment(&cfg, 2, route);
        let b = run_federated_experiment(&cfg, 2, route);
        assert_eq!(a.per_trial_robustness.len(), 3);
        assert_eq!(a.per_trial_robustness, b.per_trial_robustness);
        assert!(a.label.ends_with("x2"), "label {:?}", a.label);
        assert!(a.robustness.mean >= 0.0 && a.robustness.mean <= 100.0);
    }

    #[test]
    fn homogeneous_cluster_materialises() {
        let (cluster, petgen) = ClusterKind::Homogeneous { n: 8 }.materialise();
        assert_eq!(cluster.len(), 8);
        assert!(cluster.is_homogeneous());
        assert_eq!(petgen.n_machine_types, 1);
    }
}
