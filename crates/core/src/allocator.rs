//! The resource allocator: heuristic + optional pruning + engine, wired
//! together (Fig. 1c).
//!
//! A thin domain-level facade over [`taskprune_sim::SchedulerBuilder`]:
//! it resolves a [`HeuristicKind`] into a strategy (forcing the
//! matching allocation mode) and a [`PruningConfig`] into the pruning
//! mechanism, then builds and drives the engine.

use crate::pruner::{PruningConfig, PruningMechanism};
use serde::{Deserialize, Serialize};
use taskprune_heuristics::HeuristicKind;
use taskprune_model::{Cluster, PetMatrix, Task};
use taskprune_sim::{
    ConfigError, FaultPlan, FederationStats, GatewayBuilder, MappingStrategy,
    RecoveryPolicy, ReusePolicy, RoutePolicy, RunError, SchedulerBuilder,
    SimConfig, SimStats, Snapshot, SnapshotError, Supervisor,
};

/// Builder for one simulation run: pick a heuristic, optionally attach
/// the pruning mechanism, then [`run`](ResourceAllocator::run).
pub struct ResourceAllocator<'a> {
    cluster: &'a Cluster,
    pet: &'a PetMatrix,
    truth: Option<&'a PetMatrix>,
    sim: SimConfig,
    heuristic: Option<HeuristicKind>,
    strategy: Option<MappingStrategy>,
    pruning: Option<PruningConfig>,
    trace: Option<taskprune_sim::TraceLog>,
    reuse: ReusePolicy,
}

impl<'a> ResourceAllocator<'a> {
    /// Starts a builder over the given cluster and PET matrix.
    pub fn new(
        cluster: &'a Cluster,
        pet: &'a PetMatrix,
        sim: SimConfig,
    ) -> Self {
        Self {
            cluster,
            pet,
            truth: None,
            sim,
            heuristic: None,
            strategy: None,
            pruning: None,
            trace: None,
            reuse: ReusePolicy::Off,
        }
    }

    /// Sets the federation's function-reuse policy (exact-duplicate
    /// piggybacking and deadline-window merging at the gateway; see
    /// [`taskprune_sim::ReusePolicy`]). Default: off. Only the
    /// federated entry points observe it — the single-cluster
    /// [`ResourceAllocator::run`] has no gateway to host the cache.
    pub fn reuse(mut self, policy: ReusePolicy) -> Self {
        self.reuse = policy;
        self
    }

    /// Enables execution tracing with default sizing; the log comes back
    /// in [`SimStats::trace`].
    pub fn traced(mut self) -> Self {
        self.trace = Some(taskprune_sim::TraceLog::with_defaults());
        self
    }

    /// Separates ground truth from the scheduler's belief: estimates use
    /// the matrix given to [`ResourceAllocator::new`] while actual
    /// durations are sampled from `truth` (see `Engine::with_truth`).
    pub fn truth_pet(mut self, truth: &'a PetMatrix) -> Self {
        self.truth = Some(truth);
        self
    }

    /// Selects a mapping heuristic by kind. The simulator mode is
    /// switched to match the heuristic (immediate heuristics force
    /// immediate mode, batch heuristics batch mode).
    pub fn heuristic(mut self, kind: HeuristicKind) -> Self {
        self.sim.mode = kind.allocation_mode();
        self.heuristic = Some(kind);
        self.strategy = Some(kind.make());
        self
    }

    /// Installs a custom mapping strategy (for heuristics outside the
    /// paper's ten). The caller must keep `sim.mode` consistent.
    pub fn strategy(mut self, strategy: MappingStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Attaches the pruning mechanism with the given configuration.
    pub fn pruning(mut self, cfg: PruningConfig) -> Self {
        self.pruning = Some(cfg);
        self
    }

    /// Optionally attaches the pruning mechanism — convenient when
    /// comparing baseline vs. pruned in a loop.
    pub fn pruning_opt(mut self, cfg: Option<PruningConfig>) -> Self {
        self.pruning = cfg;
        self
    }

    /// Runs the workload and returns its outcome record, surfacing any
    /// configuration problem — or a malformed trace (e.g. ids too
    /// sparse for the dense outcome tables) — as a typed [`RunError`].
    pub fn try_run(self, tasks: &[Task]) -> Result<SimStats, RunError> {
        let mut builder =
            SchedulerBuilder::new(self.cluster, self.pet).config(self.sim);
        if let Some(strategy) = self.strategy {
            builder = builder.strategy(strategy);
        }
        if let Some(cfg) = self.pruning {
            builder = builder
                .pruner(PruningMechanism::new(cfg, self.pet.n_task_types()));
        }
        if let Some(truth) = self.truth {
            builder = builder.truth(truth);
        }
        // The sink is a type parameter, so the traced and untraced runs
        // build differently-monomorphised engines — the untraced one
        // pays literally nothing for observability.
        Ok(match self.trace {
            Some(log) => builder
                .sink(log)
                .build()?
                .try_run_stream(tasks.iter().copied())?,
            None => builder.build()?.try_run_stream(tasks.iter().copied())?,
        })
    }

    /// Runs the workload through a federation of `shards` independent
    /// paper-system instances (each a copy of this allocator's cluster,
    /// heuristic and pruning configuration) behind the given routing
    /// policy, returning the fan-in record.
    ///
    /// Requires the heuristic to have been selected via
    /// [`ResourceAllocator::heuristic`] — each shard instantiates its
    /// own stateful copy. Tracing is per-shard and not supported
    /// through this facade: a [`ResourceAllocator::traced`] allocator
    /// is **rejected** (rather than silently dropping the trace);
    /// drive a [`taskprune_sim::GatewayBuilder`] with
    /// [`sink_with`](taskprune_sim::GatewayBuilder::sink_with) for
    /// per-shard traces.
    pub fn try_run_federated(
        self,
        shards: usize,
        policy: Box<dyn RoutePolicy>,
        tasks: &[Task],
    ) -> Result<FederationStats, RunError> {
        Ok(self
            .federated_builder(shards, policy)?
            .build()?
            .run_stream(tasks.iter().copied()))
    }

    /// [`ResourceAllocator::try_run_federated`] on the **parallel**
    /// driver: the same federation, with every shard's event loop on a
    /// work-stealing pool of `threads` threads (`None` honours
    /// `TASKPRUNE_THREADS`, else all hardware threads). The outcome
    /// record is bit-identical to the serial variant at any thread
    /// count — `tests/parallel_equivalence.rs` pins it — so this is
    /// purely a wall-clock knob.
    pub fn try_run_federated_parallel(
        self,
        shards: usize,
        threads: Option<usize>,
        policy: Box<dyn RoutePolicy>,
        tasks: &[Task],
    ) -> Result<FederationStats, RunError> {
        let mut builder = self.federated_builder(shards, policy)?;
        if let Some(threads) = threads {
            builder = builder.threads(threads);
        }
        Ok(builder.build_parallel()?.run_stream(tasks.iter().copied()))
    }

    /// [`ResourceAllocator::try_run_federated`] with a **live reshard**
    /// in the middle: the federation runs on `shards_before` shards
    /// until `reshard_after` arrivals have been ingested, pauses at
    /// that watermark, verifies a sealed checkpoint of the whole
    /// gateway (version + state hash — a tampered or stale checkpoint
    /// surfaces as [`RunError::Snapshot`]), then re-splits the recorded
    /// arrival stream across `shards_after` fresh shards and runs to
    /// completion.
    ///
    /// Because every shard is deterministic, the returned
    /// [`FederationStats`] is **equal to an uninterrupted
    /// `shards_after`-shard run** of the same workload under
    /// `policy_after` — `tests/elastic_federation.rs` pins it. The two
    /// policy instances are separate because each federation consumes
    /// one (routing state does not carry across a re-split).
    pub fn try_run_federated_elastic(
        self,
        shards_before: usize,
        shards_after: usize,
        reshard_after: u64,
        policy: Box<dyn RoutePolicy>,
        policy_after: Box<dyn RoutePolicy>,
        tasks: &[Task],
    ) -> Result<FederationStats, RunError> {
        let rebuild = self.config_copy();
        let mut engine =
            self.federated_builder(shards_before, policy)?.build()?;
        engine.enable_arrival_log();
        let mut source = tasks.iter().copied().peekable();
        engine.run_until(&mut source, reshard_after);
        engine.snapshot_gateway().verify()?;
        let logged: Vec<Task> = engine.arrival_log().to_vec();
        drop(engine);
        let successor = rebuild
            .federated_builder(shards_after, policy_after)?
            .build()?;
        Ok(successor.run_stream(logged.into_iter().chain(source)))
    }

    /// [`ResourceAllocator::try_run_federated_elastic`] on the
    /// **parallel** driver: both the pre-reshard and post-reshard
    /// federations run their shards on a work-stealing pool of
    /// `threads` threads. Same equality guarantee — the result matches
    /// an uninterrupted `shards_after`-shard run at any thread count.
    #[allow(clippy::too_many_arguments)] // mirrors the serial variant + threads
    pub fn try_run_federated_elastic_parallel(
        self,
        shards_before: usize,
        shards_after: usize,
        threads: Option<usize>,
        reshard_after: u64,
        policy: Box<dyn RoutePolicy>,
        policy_after: Box<dyn RoutePolicy>,
        tasks: &[Task],
    ) -> Result<FederationStats, RunError> {
        let rebuild = self.config_copy();
        let mut builder = self.federated_builder(shards_before, policy)?;
        if let Some(threads) = threads {
            builder = builder.threads(threads);
        }
        let mut engine = builder.build_parallel()?;
        engine.enable_arrival_log();
        let split = (reshard_after as usize).min(tasks.len());
        engine.ingest_prefix(tasks[..split].iter().copied());
        engine.snapshot_gateway().verify()?;
        let logged: Vec<Task> = engine.arrival_log().to_vec();
        drop(engine);
        let mut builder =
            rebuild.federated_builder(shards_after, policy_after)?;
        if let Some(threads) = threads {
            builder = builder.threads(threads);
        }
        Ok(builder.build_parallel()?.run_stream(
            logged.into_iter().chain(tasks[split..].iter().copied()),
        ))
    }

    /// [`ResourceAllocator::try_run_federated`] under the self-healing
    /// [`Supervisor`]: the federation auto-checkpoints on the
    /// `recovery` policy's cadence, heals any faults in the armed
    /// `plan` (bounded retries, checkpoint + journal replay), and
    /// degrades gracefully — quarantine plus backlog re-route — when a
    /// shard's budget runs out. The returned record carries the
    /// [`taskprune_sim::RecoveryLog`] of every action taken.
    ///
    /// With `restart` set to `(watermark, policy_after)`, the run
    /// additionally exercises a **cold coordinator restart**: the
    /// supervisor pauses once `watermark` arrivals are ingested,
    /// captures the whole coordinator (event heap, truth-RNG streams,
    /// journals, fault-injector cursor) as a sealed
    /// [`Snapshot`], encodes it to the wire format and back (the
    /// durable-storage round-trip), tears the federation down, and
    /// resumes a freshly built one from the decoded capture under
    /// `policy_after` (a second instance — routing state travels in
    /// the snapshot, not the policy object). A supervised restarted
    /// run is bit-identical to an uninterrupted one —
    /// `tests/self_healing.rs` pins it. The pre-restart supervisor's
    /// recovery log dies with it; the returned record carries the
    /// successor's log only.
    #[allow(clippy::too_many_arguments)] // mirrors the elastic facade
    pub fn try_run_federated_supervised(
        self,
        shards: usize,
        policy: Box<dyn RoutePolicy>,
        recovery: RecoveryPolicy,
        plan: Option<FaultPlan>,
        restart: Option<(u64, Box<dyn RoutePolicy>)>,
        tasks: &[Task],
    ) -> Result<FederationStats, RunError> {
        let rebuild = self.config_copy();
        let engine = self.federated_builder(shards, policy)?.build()?;
        let mut sup = Supervisor::new(engine, recovery);
        if let Some(plan) = plan {
            sup.arm(plan);
        }
        let mut source = tasks.iter().copied().peekable();
        let Some((watermark, policy_after)) = restart else {
            return Ok(sup.finish_stream(&mut source));
        };
        sup.run_until(&mut source, watermark);
        let wire = sup.snapshot_coordinator().to_value();
        drop(sup);
        let snap = Snapshot::from_value(&wire).map_err(SnapshotError::from)?;
        let mut successor =
            rebuild.federated_builder(shards, policy_after)?.build()?;
        successor.restore_coordinator(&snap)?;
        // The injector cursor travels inside the snapshot, so the
        // successor needs no re-arm; a fresh supervisor re-checkpoints
        // every shard at the restart point and resumes the cadence.
        let sup = Supervisor::new(successor, recovery);
        Ok(sup.finish_stream(&mut source))
    }

    /// A second allocator with the same run configuration, for the
    /// post-reshard federation. The custom-strategy slot is not
    /// cloneable (and the federated path requires a [`HeuristicKind`]
    /// anyway), so it stays empty.
    fn config_copy(&self) -> ResourceAllocator<'a> {
        ResourceAllocator {
            cluster: self.cluster,
            pet: self.pet,
            truth: self.truth,
            sim: self.sim,
            heuristic: self.heuristic,
            strategy: None,
            pruning: self.pruning,
            trace: None,
            reuse: self.reuse,
        }
    }

    /// The shared federation setup behind both federated entry points
    /// (one code path, so the serial and parallel drivers cannot drift
    /// apart on shard configuration).
    fn federated_builder(
        self,
        shards: usize,
        policy: Box<dyn RoutePolicy>,
    ) -> Result<GatewayBuilder<'a, taskprune_sim::NullSink>, RunError> {
        if self.trace.is_some() {
            return Err(ConfigError::FederatedTraceUnsupported.into());
        }
        let Some(kind) = self.heuristic else {
            // Distinguish "nothing selected" from "a custom strategy
            // was installed via .strategy(..)": a single instance
            // cannot be shared across N shards, and telling the caller
            // a strategy is *missing* when they installed one would be
            // contradictory.
            return Err(if self.strategy.is_some() {
                ConfigError::FederatedStrategyNotPerShard.into()
            } else {
                ConfigError::MissingStrategy.into()
            });
        };
        let n_types = self.pet.n_task_types();
        let pruning = self.pruning;
        let mut builder = GatewayBuilder::new(self.cluster, self.pet)
            .config(self.sim)
            .shards(shards)
            .policy_boxed(policy)
            .reuse(self.reuse)
            .strategy_with(move |_| kind.make());
        if let Some(cfg) = pruning {
            builder = builder.pruner_with(move |_| {
                Box::new(PruningMechanism::new(cfg, n_types))
            });
        }
        if let Some(truth) = self.truth {
            builder = builder.truth(truth);
        }
        Ok(builder)
    }

    /// Runs the workload and returns its outcome record.
    ///
    /// # Panics
    /// On any configuration the builder rejects — most importantly when
    /// no heuristic was selected. [`ResourceAllocator::try_run`] is the
    /// non-panicking variant.
    pub fn run(self, tasks: &[Task]) -> SimStats {
        self.try_run(tasks)
            .unwrap_or_else(|e| panic!("invalid allocator configuration: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_workload::{PetGenConfig, WorkloadConfig};

    #[test]
    fn builder_runs_batch_heuristic() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let trial = WorkloadConfig {
            total_tasks: 200,
            span_tu: 60.0,
            ..WorkloadConfig::paper_default(3)
        }
        .generate_trial(&pet, 0);
        let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .heuristic(HeuristicKind::Mm)
            .run(&trial.tasks);
        assert_eq!(stats.unreported(), 0);
        assert_eq!(stats.n_tasks(), trial.len());
    }

    #[test]
    fn builder_switches_mode_for_immediate_heuristics() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let trial = WorkloadConfig {
            total_tasks: 150,
            span_tu: 50.0,
            ..WorkloadConfig::paper_default(4)
        }
        .generate_trial(&pet, 0);
        // SimConfig says batch, but KPB is immediate: builder fixes it.
        let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .heuristic(HeuristicKind::Kpb)
            .run(&trial.tasks);
        assert_eq!(stats.unreported(), 0);
    }

    #[test]
    fn pruning_attaches_cleanly() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let trial = WorkloadConfig {
            total_tasks: 300,
            span_tu: 40.0, // compressed span → oversubscribed
            ..WorkloadConfig::paper_default(5)
        }
        .generate_trial(&pet, 0);
        let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .heuristic(HeuristicKind::Msd)
            .pruning(crate::pruner::PruningConfig::paper_default())
            .run(&trial.tasks);
        assert_eq!(stats.unreported(), 0);
        // The pruner must have actually acted under this load.
        assert!(stats.deferrals > 0 || stats.mapping_events > 0);
    }

    #[test]
    #[should_panic(expected = "select a mapping heuristic")]
    fn running_without_heuristic_panics() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1)).run(&[]);
    }

    #[test]
    fn try_run_surfaces_config_errors_without_panicking() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let err = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .try_run(&[])
            .expect_err("missing heuristic must be rejected");
        assert_eq!(err, RunError::Config(ConfigError::MissingStrategy));

        let mut sim = SimConfig::batch(1);
        sim.queue_capacity = 0;
        let err = ResourceAllocator::new(&cluster, &pet, sim)
            .strategy(HeuristicKind::Mm.make())
            .try_run(&[])
            .expect_err("zero capacity must be rejected");
        assert_eq!(err, RunError::Config(ConfigError::ZeroQueueCapacity));
    }

    #[test]
    fn try_run_surfaces_malformed_traces_as_stats_errors() {
        use taskprune_model::{SimTime, TaskTypeId};
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        // A snowflake-style id straight into a single cluster (no
        // gateway compaction): a recoverable typed error, not a panic.
        let bad = vec![taskprune_model::Task::new(
            1_700_000_000_000,
            TaskTypeId(0),
            SimTime(0),
            SimTime(1_000),
        )];
        let err = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .heuristic(HeuristicKind::Mm)
            .try_run(&bad)
            .expect_err("sparse external ids must be rejected");
        assert!(matches!(err, RunError::Stats(_)), "got {err:?}");
    }

    #[test]
    fn federated_run_aggregates_across_shards() {
        use taskprune_sim::LeastQueuedRoute;
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let trial = WorkloadConfig {
            total_tasks: 400,
            span_tu: 60.0,
            ..WorkloadConfig::paper_default(8)
        }
        .generate_trial(&pet, 0);
        let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(2))
            .heuristic(HeuristicKind::Mm)
            .pruning(crate::pruner::PruningConfig::paper_default())
            .try_run_federated(
                3,
                Box::new(LeastQueuedRoute::new()),
                &trial.tasks,
            )
            .expect("valid federated configuration");
        assert_eq!(stats.per_shard.len(), 3);
        assert_eq!(stats.n_tasks(), trial.len());
        assert_eq!(stats.unreported(), 0);
        // The router actually spread load: no shard saw everything.
        assert!(stats.per_shard.iter().all(|s| s.n_arrived() < trial.len()));
    }

    #[test]
    fn federated_parallel_run_matches_the_serial_driver() {
        use taskprune_sim::{LeastQueuedRoute, RoundRobinRoute};
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let trial = WorkloadConfig {
            total_tasks: 400,
            span_tu: 60.0,
            ..WorkloadConfig::paper_default(8)
        }
        .generate_trial(&pet, 0);
        let alloc = || {
            ResourceAllocator::new(&cluster, &pet, SimConfig::batch(2))
                .heuristic(HeuristicKind::Mm)
                .pruning(crate::pruner::PruningConfig::paper_default())
        };
        // Both scheduling regimes: stateless (round-robin) and
        // lockstep (least-queued).
        for stateless in [true, false] {
            let policy = || -> Box<dyn taskprune_sim::RoutePolicy> {
                if stateless {
                    Box::new(RoundRobinRoute::new())
                } else {
                    Box::new(LeastQueuedRoute::new())
                }
            };
            let serial = alloc()
                .try_run_federated(3, policy(), &trial.tasks)
                .expect("valid federated configuration");
            let parallel = alloc()
                .try_run_federated_parallel(3, Some(2), policy(), &trial.tasks)
                .expect("valid parallel configuration");
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&parallel).unwrap(),
                "stateless={stateless}: parallel facade diverged"
            );
        }
    }

    #[test]
    fn federated_run_without_heuristic_kind_is_rejected() {
        use taskprune_sim::RoundRobinRoute;
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let err = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .try_run_federated(2, Box::new(RoundRobinRoute::new()), &[])
            .expect_err("heuristic kind is required for shard factories");
        assert_eq!(err, RunError::Config(ConfigError::MissingStrategy));
    }

    #[test]
    fn federated_run_explains_why_a_custom_strategy_is_rejected() {
        use taskprune_sim::RoundRobinRoute;
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let err = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .strategy(HeuristicKind::Mm.make())
            .try_run_federated(2, Box::new(RoundRobinRoute::new()), &[])
            .expect_err("one strategy instance cannot serve N shards");
        assert_eq!(
            err,
            RunError::Config(ConfigError::FederatedStrategyNotPerShard)
        );
        assert!(err.to_string().contains("per shard"), "{err}");
    }

    #[test]
    fn federated_run_rejects_a_single_trace_log() {
        use taskprune_sim::RoundRobinRoute;
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let err = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .heuristic(HeuristicKind::Mm)
            .traced()
            .try_run_federated(2, Box::new(RoundRobinRoute::new()), &[])
            .expect_err("a single TraceLog cannot observe N shards");
        assert_eq!(
            err,
            RunError::Config(ConfigError::FederatedTraceUnsupported)
        );
    }
}
