//! The resource allocator: heuristic + optional pruning + engine, wired
//! together (Fig. 1c).
//!
//! A thin domain-level facade over [`taskprune_sim::SchedulerBuilder`]:
//! it resolves a [`HeuristicKind`] into a strategy (forcing the
//! matching allocation mode) and a [`PruningConfig`] into the pruning
//! mechanism, then builds and drives the engine.

use crate::pruner::{PruningConfig, PruningMechanism};
use taskprune_heuristics::HeuristicKind;
use taskprune_model::{Cluster, PetMatrix, Task};
use taskprune_sim::{
    ConfigError, MappingStrategy, SchedulerBuilder, SimConfig, SimStats,
};

/// Builder for one simulation run: pick a heuristic, optionally attach
/// the pruning mechanism, then [`run`](ResourceAllocator::run).
pub struct ResourceAllocator<'a> {
    cluster: &'a Cluster,
    pet: &'a PetMatrix,
    truth: Option<&'a PetMatrix>,
    sim: SimConfig,
    strategy: Option<MappingStrategy>,
    pruning: Option<PruningConfig>,
    trace: Option<taskprune_sim::TraceLog>,
}

impl<'a> ResourceAllocator<'a> {
    /// Starts a builder over the given cluster and PET matrix.
    pub fn new(
        cluster: &'a Cluster,
        pet: &'a PetMatrix,
        sim: SimConfig,
    ) -> Self {
        Self {
            cluster,
            pet,
            truth: None,
            sim,
            strategy: None,
            pruning: None,
            trace: None,
        }
    }

    /// Enables execution tracing with default sizing; the log comes back
    /// in [`SimStats::trace`].
    pub fn traced(mut self) -> Self {
        self.trace = Some(taskprune_sim::TraceLog::with_defaults());
        self
    }

    /// Separates ground truth from the scheduler's belief: estimates use
    /// the matrix given to [`ResourceAllocator::new`] while actual
    /// durations are sampled from `truth` (see `Engine::with_truth`).
    pub fn truth_pet(mut self, truth: &'a PetMatrix) -> Self {
        self.truth = Some(truth);
        self
    }

    /// Selects a mapping heuristic by kind. The simulator mode is
    /// switched to match the heuristic (immediate heuristics force
    /// immediate mode, batch heuristics batch mode).
    pub fn heuristic(mut self, kind: HeuristicKind) -> Self {
        self.sim.mode = kind.allocation_mode();
        self.strategy = Some(kind.make());
        self
    }

    /// Installs a custom mapping strategy (for heuristics outside the
    /// paper's ten). The caller must keep `sim.mode` consistent.
    pub fn strategy(mut self, strategy: MappingStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Attaches the pruning mechanism with the given configuration.
    pub fn pruning(mut self, cfg: PruningConfig) -> Self {
        self.pruning = Some(cfg);
        self
    }

    /// Optionally attaches the pruning mechanism — convenient when
    /// comparing baseline vs. pruned in a loop.
    pub fn pruning_opt(mut self, cfg: Option<PruningConfig>) -> Self {
        self.pruning = cfg;
        self
    }

    /// Runs the workload and returns its outcome record, surfacing any
    /// configuration problem as a typed [`ConfigError`].
    pub fn try_run(self, tasks: &[Task]) -> Result<SimStats, ConfigError> {
        let mut builder =
            SchedulerBuilder::new(self.cluster, self.pet).config(self.sim);
        if let Some(strategy) = self.strategy {
            builder = builder.strategy(strategy);
        }
        if let Some(cfg) = self.pruning {
            builder = builder
                .pruner(PruningMechanism::new(cfg, self.pet.n_task_types()));
        }
        if let Some(truth) = self.truth {
            builder = builder.truth(truth);
        }
        // The sink is a type parameter, so the traced and untraced runs
        // build differently-monomorphised engines — the untraced one
        // pays literally nothing for observability.
        Ok(match self.trace {
            Some(log) => builder.sink(log).build()?.run(tasks),
            None => builder.build()?.run(tasks),
        })
    }

    /// Runs the workload and returns its outcome record.
    ///
    /// # Panics
    /// On any configuration the builder rejects — most importantly when
    /// no heuristic was selected. [`ResourceAllocator::try_run`] is the
    /// non-panicking variant.
    pub fn run(self, tasks: &[Task]) -> SimStats {
        self.try_run(tasks)
            .unwrap_or_else(|e| panic!("invalid allocator configuration: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_workload::{PetGenConfig, WorkloadConfig};

    #[test]
    fn builder_runs_batch_heuristic() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let trial = WorkloadConfig {
            total_tasks: 200,
            span_tu: 60.0,
            ..WorkloadConfig::paper_default(3)
        }
        .generate_trial(&pet, 0);
        let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .heuristic(HeuristicKind::Mm)
            .run(&trial.tasks);
        assert_eq!(stats.unreported(), 0);
        assert_eq!(stats.n_tasks(), trial.len());
    }

    #[test]
    fn builder_switches_mode_for_immediate_heuristics() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let trial = WorkloadConfig {
            total_tasks: 150,
            span_tu: 50.0,
            ..WorkloadConfig::paper_default(4)
        }
        .generate_trial(&pet, 0);
        // SimConfig says batch, but KPB is immediate: builder fixes it.
        let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .heuristic(HeuristicKind::Kpb)
            .run(&trial.tasks);
        assert_eq!(stats.unreported(), 0);
    }

    #[test]
    fn pruning_attaches_cleanly() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let trial = WorkloadConfig {
            total_tasks: 300,
            span_tu: 40.0, // compressed span → oversubscribed
            ..WorkloadConfig::paper_default(5)
        }
        .generate_trial(&pet, 0);
        let stats = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .heuristic(HeuristicKind::Msd)
            .pruning(crate::pruner::PruningConfig::paper_default())
            .run(&trial.tasks);
        assert_eq!(stats.unreported(), 0);
        // The pruner must have actually acted under this load.
        assert!(stats.deferrals > 0 || stats.mapping_events > 0);
    }

    #[test]
    #[should_panic(expected = "select a mapping heuristic")]
    fn running_without_heuristic_panics() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1)).run(&[]);
    }

    #[test]
    fn try_run_surfaces_config_errors_without_panicking() {
        let pet = PetGenConfig::paper_heterogeneous(3).generate();
        let cluster = taskprune_workload::machines::heterogeneous_cluster();
        let err = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(1))
            .try_run(&[])
            .expect_err("missing heuristic must be rejected");
        assert_eq!(err, ConfigError::MissingStrategy);

        let mut sim = SimConfig::batch(1);
        sim.queue_capacity = 0;
        let err = ResourceAllocator::new(&cluster, &pet, sim)
            .strategy(HeuristicKind::Mm.make())
            .try_run(&[])
            .expect_err("zero capacity must be rejected");
        assert_eq!(err, ConfigError::ZeroQueueCapacity);
    }
}
