//! Criterion bench: end-to-end simulation throughput (simulated tasks
//! per wall-second), pruning off vs. on — the cost of the probabilistic
//! machinery relative to the scalar baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use taskprune::prelude::*;

fn bench_sim(c: &mut Criterion) {
    let pet = PetGenConfig::paper_heterogeneous(1).generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = WorkloadConfig {
        total_tasks: 1_000,
        span_tu: 200.0,
        ..WorkloadConfig::paper_default(17)
    };
    let trial = workload.generate_trial(&pet, 0);

    let mut group = c.benchmark_group("sim_throughput");
    group.throughput(Throughput::Elements(trial.len() as u64));
    group.sample_size(20);

    group.bench_function("MM/bare", |bench| {
        bench.iter(|| {
            let stats =
                ResourceAllocator::new(&cluster, &pet, SimConfig::batch(5))
                    .heuristic(HeuristicKind::Mm)
                    .run(black_box(&trial.tasks));
            black_box(stats.robustness_pct(0))
        })
    });
    group.bench_function("MM/pruned", |bench| {
        bench.iter(|| {
            let stats =
                ResourceAllocator::new(&cluster, &pet, SimConfig::batch(5))
                    .heuristic(HeuristicKind::Mm)
                    .pruning(PruningConfig::paper_default())
                    .run(black_box(&trial.tasks));
            black_box(stats.robustness_pct(0))
        })
    });
    group.bench_function("KPB/immediate-dropping", |bench| {
        bench.iter(|| {
            let stats =
                ResourceAllocator::new(&cluster, &pet, SimConfig::immediate(5))
                    .heuristic(HeuristicKind::Kpb)
                    .pruning(PruningConfig {
                        defer_enabled: false,
                        ..PruningConfig::paper_default()
                    })
                    .run(black_box(&trial.tasks));
            black_box(stats.robustness_pct(0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
