//! Criterion bench: one batch-mode mapping decision (the two-phase
//! heuristic's `select`) as a function of batch-queue length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use taskprune_heuristics::{EfficientMinMin, MM, MMU, MSD};
use taskprune_model::{Cluster, SimTime, Task, TaskTypeId};
use taskprune_sim::queue_testing::make_queues;
use taskprune_sim::{BatchMapper, SystemView};
use taskprune_workload::PetGenConfig;

fn candidates(n: usize) -> Vec<Task> {
    (0..n)
        .map(|i| {
            Task::new(
                i as u64,
                TaskTypeId((i % 12) as u16),
                SimTime(0),
                SimTime(4_000 + (i as u64 * 37) % 6_000),
            )
        })
        .collect()
}

fn bench_mapping(c: &mut Criterion) {
    let pet = PetGenConfig::paper_heterogeneous(1).generate();
    let cluster = Cluster::one_per_type(8);

    let mut group = c.benchmark_group("mapping_event");
    for &n in &[10usize, 100, 1_000] {
        let cands = candidates(n);
        for (name, mut mapper) in [
            ("MM", Box::new(MM::new()) as Box<dyn BatchMapper>),
            ("MM-fast", Box::new(EfficientMinMin::new())),
            ("MSD", Box::new(MSD::new())),
            ("MMU", Box::new(MMU::new())),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, n),
                &n,
                |bench, _| {
                    // Fresh empty queues each iteration batch: selection
                    // fills 8 machines × 4 slots virtually.
                    let queues = make_queues(&cluster, 4, 256);
                    let view = SystemView::new(SimTime(0), &queues, &pet);
                    bench.iter(|| {
                        black_box(
                            mapper.select(black_box(&view), black_box(&cands)),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
