//! Criterion bench: one batch-mode mapping decision (the two-phase
//! heuristic's `select`) as a function of batch-queue length, plus the
//! estimator-maintenance cycle a mapping event inflicts on a machine
//! queue (pop → complete → admit → chance query) across queue depths
//! and PET supports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use taskprune_bench::chainbench::{
    probe_task, wide_pet_matrix, wide_queue, CHAIN_DEPTHS, CHAIN_SUPPORTS,
};
use taskprune_heuristics::{EfficientMinMin, MM, MMU, MSD};
use taskprune_model::{Cluster, SimTime, Task, TaskTypeId};
use taskprune_sim::queue_testing::make_queues;
use taskprune_sim::{BatchMapper, SystemView};
use taskprune_workload::PetGenConfig;

fn candidates(n: usize) -> Vec<Task> {
    (0..n)
        .map(|i| {
            Task::new(
                i as u64,
                TaskTypeId((i % 12) as u16),
                SimTime(0),
                SimTime(4_000 + (i as u64 * 37) % 6_000),
            )
        })
        .collect()
}

fn bench_mapping(c: &mut Criterion) {
    let pet = PetGenConfig::paper_heterogeneous(1).generate();
    let cluster = Cluster::one_per_type(8);

    let mut group = c.benchmark_group("mapping_event");
    for &n in &[10usize, 100, 1_000] {
        let cands = candidates(n);
        for (name, mut mapper) in [
            ("MM", Box::new(MM::new()) as Box<dyn BatchMapper>),
            ("MM-fast", Box::new(EfficientMinMin::new())),
            ("MSD", Box::new(MSD::new())),
            ("MMU", Box::new(MMU::new())),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, n),
                &n,
                |bench, _| {
                    // Fresh empty queues each iteration batch: selection
                    // fills 8 machines × 4 slots virtually.
                    let queues = make_queues(&cluster, 4, 256);
                    let view = SystemView::new(SimTime(0), &queues, &pet);
                    bench.iter(|| {
                        black_box(
                            mapper.select(black_box(&view), black_box(&cands)),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

/// The per-machine estimator work of one mapping event: the queue head
/// starts and completes, a new arrival is admitted, and the next
/// chance query repairs the chain. Lazy maintenance coalesces the pop
/// and the admit into one suffix repair with zero steady-state
/// allocation.
fn bench_queue_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_event_queue_maintenance");
    for &support in CHAIN_SUPPORTS {
        let pet = wide_pet_matrix(support);
        let spec = pet.bin_spec();
        let probe = probe_task(u64::MAX);
        for &depth in CHAIN_DEPTHS {
            let mut q = wide_queue(depth);
            let mut next_id = 1_000_000u64;
            group.bench_with_input(
                BenchmarkId::new(format!("support-{support}"), depth),
                &depth,
                |bench, _| {
                    bench.iter(|| {
                        let head = q.pop_head_for_start().unwrap();
                        q.set_running(head, SimTime(0));
                        q.complete_running();
                        q.admit(probe_task(next_id));
                        next_id += 1;
                        black_box(q.chance_if_appended(
                            spec,
                            &pet,
                            SimTime(0),
                            &probe,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mapping, bench_queue_maintenance);
criterion_main!(benches);
