//! Criterion bench: incremental prefix-chain maintenance vs from-scratch
//! rebuilds across queue depths {4, 16, 64} and PET supports
//! {64, 512, 4096}.
//!
//! Each scenario performs one realistic mutation cycle on a
//! steady-state queue and then forces the chain current with a chance
//! query. The `incremental` variant relies on lazy suffix-only repair;
//! the `scratch` variant forces a full rebuild after the mutation — the
//! pre-incremental cost profile `MachineQueue::rebuild_chain` had.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use taskprune_bench::chainbench::{
    probe_task, wide_pet_matrix, wide_queue, CHAIN_DEPTHS, CHAIN_SUPPORTS,
};
use taskprune_model::SimTime;

fn bench_rebuild(c: &mut Criterion) {
    for &support in CHAIN_SUPPORTS {
        let pet = wide_pet_matrix(support);
        let spec = pet.bin_spec();
        let probe = probe_task(u64::MAX);
        let mut group =
            c.benchmark_group(format!("rebuild_chain/support-{support}"));
        for &depth in CHAIN_DEPTHS {
            let mut q = wide_queue(depth);
            group.bench_with_input(
                BenchmarkId::new("tail-drop-incremental", depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        let id = q.waiting().last().unwrap().id;
                        let t = q.remove_waiting(&[id])[0];
                        q.admit(t);
                        black_box(q.chance_if_appended(
                            spec,
                            &pet,
                            SimTime(0),
                            &probe,
                        ))
                    })
                },
            );
            let mut q = wide_queue(depth);
            group.bench_with_input(
                BenchmarkId::new("tail-drop-scratch", depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        let id = q.waiting().last().unwrap().id;
                        let t = q.remove_waiting(&[id])[0];
                        q.force_full_rebuild(&pet);
                        q.admit(t);
                        black_box(q.chance_if_appended(
                            spec,
                            &pet,
                            SimTime(0),
                            &probe,
                        ))
                    })
                },
            );
            let mut q = wide_queue(depth);
            group.bench_with_input(
                BenchmarkId::new("mid-drop-incremental", depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        let id = q.waiting().nth(depth / 2).unwrap().id;
                        let t = q.remove_waiting(&[id])[0];
                        q.admit(t);
                        black_box(q.chance_if_appended(
                            spec,
                            &pet,
                            SimTime(0),
                            &probe,
                        ))
                    })
                },
            );
            let mut q = wide_queue(depth);
            group.bench_with_input(
                BenchmarkId::new("mid-drop-scratch", depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        let id = q.waiting().nth(depth / 2).unwrap().id;
                        let t = q.remove_waiting(&[id])[0];
                        q.force_full_rebuild(&pet);
                        q.admit(t);
                        black_box(q.chance_if_appended(
                            spec,
                            &pet,
                            SimTime(0),
                            &probe,
                        ))
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_rebuild);
criterion_main!(benches);
