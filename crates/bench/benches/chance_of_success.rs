//! Criterion bench: the chance-of-success query (Eq. 2) — the pruning
//! mechanism's hot path, executed for every defer check and every
//! queue-drop scan position — against the scalar expected-completion
//! accounting the deterministic heuristics use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use taskprune_bench::chainbench::{
    probe_task, wide_pet_matrix, wide_queue, CHAIN_DEPTHS, CHAIN_SUPPORTS,
};
use taskprune_model::{Cluster, MachineId, SimTime, Task, TaskTypeId};
use taskprune_sim::queue_testing::make_queues;
use taskprune_sim::SystemView;
use taskprune_workload::PetGenConfig;

fn bench_chance(c: &mut Criterion) {
    let pet = PetGenConfig::paper_heterogeneous(1).generate();
    let cluster = Cluster::one_per_type(8);
    let task = Task::new(0, TaskTypeId(3), SimTime(0), SimTime(8_000));

    let mut group = c.benchmark_group("chance_of_success");
    for &depth in &[0usize, 2, 4, 8] {
        let mut queues = make_queues(&cluster, depth.max(1), 256);
        for i in 0..depth {
            queues[0].admit(Task::new(
                i as u64 + 1,
                TaskTypeId((i % 12) as u16),
                SimTime(0),
                SimTime(1_000_000),
            ));
        }
        group.bench_with_input(
            BenchmarkId::new("queue-depth", depth),
            &depth,
            |bench, _| {
                let view = SystemView::new(SimTime(0), &queues, &pet);
                bench.iter(|| {
                    black_box(view.chance_if_appended(
                        black_box(MachineId(0)),
                        black_box(&task),
                    ))
                })
            },
        );
    }
    group.finish();

    // Wide-support sweep: the Eq. 2 dot product against warm cached
    // chains, across queue depths {4,16,64} × PET supports {64,512,4k}.
    let mut group = c.benchmark_group("chance_of_success_wide");
    for &support in CHAIN_SUPPORTS {
        let pet = wide_pet_matrix(support);
        let probe = probe_task(u64::MAX);
        for &depth in CHAIN_DEPTHS {
            let q = wide_queue(depth);
            // Warm the lazily-repaired chain outside the timing loop.
            let _ =
                q.chance_if_appended(pet.bin_spec(), &pet, SimTime(0), &probe);
            group.bench_with_input(
                BenchmarkId::new(format!("support-{support}"), depth),
                &depth,
                |bench, _| {
                    bench.iter(|| {
                        black_box(q.chance_if_appended(
                            pet.bin_spec(),
                            &pet,
                            SimTime(0),
                            black_box(&probe),
                        ))
                    })
                },
            );
        }
    }
    group.finish();

    // The scalar baseline the deterministic heuristics use instead.
    c.bench_function("expected_completion_ticks", |bench| {
        let mut queues = make_queues(&cluster, 4, 256);
        for i in 0..4 {
            queues[0].admit(Task::new(
                i + 1,
                TaskTypeId((i % 12) as u16),
                SimTime(0),
                SimTime(1_000_000),
            ));
        }
        let view = SystemView::new(SimTime(0), &queues, &pet);
        bench.iter(|| {
            black_box(view.expected_completion_ticks(
                black_box(MachineId(0)),
                black_box(&task),
            ))
        })
    });
}

criterion_group!(benches, bench_chance);
criterion_main!(benches);
