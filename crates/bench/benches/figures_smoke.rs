//! `cargo bench` smoke pass over every figure harness.
//!
//! Not a timing benchmark (harness = false): it runs each paper-figure
//! pipeline at smoke scale and asserts the paper's *qualitative* claims
//! hold — who wins, and in which direction pruning moves each series.
//! This is the regression net for the reproduction itself.

use taskprune_bench::figures::{fig10, fig2, fig7, fig8, fig9};
use taskprune_bench::report::FigureReport;
use taskprune_bench::Scale;

fn mean_of(report: &FigureReport, key_prefix: &str) -> f64 {
    let rows: Vec<f64> = report
        .rows
        .iter()
        .filter(|(k, _)| k.starts_with(key_prefix))
        .map(|(_, r)| r.robustness.mean)
        .collect();
    assert!(!rows.is_empty(), "no rows matching '{key_prefix}'");
    rows.iter().sum::<f64>() / rows.len() as f64
}

fn exact(report: &FigureReport, key: &str) -> f64 {
    report
        .rows
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing row '{key}'"))
        .1
        .robustness
        .mean
}

fn main() {
    let scale = Scale {
        size_factor: 0.08,
        trials: 3,
    };
    let t0 = std::time::Instant::now();

    // Fig. 2 prints and self-checks via its unit tests; run it once.
    fig2::print_example();

    // Fig. 7a: reactive dropping must beat never-dropping for the
    // completion-time-aware immediate heuristics (KPB in particular).
    let f7a = fig7::run(scale, true);
    let kpb_bare = exact(&f7a, "no Toggle, no dropping / KPB");
    let kpb_reactive = exact(&f7a, "reactive Toggle / KPB");
    assert!(
        kpb_reactive > kpb_bare,
        "KPB dropping regressed: {kpb_reactive:.1} vs {kpb_bare:.1}"
    );
    println!("fig7a ok: KPB {kpb_bare:.1}% -> {kpb_reactive:.1}%");

    // Fig. 7b: dropping (always or reactive) must beat never-dropping
    // on average across batch heuristics.
    let f7b = fig7::run(scale, false);
    let no_drop = mean_of(&f7b, "no Toggle, no dropping");
    let reactive = mean_of(&f7b, "reactive Toggle");
    assert!(
        reactive + 1.0 > no_drop,
        "reactive toggle regressed: {reactive:.1} vs {no_drop:.1}"
    );
    println!("fig7b ok: no-drop {no_drop:.1}% -> reactive {reactive:.1}%");

    // Fig. 8: a 50 % threshold must clearly beat no pruning for MSD.
    let f8 = fig8::run(scale);
    let t0_msd = exact(&f8, "0% / MSD");
    let t50_msd = exact(&f8, "50% / MSD");
    assert!(
        t50_msd > t0_msd,
        "deferring at 50% did not improve MSD: {t50_msd:.1} vs {t0_msd:.1}"
    );
    println!("fig8 ok: MSD {t0_msd:.1}% -> {t50_msd:.1}% at 50% threshold");

    // Fig. 9b: pruning helps every batch heuristic at 25K.
    let f9b = fig9::run(scale, false);
    for h in ["MM", "MSD", "MMU"] {
        let bare = exact(&f9b, &format!("25k / {h}"));
        let pruned = exact(&f9b, &format!("25k / {h}-P"));
        assert!(
            pruned > bare,
            "{h} pruning regressed at 25k: {pruned:.1} vs {bare:.1}"
        );
    }
    println!("fig9b ok: pruning improves MM, MSD, MMU at 25k");

    // Fig. 10b: same for the homogeneous trio.
    let f10b = fig10::run(scale, false);
    for h in ["FCFS-RR", "SJF", "EDF"] {
        let bare = exact(&f10b, &format!("25k / {h}"));
        let pruned = exact(&f10b, &format!("25k / {h}-P"));
        assert!(
            pruned > bare,
            "{h} pruning regressed at 25k: {pruned:.1} vs {bare:.1}"
        );
    }
    println!("fig10b ok: pruning improves FCFS-RR, SJF, EDF at 25k");

    println!(
        "figures smoke pass complete in {:.1?} — qualitative claims hold",
        t0.elapsed()
    );
}
