//! Criterion bench: direct vs. FFT PMF convolution across support sizes.
//!
//! Informs `taskprune_prob::convolve::FFT_THRESHOLD` — the crossover
//! where the O(n log n) transform beats the cache-friendly O(n·m) loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use taskprune_prob::convolve::{convolve_direct, convolve_fft};
use taskprune_prob::Pmf;

fn uniform_pmf(n: u64) -> Pmf {
    let points: Vec<(u64, f64)> = (0..n).map(|b| (b, 1.0 / n as f64)).collect();
    Pmf::from_points(&points).expect("non-empty")
}

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolution");
    for &n in &[16u64, 64, 256, 1024, 4096] {
        let a = uniform_pmf(n);
        let b = uniform_pmf(n);
        group.bench_with_input(
            BenchmarkId::new("direct", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    black_box(convolve_direct(black_box(&a), black_box(&b)))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("fft", n), &n, |bench, _| {
            bench.iter(|| black_box(convolve_fft(black_box(&a), black_box(&b))))
        });
    }
    group.finish();

    // The simulator's actual hot shape: a long queue-chain PMF convolved
    // with a short PET.
    let mut group = c.benchmark_group("convolution/chain-extend");
    for &chain in &[64u64, 256, 1024] {
        let chain_pmf = uniform_pmf(chain);
        let pet = uniform_pmf(40);
        group.bench_with_input(
            BenchmarkId::from_parameter(chain),
            &chain,
            |bench, _| {
                bench.iter(|| {
                    black_box(convolve_direct(
                        black_box(&chain_pmf),
                        black_box(&pet),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_convolution);
criterion_main!(benches);
