//! Fig. 6: the spiky task-arrival pattern.
//!
//! "Each color represents one task type. For better presentation, only
//! four task types are shown. The vertical axis shows the task arrival
//! rate and horizontal axis shows the time span."

use crate::scale::Scale;
use std::io::Write;
use std::path::Path;
use taskprune_model::TaskTypeId;
use taskprune_workload::arrival::{rate_series, RateSeries};
use taskprune_workload::PetGenConfig;

/// Rate series for the first `n_types` task types of one spiky trial.
pub fn series(scale: Scale, n_types: usize) -> Vec<RateSeries> {
    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let workload = scale.workload(15_000, 0xF166);
    let trial = workload.generate_trial(&pet, 0);
    let window_tu = workload.span_tu / 60.0; // 60 measurement windows
    (0..n_types.min(pet.n_task_types()))
        .map(|t| {
            let type_id = TaskTypeId(t as u16);
            let arrivals: Vec<f64> = trial
                .tasks
                .iter()
                .filter(|task| task.type_id == type_id)
                .map(|task| task.arrival.as_time_units())
                .collect();
            rate_series(type_id, &arrivals, workload.span_tu, window_tu)
        })
        .collect()
}

/// Writes `fig6.csv` (one column per type) and prints a summary.
pub fn run(scale: Scale, out_dir: &str) -> std::io::Result<()> {
    let all = series(scale, 4);
    std::fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join("fig6.csv");
    let mut f = std::fs::File::create(&path)?;
    write!(f, "window_start_tu")?;
    for s in &all {
        write!(f, ",type{}_rate", s.type_id.0)?;
    }
    writeln!(f)?;
    let n_windows = all[0].rates.len();
    for w in 0..n_windows {
        write!(f, "{:.1}", w as f64 * all[0].window_tu)?;
        for s in &all {
            write!(f, ",{:.4}", s.rates[w])?;
        }
        writeln!(f)?;
    }

    println!("Fig. 6 — spiky arrival pattern ({})", scale.label());
    for s in &all {
        let max = s.rates.iter().cloned().fold(0.0, f64::max);
        let mean = s.rates.iter().sum::<f64>() / s.rates.len() as f64;
        println!(
            "type {:>2}: mean rate {:.3}/tu, peak {:.3}/tu (peak/mean {:.2}x)",
            s.type_id.0,
            mean,
            max,
            max / mean.max(1e-9),
        );
    }
    println!("series written to {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spikes_show_up_in_the_series() {
        let all = series(Scale::smoke(), 2);
        assert_eq!(all.len(), 2);
        for s in &all {
            let max = s.rates.iter().cloned().fold(0.0, f64::max);
            let mean = s.rates.iter().sum::<f64>() / s.rates.len() as f64;
            assert!(
                max / mean.max(1e-9) > 1.5,
                "type {} series too flat: peak/mean {}",
                s.type_id.0,
                max / mean
            );
        }
    }
}
