//! Fig. 8: impact of task deferring vs. the Pruning Threshold.
//!
//! Batch heuristics on a heavily oversubscribed (25 K) spiky workload,
//! deferring only (dropping never engages), thresholds 0 / 25 / 50 /
//! 75 %. The paper's findings: threshold 0 (no pruning) leaves the
//! heuristics far apart and weak; any threshold ≥ 25 % lifts and
//! converges them; nothing improves beyond 50 %.

use crate::report::FigureReport;
use crate::scale::Scale;
use taskprune::prelude::*;
use taskprune::{run_experiment, ExperimentConfig};

/// The sweep's thresholds, as fractions.
pub const THRESHOLDS: [f64; 4] = [0.0, 0.25, 0.50, 0.75];

/// Runs the Fig. 8 sweep.
pub fn run(scale: Scale) -> FigureReport {
    let workload = scale.workload(25_000, 0xF18);
    let mut rows = Vec::new();
    for &threshold in &THRESHOLDS {
        for kind in HeuristicKind::BATCH {
            // Threshold 0 % is the paper's "no task pruning" point.
            let pruning = if threshold == 0.0 {
                None
            } else {
                Some(PruningConfig::defer_only(threshold))
            };
            let cfg = ExperimentConfig::new(kind, pruning, workload.clone())
                .trials(scale.trials);
            let result = run_experiment(&cfg);
            rows.push((
                format!("{:.0}% / {}", threshold * 100.0, kind.name()),
                result,
            ));
        }
    }
    FigureReport {
        id: "fig8".to_string(),
        caption: format!(
            "Task deferring vs. pruning threshold, batch heuristics, \
             25K spiky, defer-only ({})",
            scale.label()
        ),
        series_label: "threshold / heuristic".to_string(),
        rows,
    }
}
