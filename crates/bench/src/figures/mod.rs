//! One module per paper figure, each producing a [`crate::report::FigureReport`].
//!
//! | module | paper figure | content |
//! |---|---|---|
//! | [`fig2`] | Fig. 2 | the worked PET ∗ PCT convolution example |
//! | [`fig6`] | Fig. 6 | spiky arrival-rate series per task type |
//! | [`fig7`] | Fig. 7a/b | Toggle impact on immediate/batch heuristics |
//! | [`fig8`] | Fig. 8 | deferring impact vs. pruning threshold |
//! | [`fig9`] | Fig. 9a/b | batch heuristics ± pruning across loads |
//! | [`fig10`] | Fig. 10a/b | homogeneous heuristics ± pruning |
//! | [`ablations`] | — | design-choice sweeps (DESIGN.md §3) |

pub mod ablations;
pub mod fig10;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
