//! Fig. 9: pruning mechanism on batch-mode heuristics in HC systems,
//! across oversubscription levels (15 K / 20 K / 25 K) under constant
//! (9a) and spiky (9b) arrival patterns.

use crate::report::FigureReport;
use crate::scale::Scale;
use taskprune::prelude::*;
use taskprune::{run_experiment, ExperimentConfig};

/// The paper's oversubscription levels.
pub const LEVELS: [usize; 3] = [15_000, 20_000, 25_000];

/// Runs Fig. 9a (`constant = true`) or 9b (spiky).
pub fn run(scale: Scale, constant: bool) -> FigureReport {
    let pattern = if constant {
        ArrivalPattern::Constant
    } else {
        ArrivalPattern::paper_spiky()
    };
    let mut rows = Vec::new();
    for &level in &LEVELS {
        let workload = scale.workload(level, 0xF19).with_pattern(pattern);
        for kind in HeuristicKind::BATCH {
            for pruning in [None, Some(PruningConfig::paper_default())] {
                let suffix = if pruning.is_some() { "-P" } else { "" };
                let cfg =
                    ExperimentConfig::new(kind, pruning, workload.clone())
                        .trials(scale.trials);
                let result = run_experiment(&cfg);
                rows.push((
                    format!("{}k / {}{}", level / 1000, kind.name(), suffix),
                    result,
                ));
            }
        }
    }
    FigureReport {
        id: if constant { "fig9a" } else { "fig9b" }.to_string(),
        caption: format!(
            "Pruning on batch-mode heuristics, HC system, {} arrivals ({})",
            if constant { "constant" } else { "spiky" },
            scale.label()
        ),
        series_label: "load / heuristic".to_string(),
        rows,
    }
}
