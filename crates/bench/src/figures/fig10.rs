//! Fig. 10: pruning mechanism on homogeneous-system heuristics
//! (FCFS-RR, SJF, EDF) across oversubscription levels, constant (10a)
//! and spiky (10b) arrivals.

use crate::report::FigureReport;
use crate::scale::Scale;
use taskprune::prelude::*;
use taskprune::{run_experiment, ClusterKind, ExperimentConfig};

/// The paper's oversubscription levels.
pub const LEVELS: [usize; 3] = [15_000, 20_000, 25_000];

/// Runs Fig. 10a (`constant = true`) or 10b (spiky).
pub fn run(scale: Scale, constant: bool) -> FigureReport {
    let pattern = if constant {
        ArrivalPattern::Constant
    } else {
        ArrivalPattern::paper_spiky()
    };
    let mut rows = Vec::new();
    for &level in &LEVELS {
        let workload = scale.workload(level, 0xF20).with_pattern(pattern);
        for kind in HeuristicKind::HOMOGENEOUS {
            for pruning in [None, Some(PruningConfig::paper_default())] {
                let suffix = if pruning.is_some() { "-P" } else { "" };
                let cfg =
                    ExperimentConfig::new(kind, pruning, workload.clone())
                        .on_cluster(ClusterKind::Homogeneous { n: 8 })
                        .trials(scale.trials);
                let result = run_experiment(&cfg);
                rows.push((
                    format!("{}k / {}{}", level / 1000, kind.name(), suffix),
                    result,
                ));
            }
        }
    }
    FigureReport {
        id: if constant { "fig10a" } else { "fig10b" }.to_string(),
        caption: format!(
            "Pruning on homogeneous-system heuristics, {} arrivals ({})",
            if constant { "constant" } else { "spiky" },
            scale.label()
        ),
        series_label: "load / heuristic".to_string(),
        rows,
    }
}
