//! Ablation studies over the design choices DESIGN.md §3 documents —
//! parameters the paper leaves unspecified or that this reproduction had
//! to pick.

use crate::report::FigureReport;
use crate::scale::Scale;
use taskprune::prelude::*;
use taskprune::{run_experiment, ExperimentConfig};
use taskprune_model::TICKS_PER_TIME_UNIT;

/// Machine-queue capacity sweep: the paper never states how many
/// waiting slots a machine queue has; the reproduction defaults to 4.
pub fn queue_capacity(scale: Scale) -> FigureReport {
    let workload = scale.workload(20_000, 0xAB1);
    let mut rows = Vec::new();
    for capacity in [1usize, 2, 4, 8, 16] {
        for pruning in [None, Some(PruningConfig::paper_default())] {
            let suffix = if pruning.is_some() { "-P" } else { "" };
            let mut cfg = ExperimentConfig::new(
                HeuristicKind::Mm,
                pruning,
                workload.clone(),
            )
            .trials(scale.trials);
            cfg.sim.queue_capacity = capacity;
            let result = run_experiment(&cfg);
            rows.push((format!("cap={capacity} / MM{suffix}"), result));
        }
    }
    FigureReport {
        id: "ablation_queue_capacity".to_string(),
        caption: format!(
            "Machine-queue capacity sweep, MM ± pruning, 20K spiky ({})",
            scale.label()
        ),
        series_label: "capacity / heuristic".to_string(),
        rows,
    }
}

/// PMF bin-width sweep: accuracy/speed trade-off of the discretisation.
pub fn bin_width(scale: Scale) -> FigureReport {
    let workload = scale.workload(20_000, 0xAB2);
    let mut rows = Vec::new();
    for width in [50u64, 100, 250, 500, 1_000] {
        let mut petgen = PetGenConfig::paper_heterogeneous(
            taskprune::experiment::PET_MATRIX_SEED,
        );
        petgen.bin_width_ticks = width;
        let mut cfg = ExperimentConfig::new(
            HeuristicKind::Mm,
            Some(PruningConfig::paper_default()),
            workload.clone(),
        )
        .with_petgen(petgen)
        .trials(scale.trials);
        // Keep the estimator horizon constant in *time* (64 time units).
        cfg.sim.horizon_bins = 64 * TICKS_PER_TIME_UNIT / width;
        let t0 = std::time::Instant::now();
        let result = run_experiment(&cfg);
        let elapsed = t0.elapsed().as_secs_f64();
        rows.push((
            format!("bin={width} ticks ({:.2}s wall)", elapsed),
            result,
        ));
    }
    FigureReport {
        id: "ablation_bin_width".to_string(),
        caption: format!(
            "PMF bin width sweep, MM-P, 20K spiky; robustness should be \
             flat while cost falls with coarser bins ({})",
            scale.label()
        ),
        series_label: "bin width".to_string(),
        rows,
    }
}

/// Fairness-factor sweep: robustness vs. per-type fairness.
pub fn fairness_factor(scale: Scale) -> FigureReport {
    let workload = scale.workload(25_000, 0xAB3);
    let mut rows = Vec::new();
    for factor in [0.0, 0.01, 0.05, 0.1, 0.2] {
        let mut pruning = PruningConfig::paper_default();
        pruning.fairness = if factor == 0.0 {
            FairnessConfig::disabled()
        } else {
            FairnessConfig {
                factor,
                ..FairnessConfig::paper_default(pruning.threshold)
            }
        };
        let cfg = ExperimentConfig::new(
            HeuristicKind::Mm,
            Some(pruning),
            workload.clone(),
        )
        .trials(scale.trials);
        let result = run_experiment(&cfg);
        rows.push((
            format!(
                "c={factor} (type-variance {:.4})",
                result.mean_type_variance
            ),
            result,
        ));
    }
    FigureReport {
        id: "ablation_fairness".to_string(),
        caption: format!(
            "Fairness factor sweep, MM-P, 25K spiky; larger c narrows \
             per-type variance ({})",
            scale.label()
        ),
        series_label: "fairness factor".to_string(),
        rows,
    }
}

/// Dropping-Toggle α sweep.
pub fn toggle_alpha(scale: Scale) -> FigureReport {
    let workload = scale.workload(25_000, 0xAB4);
    let mut rows = Vec::new();
    for alpha in [1usize, 2, 4, 8] {
        let pruning = PruningConfig::paper_default()
            .with_toggle(ToggleMode::Reactive { alpha });
        let cfg = ExperimentConfig::new(
            HeuristicKind::Mm,
            Some(pruning),
            workload.clone(),
        )
        .trials(scale.trials);
        let result = run_experiment(&cfg);
        rows.push((format!("alpha={alpha}"), result));
    }
    FigureReport {
        id: "ablation_toggle_alpha".to_string(),
        caption: format!(
            "Dropping-Toggle α sweep, MM-P, 25K spiky ({})",
            scale.label()
        ),
        series_label: "alpha".to_string(),
        rows,
    }
}

/// Fine-grained pruning-threshold sweep (a refinement of Fig. 8, with
/// the full mechanism rather than defer-only).
pub fn threshold_fine(scale: Scale) -> FigureReport {
    let workload = scale.workload(25_000, 0xAB5);
    let mut rows = Vec::new();
    for pct in [10u32, 20, 30, 40, 50, 60, 70, 80, 90] {
        let pruning =
            PruningConfig::paper_default().with_threshold(pct as f64 / 100.0);
        let cfg = ExperimentConfig::new(
            HeuristicKind::Mm,
            Some(pruning),
            workload.clone(),
        )
        .trials(scale.trials);
        let result = run_experiment(&cfg);
        rows.push((format!("{pct}%"), result));
    }
    FigureReport {
        id: "ablation_threshold_fine".to_string(),
        caption: format!(
            "Fine pruning-threshold sweep, MM-P (full mechanism), 25K \
             spiky ({})",
            scale.label()
        ),
        series_label: "threshold".to_string(),
        rows,
    }
}

/// KPB K-fraction sweep (immediate mode).
pub fn kpb_fraction(scale: Scale) -> FigureReport {
    use taskprune_heuristics::KPercentBest;
    use taskprune_sim::MappingStrategy;

    let workload = scale.workload(15_000, 0xAB6);
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    let pet = petgen.generate();
    let mut rows = Vec::new();
    for k in [0.125, 0.25, 0.5, 0.75, 1.0] {
        // KPB carries a parameter, so this sweep drives the allocator
        // directly instead of going through HeuristicKind.
        let per_trial: Vec<f64> = (0..scale.trials)
            .map(|trial_idx| {
                let trial = workload.generate_trial(&pet, trial_idx);
                let mut sim = SimConfig::immediate(0);
                sim.seed = taskprune_prob::rng::derive_seed(
                    workload.seed,
                    0x51D_0000 + u64::from(trial_idx),
                );
                let stats =
                    taskprune::ResourceAllocator::new(&cluster, &pet, sim)
                        .strategy(MappingStrategy::Immediate(Box::new(
                            KPercentBest::new(k),
                        )))
                        .pruning(PruningConfig {
                            defer_enabled: false,
                            ..PruningConfig::paper_default()
                        })
                        .run(&trial.tasks);
                stats.robustness_pct(taskprune_sim::stats::PAPER_TRIM)
            })
            .collect();
        let stats =
            taskprune_prob::stats::SummaryStats::from_values(&per_trial)
                .expect("trials > 0");
        rows.push((
            format!("K={:.0}%", k * 100.0),
            taskprune::ExperimentResult {
                label: format!("KPB K={k}"),
                per_trial_robustness: per_trial,
                robustness: stats,
                mean_wasted_fraction: 0.0,
                mean_deferrals: 0.0,
                mean_proactive_drops: 0.0,
                mean_type_variance: 0.0,
            },
        ));
    }
    FigureReport {
        id: "ablation_kpb_fraction".to_string(),
        caption: format!(
            "KPB K-fraction sweep with reactive dropping, 15K spiky ({})",
            scale.label()
        ),
        series_label: "K fraction".to_string(),
        rows,
    }
}
