//! Fig. 7: impact of the Toggle module reacting to oversubscription.
//!
//! Three dropping policies — "no Toggle, no dropping", "no Toggle,
//! always dropping", "reactive Toggle" — across the immediate-mode
//! heuristics (Fig. 7a) and batch-mode heuristics (Fig. 7b), at the
//! default 15 K spiky workload.

use crate::report::FigureReport;
use crate::scale::Scale;
use taskprune::prelude::*;
use taskprune::{run_experiment, ExperimentConfig};

/// The three Fig. 7 dropping scenarios, in the figure's order.
pub fn toggle_scenarios() -> [(&'static str, ToggleMode); 3] {
    [
        ("no Toggle, no dropping", ToggleMode::Never),
        ("no Toggle, always dropping", ToggleMode::Always),
        ("reactive Toggle", ToggleMode::reactive()),
    ]
}

/// Builds the pruning configuration one Fig. 7 cell uses.
///
/// In immediate mode there is no arrival queue, so deferring is
/// structurally impossible (§IV-B) and the "no dropping" scenario is the
/// bare heuristic. In batch mode the full mechanism (deferring at
/// β = 50 %) is active in every scenario and only the dropping policy
/// varies.
pub fn cell_pruning(
    immediate: bool,
    toggle: ToggleMode,
) -> Option<PruningConfig> {
    if immediate {
        if toggle == ToggleMode::Never {
            None
        } else {
            Some(PruningConfig {
                defer_enabled: false,
                ..PruningConfig::paper_default().with_toggle(toggle)
            })
        }
    } else {
        Some(PruningConfig::paper_default().with_toggle(toggle))
    }
}

/// Runs Fig. 7a (immediate) or Fig. 7b (batch).
pub fn run(scale: Scale, immediate: bool) -> FigureReport {
    let heuristics: &[HeuristicKind] = if immediate {
        &HeuristicKind::IMMEDIATE
    } else {
        &HeuristicKind::BATCH
    };
    let workload = scale.workload(15_000, 0xF17);
    let mut rows = Vec::new();
    for (scenario, toggle) in toggle_scenarios() {
        for &kind in heuristics {
            let cfg = ExperimentConfig::new(
                kind,
                cell_pruning(immediate, toggle),
                workload.clone(),
            )
            .trials(scale.trials);
            let result = run_experiment(&cfg);
            rows.push((format!("{scenario} / {}", kind.name()), result));
        }
    }
    FigureReport {
        id: if immediate { "fig7a" } else { "fig7b" }.to_string(),
        caption: format!(
            "Toggle impact on {}-mode heuristics, 15K spiky ({})",
            if immediate { "immediate" } else { "batch" },
            scale.label()
        ),
        series_label: "scenario / heuristic".to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_no_dropping_is_bare_heuristic() {
        assert!(cell_pruning(true, ToggleMode::Never).is_none());
        let always = cell_pruning(true, ToggleMode::Always).unwrap();
        assert!(!always.defer_enabled);
    }

    #[test]
    fn batch_cells_always_defer() {
        for (_, toggle) in toggle_scenarios() {
            let cfg = cell_pruning(false, toggle).unwrap();
            assert!(cfg.defer_enabled);
            assert_eq!(cfg.toggle, toggle);
        }
    }
}
