//! Fig. 2: the worked convolution example.
//!
//! "Probabilistic Execution Time (PET) of an arriving task is convolved
//! with the Probabilistic Completion Time (PCT) of the last task on
//! machine j to form the PCT for the arriving task i."
//!
//! The figure's printed probabilities are reconstructed from a 3-point
//! PET and a 3-point queue-tail PCT of the same shape as the figure.

use taskprune_prob::Pmf;

/// The example's components and result.
pub struct ConvolutionExample {
    /// PET of the arriving task (relative time units).
    pub pet: Pmf,
    /// PCT of the last task already queued on the machine.
    pub queue_tail_pct: Pmf,
    /// The arriving task's PCT = PET ∗ tail.
    pub result_pct: Pmf,
}

/// Builds the Fig. 2 example.
pub fn example() -> ConvolutionExample {
    let pet = Pmf::from_points(&[(1, 0.125), (2, 0.125), (3, 0.75)]).unwrap();
    let queue_tail_pct =
        Pmf::from_points(&[(4, 0.17), (5, 0.33), (6, 0.50)]).unwrap();
    let result_pct = pet.convolve(&queue_tail_pct);
    ConvolutionExample {
        pet,
        queue_tail_pct,
        result_pct,
    }
}

/// Prints the example the way the figure lays it out.
pub fn print_example() {
    let ex = example();
    let dump = |name: &str, pmf: &Pmf| {
        let body: Vec<String> = pmf
            .iter()
            .filter(|(_, p)| *p > 0.0)
            .map(|(b, p)| format!("t={b}: {p:.4}"))
            .collect();
        println!("{name:<26} {}", body.join("  "));
    };
    println!("Fig. 2 — PCT(i,j) = PET(i,j) * PCT(i-1,j)\n");
    dump("PET of task i:", &ex.pet);
    dump("PCT of last queued task:", &ex.queue_tail_pct);
    dump("PCT of task i (result):", &ex.result_pct);
    println!(
        "\nresult mass = {:.6}; E[PCT] = {:.4} = E[PET] {:.4} + E[tail] {:.4}",
        ex.result_pct.mass(),
        ex.result_pct.expectation(),
        ex.pet.expectation(),
        ex.queue_tail_pct.expectation()
    );
    // The paper's Eq. 2 payoff: chance of success for a deadline at t=8.
    println!(
        "chance of success for deadline t=8: {:.4}",
        ex.result_pct.success_probability(8)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_matches_figure_support() {
        let ex = example();
        assert_eq!(ex.result_pct.min_bin(), 5);
        assert_eq!(ex.result_pct.max_bin(), 9);
        assert!(ex.result_pct.is_normalised());
    }

    #[test]
    fn corner_probabilities_are_products() {
        let ex = example();
        assert!((ex.result_pct.prob_at(5) - 0.125 * 0.17).abs() < 1e-12);
        assert!((ex.result_pct.prob_at(9) - 0.75 * 0.50).abs() < 1e-12);
    }
}
