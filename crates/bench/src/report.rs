//! CSV / Markdown emission of experiment series into `results/`, plus
//! machine-readable JSON baselines for micro-benchmarks (the perf
//! trajectory CI tracks across PRs).

use serde::Serialize;
use std::io::Write;
use std::path::Path;
use taskprune::ExperimentResult;

/// One figure's data: grouped experiment results with a caption.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Identifier used for file names ("fig9a" etc.).
    pub id: String,
    /// Human caption echoing the paper's.
    pub caption: String,
    /// Column label of the series key (e.g. "heuristic", "threshold").
    pub series_label: String,
    /// The rows: (series key, result).
    pub rows: Vec<(String, ExperimentResult)>,
}

impl FigureReport {
    /// Renders a console/Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.caption));
        out.push_str(&format!(
            "| {} | robustness (% on time) | 95% CI ± | wasted work % | deferrals | proactive drops |\n",
            self.series_label
        ));
        out.push_str("|---|---|---|---|---|---|\n");
        for (key, r) in &self.rows {
            out.push_str(&format!(
                "| {} | {:.2} | {:.2} | {:.1} | {:.0} | {:.0} |\n",
                key,
                r.robustness.mean,
                r.robustness.ci95_half_width,
                100.0 * r.mean_wasted_fraction,
                r.mean_deferrals,
                r.mean_proactive_drops,
            ));
        }
        out
    }

    /// Renders CSV with one row per experiment.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "series,robustness_mean,robustness_ci95,wasted_fraction,\
             deferrals,proactive_drops,n_trials\n",
        );
        for (key, r) in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.6},{:.1},{:.1},{}\n",
                key.replace(',', ";"),
                r.robustness.mean,
                r.robustness.ci95_half_width,
                r.mean_wasted_fraction,
                r.mean_deferrals,
                r.mean_proactive_drops,
                r.robustness.n,
            ));
        }
        out
    }

    /// Writes `<out_dir>/<id>.md` and `<out_dir>/<id>.csv`.
    pub fn write_files(&self, out_dir: &str) -> std::io::Result<()> {
        let dir = Path::new(out_dir);
        std::fs::create_dir_all(dir)?;
        let mut md =
            std::fs::File::create(dir.join(format!("{}.md", self.id)))?;
        md.write_all(self.to_markdown().as_bytes())?;
        let mut csv =
            std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        csv.write_all(self.to_csv().as_bytes())?;
        Ok(())
    }

    /// Prints the Markdown table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// One timed scenario of a micro-benchmark baseline: an operation on a
/// queue of `queue_depth` tasks whose PETs have `pet_support` bins,
/// measured under the incremental chain maintenance and under a forced
/// from-scratch rebuild.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEntry {
    /// Scenario label (e.g. "tail_drop", "mid_drop", "steady_cycle").
    pub scenario: String,
    /// Number of waiting tasks in the queue under test.
    pub queue_depth: usize,
    /// Support length (bins) of every PET in the queue.
    pub pet_support: usize,
    /// Nanoseconds per operation with incremental chain maintenance.
    pub incremental_ns: f64,
    /// Nanoseconds per operation with a forced from-scratch rebuild
    /// after every mutation (the pre-incremental cost profile).
    pub scratch_ns: f64,
    /// `scratch_ns / incremental_ns`.
    pub speedup: f64,
}

/// A machine-readable micro-benchmark baseline, written as
/// `BENCH_<name>.json` so CI and later PRs can diff perf trajectories.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Benchmark family name (file becomes `BENCH_<name>.json`).
    pub name: String,
    /// Free-form description of what was measured and how.
    pub description: String,
    /// Measured scenarios.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("bench report serialises")
    }

    /// Writes `<out_dir>/BENCH_<name>.json` and returns its path.
    pub fn write_file(&self, out_dir: &str) -> std::io::Result<String> {
        let dir = Path::new(out_dir);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path.display().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_prob::stats::SummaryStats;

    fn fake_result(label: &str, mean: f64) -> ExperimentResult {
        ExperimentResult {
            label: label.to_string(),
            per_trial_robustness: vec![mean],
            robustness: SummaryStats::from_values(&[mean]).unwrap(),
            mean_wasted_fraction: 0.25,
            mean_deferrals: 10.0,
            mean_proactive_drops: 3.0,
            mean_type_variance: 0.0,
        }
    }

    fn report() -> FigureReport {
        FigureReport {
            id: "figX".to_string(),
            caption: "test caption".to_string(),
            series_label: "heuristic".to_string(),
            rows: vec![
                ("MM".to_string(), fake_result("MM", 50.0)),
                ("MM-P".to_string(), fake_result("MM-P", 65.0)),
            ],
        }
    }

    #[test]
    fn markdown_contains_rows_and_caption() {
        let md = report().to_markdown();
        assert!(md.contains("figX"));
        assert!(md.contains("test caption"));
        assert!(md.contains("| MM |"));
        assert!(md.contains("| MM-P | 65.00 |"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("series,"));
        assert!(lines[1].starts_with("MM,50.0000"));
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("taskprune_report_test");
        let dir_str = dir.to_str().unwrap().to_string();
        report().write_files(&dir_str).unwrap();
        assert!(dir.join("figX.md").exists());
        assert!(dir.join("figX.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
