//! CSV / Markdown emission of experiment series into `results/`, plus
//! machine-readable JSON baselines for micro-benchmarks (the perf
//! trajectory CI tracks across PRs).

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;
use taskprune::ExperimentResult;

/// One figure's data: grouped experiment results with a caption.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Identifier used for file names ("fig9a" etc.).
    pub id: String,
    /// Human caption echoing the paper's.
    pub caption: String,
    /// Column label of the series key (e.g. "heuristic", "threshold").
    pub series_label: String,
    /// The rows: (series key, result).
    pub rows: Vec<(String, ExperimentResult)>,
}

impl FigureReport {
    /// Renders a console/Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.caption));
        out.push_str(&format!(
            "| {} | robustness (% on time) | 95% CI ± | wasted work % | deferrals | proactive drops |\n",
            self.series_label
        ));
        out.push_str("|---|---|---|---|---|---|\n");
        for (key, r) in &self.rows {
            out.push_str(&format!(
                "| {} | {:.2} | {:.2} | {:.1} | {:.0} | {:.0} |\n",
                key,
                r.robustness.mean,
                r.robustness.ci95_half_width,
                100.0 * r.mean_wasted_fraction,
                r.mean_deferrals,
                r.mean_proactive_drops,
            ));
        }
        out
    }

    /// Renders CSV with one row per experiment.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "series,robustness_mean,robustness_ci95,wasted_fraction,\
             deferrals,proactive_drops,n_trials\n",
        );
        for (key, r) in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.6},{:.1},{:.1},{}\n",
                key.replace(',', ";"),
                r.robustness.mean,
                r.robustness.ci95_half_width,
                r.mean_wasted_fraction,
                r.mean_deferrals,
                r.mean_proactive_drops,
                r.robustness.n,
            ));
        }
        out
    }

    /// Writes `<out_dir>/<id>.md` and `<out_dir>/<id>.csv`.
    pub fn write_files(&self, out_dir: &str) -> std::io::Result<()> {
        let dir = Path::new(out_dir);
        std::fs::create_dir_all(dir)?;
        let mut md =
            std::fs::File::create(dir.join(format!("{}.md", self.id)))?;
        md.write_all(self.to_markdown().as_bytes())?;
        let mut csv =
            std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        csv.write_all(self.to_csv().as_bytes())?;
        Ok(())
    }

    /// Prints the Markdown table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// One timed scenario of a micro-benchmark baseline: an operation on a
/// queue of `queue_depth` tasks whose PETs have `pet_support` bins,
/// measured under the incremental chain maintenance and under a forced
/// from-scratch rebuild.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Scenario label (e.g. "tail_drop", "mid_drop", "steady_cycle").
    pub scenario: String,
    /// Number of waiting tasks in the queue under test.
    pub queue_depth: usize,
    /// Support length (bins) of every PET in the queue.
    pub pet_support: usize,
    /// Nanoseconds per operation with incremental chain maintenance.
    pub incremental_ns: f64,
    /// Nanoseconds per operation with a forced from-scratch rebuild
    /// after every mutation (the pre-incremental cost profile).
    pub scratch_ns: f64,
    /// `scratch_ns / incremental_ns`.
    pub speedup: f64,
    /// Paper-trim robustness (% on time) of the measured run, where
    /// the scenario has one (the federation ingest series records it
    /// so throughput shifts can be read against *scheduling-quality*
    /// shifts — e.g. "2 shards slower because they drop less"). `None`
    /// for pure micro-benchmarks.
    pub robustness_pct: Option<f64>,
    /// Paper-trim robustness (% on time) of the same scenario run
    /// **supervised under a fixed seeded `FaultPlan` storm with a
    /// zero retry budget** — the worst-case degraded mode (lost
    /// deliveries stay lost, a crashed shard is quarantined and its
    /// backlog re-routed). Tracked next to [`BenchEntry::robustness_pct`]
    /// so the series catches fault-*tolerance* regressions commit over
    /// commit: a shrinking gap means degradation got more graceful, a
    /// widening one means quarantine/re-route quality regressed.
    /// `None` for scenarios without a fault-storm twin.
    pub robustness_under_faults_pct: Option<f64>,
    /// Gate disposition of the run that produced this entry: `None`
    /// when the measurement was gated normally, or a marker such as
    /// `"skipped(cores<4)"` when the host could not support the gate
    /// and it was waived — so a waived run is visible in the tracked
    /// series instead of reading as a silent pass.
    pub gate: Option<String>,
    /// Percentage of ingested arrivals the function-reuse gate absorbed
    /// (dedup hits + merges over total arrivals) in the measured run.
    /// `None` for scenarios without a reuse gate (including every entry
    /// recorded before the gate existed).
    pub reuse_hit_pct: Option<f64>,
    /// Ingest throughput of the measured run in arrivals per wall-clock
    /// second — tracked beside [`BenchEntry::reuse_hit_pct`] so the
    /// series shows what absorbing duplicates at the gateway buys in
    /// raw ingest rate. `None` for pure micro-benchmarks.
    pub arrivals_per_sec: Option<f64>,
    /// Percentage of arrivals that changed shards via batch-queue
    /// stealing (`tasks_moved / arrivals`) in the measured run —
    /// tracked so throughput shifts in the stateful-routing series can
    /// be read against how much rebalancing actually happened. `None`
    /// for scenarios without a stealing federation.
    pub steals_pct: Option<f64>,
    /// The `Consistency::BoundedStale { k }` staleness bound the run
    /// routed under (`0` = per-arrival refresh ≡ Lockstep). `None` for
    /// scenarios without the relaxed-routing layer.
    pub staleness_k: Option<u64>,
    /// The **floor** of per-tenant robustness (% on time) across every
    /// tenant that submitted work in the measured run — the
    /// SLA-isolation signal of the multi-tenant admission layer: the
    /// aggregate `robustness_pct` can hide one starved tenant behind
    /// healthy neighbours, the floor cannot. `None` for scenarios
    /// without a tenancy policy (including every entry recorded before
    /// the admission layer existed).
    pub per_tenant_robustness_pct: Option<f64>,
    /// Percentage of submitted arrivals the tenant admission layer
    /// shed (quota + throttle + overload, over all tenants) in the
    /// measured run — tracked beside
    /// [`BenchEntry::per_tenant_robustness_pct`] so throughput and
    /// quality shifts in the tenant family can be read against how
    /// much load the front door actually refused. `None` for
    /// scenarios without a tenancy policy.
    pub shed_pct: Option<f64>,
}

// Hand-written (de)serialization instead of the derive: runs recorded
// before `robustness_pct` / `gate` existed must keep loading, so a
// missing field reads as `None` — the vendored serde derive has no
// `#[serde(default)]`.
impl Serialize for BenchEntry {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("queue_depth".to_string(), self.queue_depth.to_value()),
            ("pet_support".to_string(), self.pet_support.to_value()),
            ("incremental_ns".to_string(), self.incremental_ns.to_value()),
            ("scratch_ns".to_string(), self.scratch_ns.to_value()),
            ("speedup".to_string(), self.speedup.to_value()),
            ("robustness_pct".to_string(), self.robustness_pct.to_value()),
            (
                "robustness_under_faults_pct".to_string(),
                self.robustness_under_faults_pct.to_value(),
            ),
            ("gate".to_string(), self.gate.to_value()),
            ("reuse_hit_pct".to_string(), self.reuse_hit_pct.to_value()),
            (
                "arrivals_per_sec".to_string(),
                self.arrivals_per_sec.to_value(),
            ),
            ("steals_pct".to_string(), self.steals_pct.to_value()),
            ("staleness_k".to_string(), self.staleness_k.to_value()),
            (
                "per_tenant_robustness_pct".to_string(),
                self.per_tenant_robustness_pct.to_value(),
            ),
            ("shed_pct".to_string(), self.shed_pct.to_value()),
        ])
    }
}

impl Deserialize for BenchEntry {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            scenario: Deserialize::from_value(v.get_field("scenario")?)?,
            queue_depth: Deserialize::from_value(v.get_field("queue_depth")?)?,
            pet_support: Deserialize::from_value(v.get_field("pet_support")?)?,
            incremental_ns: Deserialize::from_value(
                v.get_field("incremental_ns")?,
            )?,
            scratch_ns: Deserialize::from_value(v.get_field("scratch_ns")?)?,
            speedup: Deserialize::from_value(v.get_field("speedup")?)?,
            robustness_pct: match v.get_opt("robustness_pct") {
                Some(field) => Deserialize::from_value(field)?,
                None => None, // pre-PR5 run: field absent
            },
            robustness_under_faults_pct: match v
                .get_opt("robustness_under_faults_pct")
            {
                Some(field) => Deserialize::from_value(field)?,
                None => None, // pre-PR7 run: field absent
            },
            gate: match v.get_opt("gate") {
                Some(field) => Deserialize::from_value(field)?,
                None => None, // pre-PR6 run: field absent
            },
            reuse_hit_pct: match v.get_opt("reuse_hit_pct") {
                Some(field) => Deserialize::from_value(field)?,
                None => None, // pre-PR8 run: field absent
            },
            arrivals_per_sec: match v.get_opt("arrivals_per_sec") {
                Some(field) => Deserialize::from_value(field)?,
                None => None, // pre-PR8 run: field absent
            },
            steals_pct: match v.get_opt("steals_pct") {
                Some(field) => Deserialize::from_value(field)?,
                None => None, // pre-PR9 run: field absent
            },
            staleness_k: match v.get_opt("staleness_k") {
                Some(field) => Deserialize::from_value(field)?,
                None => None, // pre-PR9 run: field absent
            },
            per_tenant_robustness_pct: match v
                .get_opt("per_tenant_robustness_pct")
            {
                Some(field) => Deserialize::from_value(field)?,
                None => None, // pre-PR10 run: field absent
            },
            shed_pct: match v.get_opt("shed_pct") {
                Some(field) => Deserialize::from_value(field)?,
                None => None, // pre-PR10 run: field absent
            },
        })
    }
}

/// A machine-readable micro-benchmark baseline, written as
/// `BENCH_<name>.json` so CI and later PRs can diff perf trajectories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Benchmark family name (file becomes `BENCH_<name>.json`).
    pub name: String,
    /// Free-form description of what was measured and how.
    pub description: String,
    /// Measured scenarios.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("bench report serialises")
    }

    /// Writes `<out_dir>/BENCH_<name>.json` and returns its path.
    pub fn write_file(&self, out_dir: &str) -> std::io::Result<String> {
        let dir = Path::new(out_dir);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path.display().to_string())
    }
}

/// One commit-stamped measurement run inside a [`BenchSeries`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRun {
    /// Commit (or other label) the run was measured at.
    pub commit: String,
    /// Measured scenarios.
    pub entries: Vec<BenchEntry>,
}

/// A per-PR perf trajectory: the same micro-benchmark measured at a
/// sequence of commits, appended to on every run of the baseline bin.
/// CI compares the newest run against the previous one and fails the
/// build on a regression (see [`BenchSeries::check_regression`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSeries {
    /// Benchmark family name (file is `BENCH_<name>.json`).
    pub name: String,
    /// Free-form description of what was measured and how.
    pub description: String,
    /// Measurement runs, oldest first.
    pub runs: Vec<BenchRun>,
}

impl BenchSeries {
    /// Loads the series from `<dir>/BENCH_<name>.json`. A *missing*
    /// file starts a fresh, empty series; a file in the pre-series
    /// single-report format is migrated into a series whose sole run is
    /// labelled `pre-series`. A file that exists but parses as neither
    /// format is an **error** — callers must not append-and-overwrite a
    /// tracked history they failed to read (a truncated write or merge
    /// conflict would silently destroy the whole trajectory otherwise).
    pub fn load_or_new(
        dir: &str,
        name: &str,
        description: &str,
    ) -> std::io::Result<Self> {
        let path = Path::new(dir).join(format!("BENCH_{name}.json"));
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Self {
                    name: name.to_string(),
                    description: description.to_string(),
                    runs: Vec::new(),
                });
            }
            Err(e) => return Err(e),
        };
        if let Ok(series) = serde_json::from_str::<BenchSeries>(&text) {
            if !series.runs.is_empty() {
                return Ok(series);
            }
        }
        if let Ok(report) = serde_json::from_str::<BenchReport>(&text) {
            if !report.entries.is_empty() {
                return Ok(Self {
                    name: report.name,
                    description: report.description,
                    runs: vec![BenchRun {
                        commit: "pre-series".to_string(),
                        entries: report.entries,
                    }],
                });
            }
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{} exists but is neither a bench series nor a legacy \
                 report; refusing to overwrite the tracked history",
                path.display()
            ),
        ))
    }

    /// Appends one commit-stamped run.
    pub fn append(
        &mut self,
        commit: impl Into<String>,
        entries: Vec<BenchEntry>,
    ) {
        self.runs.push(BenchRun {
            commit: commit.into(),
            entries,
        });
    }

    /// Compares the newest run against the previous one over the
    /// matching (scenario, depth, support) triples. The gated quantity
    /// is the **speedup** (`scratch_ns / incremental_ns`): because both
    /// timings inside one run come from the same machine, the speedup
    /// is machine-relative, so a run recorded on a developer laptop and
    /// one recorded on a CI runner remain comparable — a slower host
    /// scales both numerators and denominators. A regression in the
    /// incremental path shows up as a *drop* in speedup against the
    /// stable from-scratch yardstick.
    ///
    /// Returns `Err` with a human-readable report when the
    /// geometric-mean speedup degradation exceeds `1 + threshold`
    /// (e.g. `threshold = 0.15` = incremental lost 15 % vs scratch);
    /// `Ok` carries the mean degradation factor (1.0 when fewer than
    /// two runs or no matching triples exist; values below 1.0 mean
    /// the incremental path got relatively faster). The geometric mean
    /// over all matching scenarios — rather than any single one —
    /// keeps the gate robust to per-scenario timer noise.
    pub fn check_regression(&self, threshold: f64) -> Result<f64, String> {
        let [.., prev, last] = self.runs.as_slice() else {
            return Ok(1.0);
        };
        let mut log_sum = 0.0;
        let mut n = 0usize;
        let mut detail = String::new();
        for e in &last.entries {
            let Some(base) = prev.entries.iter().find(|p| {
                p.scenario == e.scenario
                    && p.queue_depth == e.queue_depth
                    && p.pet_support == e.pet_support
            }) else {
                continue;
            };
            if base.speedup <= 0.0 || e.speedup <= 0.0 {
                continue;
            }
            // > 1.0 when the incremental path lost ground vs scratch.
            let degradation = base.speedup / e.speedup;
            log_sum += degradation.ln();
            n += 1;
            detail.push_str(&format!(
                "  {} d{} s{}: speedup {:.2}x -> {:.2}x ({:+.1} %)\n",
                e.scenario,
                e.queue_depth,
                e.pet_support,
                base.speedup,
                e.speedup,
                100.0 * (1.0 / degradation - 1.0),
            ));
        }
        if n == 0 {
            return Ok(1.0);
        }
        let mean_degradation = (log_sum / n as f64).exp();
        if mean_degradation > 1.0 + threshold {
            Err(format!(
                "perf regression: geometric-mean incremental-vs-scratch \
                 speedup degraded by {:.3}x, exceeding {:.3}x ({} vs {})\n{}",
                mean_degradation,
                1.0 + threshold,
                last.commit,
                prev.commit,
                detail,
            ))
        } else {
            Ok(mean_degradation)
        }
    }

    /// Per-scenario geometric-mean speedup degradation between two
    /// runs, over their matching (scenario, depth, support) triples.
    /// Deterministic (BTreeMap) scenario order.
    fn scenario_degradations(
        prev: &BenchRun,
        last: &BenchRun,
    ) -> Vec<(String, f64)> {
        let mut acc: std::collections::BTreeMap<String, (f64, usize)> =
            std::collections::BTreeMap::new();
        for e in &last.entries {
            let Some(base) = prev.entries.iter().find(|p| {
                p.scenario == e.scenario
                    && p.queue_depth == e.queue_depth
                    && p.pet_support == e.pet_support
            }) else {
                continue;
            };
            if base.speedup <= 0.0 || e.speedup <= 0.0 {
                continue;
            }
            let slot = acc.entry(e.scenario.clone()).or_insert((0.0, 0));
            slot.0 += (base.speedup / e.speedup).ln();
            slot.1 += 1;
        }
        acc.into_iter()
            .map(|(scenario, (log_sum, n))| {
                (scenario, (log_sum / n as f64).exp())
            })
            .collect()
    }

    /// The **per-scenario, noise-aware** regression gate: compares the
    /// newest run against the previous one *per scenario* (so a real
    /// regression in one scenario cannot hide behind improvements in
    /// the others, which the all-scenario geometric mean allowed), with
    /// each scenario's threshold widened by its own historical
    /// run-to-run noise.
    ///
    /// For every scenario the gated quantity is the geometric-mean
    /// speedup degradation over that scenario's matching (depth,
    /// support) triples — machine-relative for the same reason as
    /// [`BenchSeries::check_regression`]. The allowance is
    /// `(1 + base_threshold) · exp(2σ)`, where σ is the standard
    /// deviation of the scenario's historical log-degradations across
    /// all earlier consecutive run pairs in the series: a scenario
    /// whose measurements have historically bounced ±20 % between runs
    /// gets proportionally more headroom than one that has been stable
    /// to ±2 %, instead of both sharing one blunt threshold. With
    /// fewer than two historical pairs σ is taken as 0 and the gate
    /// degenerates to the plain per-scenario threshold.
    ///
    /// Returns the per-scenario degradations (scenario name, factor)
    /// on success, or a human-readable report naming every tripping
    /// scenario.
    pub fn check_regression_per_scenario(
        &self,
        base_threshold: f64,
    ) -> Result<Vec<(String, f64)>, String> {
        let [.., prev, last] = self.runs.as_slice() else {
            return Ok(Vec::new());
        };
        let current = Self::scenario_degradations(prev, last);

        // Historical per-scenario log-degradations: every consecutive
        // pair strictly before the (prev, last) pair under judgement.
        let mut history: std::collections::BTreeMap<String, Vec<f64>> =
            std::collections::BTreeMap::new();
        let n_runs = self.runs.len();
        for pair in self.runs.windows(2).take(n_runs.saturating_sub(2)) {
            for (scenario, degradation) in
                Self::scenario_degradations(&pair[0], &pair[1])
            {
                history.entry(scenario).or_default().push(degradation.ln());
            }
        }
        let sigma = |scenario: &str| -> f64 {
            let Some(logs) = history.get(scenario) else {
                return 0.0;
            };
            if logs.len() < 2 {
                return 0.0;
            }
            let mean = logs.iter().sum::<f64>() / logs.len() as f64;
            let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>()
                / (logs.len() - 1) as f64;
            var.sqrt()
        };

        let mut failures = String::new();
        for (scenario, degradation) in &current {
            let allowed =
                (1.0 + base_threshold) * (2.0 * sigma(scenario)).exp();
            if *degradation > allowed {
                failures.push_str(&format!(
                    "  {scenario}: speedup degraded {degradation:.3}x, \
                     exceeding its noise-aware allowance {allowed:.3}x\n"
                ));
            }
        }
        if failures.is_empty() {
            Ok(current)
        } else {
            Err(format!(
                "perf regression ({} vs {}):\n{failures}",
                last.commit, prev.commit,
            ))
        }
    }

    /// Writes `<out_dir>/BENCH_<name>.json` and returns its path.
    pub fn write_file(&self, out_dir: &str) -> std::io::Result<String> {
        let dir = Path::new(out_dir);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(
            serde_json::to_string(self)
                .expect("bench series serialises")
                .as_bytes(),
        )?;
        f.write_all(b"\n")?;
        Ok(path.display().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_prob::stats::SummaryStats;

    fn fake_result(label: &str, mean: f64) -> ExperimentResult {
        ExperimentResult {
            label: label.to_string(),
            per_trial_robustness: vec![mean],
            robustness: SummaryStats::from_values(&[mean]).unwrap(),
            mean_wasted_fraction: 0.25,
            mean_deferrals: 10.0,
            mean_proactive_drops: 3.0,
            mean_type_variance: 0.0,
        }
    }

    fn report() -> FigureReport {
        FigureReport {
            id: "figX".to_string(),
            caption: "test caption".to_string(),
            series_label: "heuristic".to_string(),
            rows: vec![
                ("MM".to_string(), fake_result("MM", 50.0)),
                ("MM-P".to_string(), fake_result("MM-P", 65.0)),
            ],
        }
    }

    #[test]
    fn markdown_contains_rows_and_caption() {
        let md = report().to_markdown();
        assert!(md.contains("figX"));
        assert!(md.contains("test caption"));
        assert!(md.contains("| MM |"));
        assert!(md.contains("| MM-P | 65.00 |"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("series,"));
        assert!(lines[1].starts_with("MM,50.0000"));
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("taskprune_report_test");
        let dir_str = dir.to_str().unwrap().to_string();
        report().write_files(&dir_str).unwrap();
        assert!(dir.join("figX.md").exists());
        assert!(dir.join("figX.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An entry whose incremental path is `ns` against a fixed 1000 ns
    /// scratch yardstick — so a larger `ns` means a *worse* speedup.
    fn entry(scenario: &str, ns: f64) -> BenchEntry {
        BenchEntry {
            scenario: scenario.to_string(),
            queue_depth: 16,
            pet_support: 64,
            incremental_ns: ns,
            scratch_ns: 1_000.0,
            speedup: 1_000.0 / ns,
            robustness_pct: None,
            robustness_under_faults_pct: None,
            gate: None,
            reuse_hit_pct: None,
            arrivals_per_sec: None,
            steals_pct: None,
            staleness_k: None,
            per_tenant_robustness_pct: None,
            shed_pct: None,
        }
    }

    #[test]
    fn entries_without_robustness_still_parse() {
        // Runs recorded before `robustness_pct` existed (every pre-PR5
        // entry in the tracked series) must keep loading as `None`,
        // and the new field must round-trip when present.
        let legacy = "{\"scenario\":\"tail_drop\",\"queue_depth\":16,\
                      \"pet_support\":64,\"incremental_ns\":100.0,\
                      \"scratch_ns\":1000.0,\"speedup\":10.0}";
        let parsed: BenchEntry =
            serde_json::from_str(legacy).expect("legacy entry parses");
        assert_eq!(parsed.robustness_pct, None);
        assert_eq!(parsed.robustness_under_faults_pct, None);
        assert_eq!(parsed.reuse_hit_pct, None);
        assert_eq!(parsed.arrivals_per_sec, None);
        assert_eq!(parsed.steals_pct, None);
        assert_eq!(parsed.staleness_k, None);
        assert_eq!(parsed.per_tenant_robustness_pct, None);
        assert_eq!(parsed.shed_pct, None);
        let mut with_field = parsed.clone();
        with_field.robustness_pct = Some(84.5);
        with_field.robustness_under_faults_pct = Some(61.2);
        with_field.reuse_hit_pct = Some(23.1);
        with_field.arrivals_per_sec = Some(1.25e6);
        with_field.steals_pct = Some(0.85);
        with_field.staleness_k = Some(4);
        with_field.per_tenant_robustness_pct = Some(71.5);
        with_field.shed_pct = Some(12.5);
        let json = serde_json::to_string(&with_field).unwrap();
        let back: BenchEntry =
            serde_json::from_str(&json).expect("new entry parses");
        assert_eq!(back.robustness_pct, Some(84.5));
        assert_eq!(back.robustness_under_faults_pct, Some(61.2));
        assert_eq!(back.reuse_hit_pct, Some(23.1));
        assert_eq!(back.arrivals_per_sec, Some(1.25e6));
        assert_eq!(back.steals_pct, Some(0.85));
        assert_eq!(back.staleness_k, Some(4));
        assert_eq!(back.per_tenant_robustness_pct, Some(71.5));
        assert_eq!(back.shed_pct, Some(12.5));
        assert_eq!(back.scenario, "tail_drop");
        assert_eq!(back.speedup, 10.0);
    }

    #[test]
    fn gate_marker_roundtrips_and_defaults_to_none() {
        // Entries recorded before the gate-disposition field existed
        // must keep loading as `None`, and a recorded waiver must
        // survive a series round-trip verbatim.
        let legacy = "{\"scenario\":\"gateway_parallel_t4\",\
                      \"queue_depth\":4,\"pet_support\":10000,\
                      \"incremental_ns\":100.0,\"scratch_ns\":1000.0,\
                      \"speedup\":10.0,\"robustness_pct\":84.5}";
        let parsed: BenchEntry =
            serde_json::from_str(legacy).expect("pre-gate entry parses");
        assert_eq!(parsed.gate, None);
        let mut skipped = parsed.clone();
        skipped.gate = Some("skipped(cores<4)".to_string());
        let json = serde_json::to_string(&skipped).unwrap();
        let back: BenchEntry =
            serde_json::from_str(&json).expect("waived entry parses");
        assert_eq!(back.gate.as_deref(), Some("skipped(cores<4)"));
        assert_eq!(back.robustness_pct, Some(84.5));
    }

    #[test]
    fn legacy_report_migrates_into_a_series() {
        let dir = std::env::temp_dir().join("taskprune_series_migrate");
        let dir_str = dir.to_str().unwrap().to_string();
        let legacy = BenchReport {
            name: "probe".to_string(),
            description: "d".to_string(),
            entries: vec![entry("tail_drop", 100.0)],
        };
        legacy.write_file(&dir_str).unwrap();
        let series = BenchSeries::load_or_new(&dir_str, "probe", "d").unwrap();
        assert_eq!(series.runs.len(), 1);
        assert_eq!(series.runs[0].commit, "pre-series");
        assert_eq!(series.runs[0].entries.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_roundtrips_and_appends() {
        let dir = std::env::temp_dir().join("taskprune_series_roundtrip");
        let dir_str = dir.to_str().unwrap().to_string();
        let mut series =
            BenchSeries::load_or_new(&dir_str, "probe", "d").unwrap();
        assert!(series.runs.is_empty());
        series.append("aaa111", vec![entry("tail_drop", 100.0)]);
        series.write_file(&dir_str).unwrap();
        let mut back =
            BenchSeries::load_or_new(&dir_str, "probe", "d").unwrap();
        assert_eq!(back.runs.len(), 1);
        back.append("bbb222", vec![entry("tail_drop", 101.0)]);
        back.write_file(&dir_str).unwrap();
        let last = BenchSeries::load_or_new(&dir_str, "probe", "d").unwrap();
        assert_eq!(last.runs.len(), 2);
        assert_eq!(last.runs[1].commit, "bbb222");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_series_file_is_an_error_not_an_overwrite() {
        let dir = std::env::temp_dir().join("taskprune_series_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let dir_str = dir.to_str().unwrap().to_string();
        std::fs::write(dir.join("BENCH_probe.json"), "{\"truncated\": tru")
            .unwrap();
        let err = BenchSeries::load_or_new(&dir_str, "probe", "d")
            .expect_err("corrupt history must not be silently replaced");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The corrupt file is untouched.
        let left =
            std::fs::read_to_string(dir.join("BENCH_probe.json")).unwrap();
        assert!(left.starts_with("{\"truncated\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn regression_gate_trips_on_relative_slowdown_only() {
        let mut series = BenchSeries {
            name: "probe".to_string(),
            description: "d".to_string(),
            runs: Vec::new(),
        };
        // Single run: nothing to compare against.
        series.append("a", vec![entry("tail_drop", 100.0)]);
        assert_eq!(series.check_regression(0.15), Ok(1.0));

        // Incremental 10 % slower vs the same scratch yardstick: the
        // speedup dropped 100/1000 -> ~9.09x, degradation 1.1 — under
        // the gate.
        series.append("b", vec![entry("tail_drop", 110.0)]);
        let ratio = series.check_regression(0.15).expect("within threshold");
        assert!((ratio - 1.1).abs() < 1e-9, "ratio {ratio}");

        // 30 % relative slowdown: the gate must trip and name commits.
        series.append("c", vec![entry("tail_drop", 143.0)]);
        let err = series.check_regression(0.15).unwrap_err();
        assert!(err.contains("perf regression"), "{err}");
        assert!(err.contains('c') && err.contains('b'));

        // A uniformly slower *machine* (both timings scaled 3x) keeps
        // the speedup unchanged: no false positive across hosts.
        let cross_machine = BenchEntry {
            scenario: "tail_drop".to_string(),
            queue_depth: 16,
            pet_support: 64,
            incremental_ns: 3.0 * 143.0,
            scratch_ns: 3_000.0,
            speedup: 3_000.0 / (3.0 * 143.0),
            robustness_pct: None,
            robustness_under_faults_pct: None,
            gate: None,
            reuse_hit_pct: None,
            arrivals_per_sec: None,
            steals_pct: None,
            staleness_k: None,
            per_tenant_robustness_pct: None,
            shed_pct: None,
        };
        series.append("d", vec![cross_machine]);
        let ratio = series.check_regression(0.15).expect("machine-neutral");
        assert!((ratio - 1.0).abs() < 1e-9, "ratio {ratio}");

        // Unmatched scenarios are ignored entirely.
        series.append("e", vec![entry("other", 9_999.0)]);
        assert_eq!(series.check_regression(0.15), Ok(1.0));
    }

    #[test]
    fn per_scenario_gate_catches_what_the_mean_dilutes() {
        let mut series = BenchSeries {
            name: "probe".to_string(),
            description: "d".to_string(),
            runs: Vec::new(),
        };
        // Three scenarios, two runs: two scenarios speed *up* 20 %
        // while one regresses 40 %. The all-scenario geometric mean
        // (~0.97x) sails under a 15 % gate; the per-scenario gate must
        // name the regressing scenario.
        series.append(
            "a",
            vec![
                entry("tail_drop", 100.0),
                entry("mid_drop", 100.0),
                entry("steady_cycle", 100.0),
            ],
        );
        series.append(
            "b",
            vec![
                entry("tail_drop", 80.0),
                entry("mid_drop", 80.0),
                entry("steady_cycle", 140.0),
            ],
        );
        assert!(
            series.check_regression(0.15).is_ok(),
            "mean gate dilutes by design in this fixture"
        );
        let err = series.check_regression_per_scenario(0.15).unwrap_err();
        assert!(err.contains("steady_cycle"), "{err}");
        assert!(!err.contains("tail_drop"), "{err}");
    }

    #[test]
    fn per_scenario_gate_widens_with_historical_noise() {
        let noisy = |ns: f64| BenchEntry {
            scenario: "jittery".to_string(),
            queue_depth: 16,
            pet_support: 64,
            incremental_ns: ns,
            scratch_ns: 1_000.0,
            speedup: 1_000.0 / ns,
            robustness_pct: None,
            robustness_under_faults_pct: None,
            gate: None,
            reuse_hit_pct: None,
            arrivals_per_sec: None,
            steals_pct: None,
            staleness_k: None,
            per_tenant_robustness_pct: None,
            shed_pct: None,
        };
        let mut series = BenchSeries {
            name: "probe".to_string(),
            description: "d".to_string(),
            runs: Vec::new(),
        };
        // A scenario that historically bounces ±30 % between runs...
        for ns in [100.0, 130.0, 100.0, 130.0, 100.0] {
            series.append("h", vec![noisy(ns)]);
        }
        // ...takes another +30 % bounce. A flat 15 % gate would trip;
        // the noise-aware allowance must absorb it.
        series.append("new", vec![noisy(130.0)]);
        let per = series
            .check_regression_per_scenario(0.15)
            .expect("historically noisy scenario gets headroom");
        assert_eq!(per.len(), 1);
        assert!((per[0].1 - 1.3).abs() < 1e-9, "degradation {}", per[0].1);

        // A stable scenario with the same final 30 % hit must trip.
        let mut stable = BenchSeries {
            name: "probe".to_string(),
            description: "d".to_string(),
            runs: Vec::new(),
        };
        for _ in 0..5 {
            stable.append("h", vec![noisy(100.0)]);
        }
        stable.append("new", vec![noisy(130.0)]);
        let err = stable.check_regression_per_scenario(0.15).unwrap_err();
        assert!(err.contains("jittery"), "{err}");
    }

    #[test]
    fn per_scenario_gate_handles_thin_series() {
        let mut series = BenchSeries {
            name: "probe".to_string(),
            description: "d".to_string(),
            runs: Vec::new(),
        };
        assert_eq!(series.check_regression_per_scenario(0.15), Ok(vec![]));
        series.append("a", vec![entry("tail_drop", 100.0)]);
        assert_eq!(series.check_regression_per_scenario(0.15), Ok(vec![]));
        // Two runs, no history: plain per-scenario threshold applies.
        series.append("b", vec![entry("tail_drop", 200.0)]);
        assert!(series.check_regression_per_scenario(0.15).is_err());
    }
}
