//! A tiny flag parser for the figure binaries — avoids a CLI-framework
//! dependency for what is three flags.

use crate::scale::Scale;

/// Parsed common flags: `--trials N`, `--scale F`, `--pattern P`,
/// `--out DIR`, plus free-standing positionals.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Experiment scale (size factor + trials).
    pub scale: Scale,
    /// Arrival pattern filter ("constant" | "spiky"), if given.
    pub pattern: Option<String>,
    /// Output directory for CSV/Markdown reports.
    pub out_dir: String,
    /// Remaining positional arguments.
    pub positionals: Vec<String>,
}

impl CommonArgs {
    /// Parses `std::env::args`, panicking with a usage message on
    /// malformed flags.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not a collection conversion
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let mut scale = Scale::full();
        let mut pattern = None;
        let mut out_dir = "results".to_string();
        let mut positionals = Vec::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--trials" => {
                    scale.trials = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--trials needs a positive integer");
                }
                "--scale" => {
                    scale.size_factor = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a number in (0, 1]");
                }
                "--smoke" => scale = Scale::smoke(),
                "--pattern" => {
                    pattern =
                        Some(iter.next().expect("--pattern needs a value"));
                }
                "--out" => {
                    out_dir = iter.next().expect("--out needs a path");
                }
                "--mode" => {
                    // fig7 uses --mode immediate|batch as a positional
                    // alias; forward it.
                    positionals
                        .push(iter.next().expect("--mode needs a value"));
                }
                other => positionals.push(other.to_string()),
            }
        }
        Self {
            scale,
            pattern,
            out_dir,
            positionals,
        }
    }
}

/// Parsed flags shared by the `bench_*_baseline` series bins:
/// `--smoke`, `--out DIR`, `--commit LABEL`, `--check`. One parser so
/// the two bins' CLI contracts (and ci.yml's invocations) cannot
/// drift.
#[derive(Debug, Clone)]
pub struct BaselineArgs {
    /// Reduced measurement effort for CI.
    pub smoke: bool,
    /// Fail the process on a tripped regression/scaling gate.
    pub check: bool,
    /// Series directory (default `results`).
    pub out_dir: String,
    /// Commit stamp for the appended run (default: `git rev-parse
    /// --short HEAD`, falling back to `unknown`).
    pub commit: String,
}

impl BaselineArgs {
    /// Parses `std::env::args`.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not a collection conversion
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1).cloned())
        };
        Self {
            smoke: args.iter().any(|a| a == "--smoke"),
            check: args.iter().any(|a| a == "--check"),
            out_dir: value_of("--out").unwrap_or_else(|| "results".into()),
            commit: value_of("--commit").unwrap_or_else(head_commit),
        }
    }
}

/// `git rev-parse --short HEAD`, or `unknown` outside a work tree.
pub fn head_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::from_iter(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn baseline_args_parse_all_flags() {
        let a = BaselineArgs::from_iter(
            ["--smoke", "--check", "--out", "/tmp/x", "--commit", "abc"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(a.smoke && a.check);
        assert_eq!(a.out_dir, "/tmp/x");
        assert_eq!(a.commit, "abc");
        let d = BaselineArgs::from_iter(std::iter::empty());
        assert!(!d.smoke && !d.check);
        assert_eq!(d.out_dir, "results");
        assert!(!d.commit.is_empty());
    }

    #[test]
    fn defaults_to_paper_scale() {
        let a = parse(&[]);
        assert_eq!(a.scale, Scale::full());
        assert_eq!(a.out_dir, "results");
        assert!(a.pattern.is_none());
    }

    #[test]
    fn parses_flags() {
        let a = parse(&[
            "--trials",
            "5",
            "--scale",
            "0.2",
            "--pattern",
            "constant",
            "--out",
            "/tmp/x",
        ]);
        assert_eq!(a.scale.trials, 5);
        assert!((a.scale.size_factor - 0.2).abs() < 1e-12);
        assert_eq!(a.pattern.as_deref(), Some("constant"));
        assert_eq!(a.out_dir, "/tmp/x");
    }

    #[test]
    fn smoke_flag_sets_smoke_scale() {
        let a = parse(&["--smoke"]);
        assert_eq!(a.scale, Scale::smoke());
    }

    #[test]
    fn positionals_and_mode_alias() {
        let a = parse(&["--mode", "immediate", "extra"]);
        assert_eq!(a.positionals, vec!["immediate", "extra"]);
    }
}
