//! Regenerates Fig. 8: deferring impact vs. pruning threshold.

use taskprune_bench::args::CommonArgs;
use taskprune_bench::figures::fig8;

fn main() {
    let args = CommonArgs::parse();
    let report = fig8::run(args.scale);
    report.print();
    report.write_files(&args.out_dir).expect("writing report");
}
