//! Model-error robustness study: what does pruning cost when the PET
//! matrix — the pruner's entire evidence base — is wrong?
//!
//! Two error modes, both run against the same ground truth:
//!
//! * **learned**: the belief is a histogram over k observed executions
//!   per cell (a platform bootstrapping its estimator), k swept;
//! * **miscalibrated**: the belief systematically over-/under-estimates
//!   every execution time by a factor.
//!
//! Usage: `model_error [--trials N] [--scale F] [--smoke]`

use taskprune::extensions::{learn_from_observations, miscalibrate};
use taskprune::prelude::*;
use taskprune_bench::args::CommonArgs;
use taskprune_prob::rng::derive_seed;
use taskprune_prob::stats::SummaryStats;

fn run_with_belief(
    belief: &PetMatrix,
    truth: &PetMatrix,
    cluster: &Cluster,
    workload: &WorkloadConfig,
    trials: u32,
) -> SummaryStats {
    let per_trial: Vec<f64> = (0..trials)
        .map(|trial_idx| {
            let trial = workload.generate_trial(truth, trial_idx);
            let mut sim = SimConfig::batch(0);
            sim.seed =
                derive_seed(workload.seed, 0x51D_0000 + u64::from(trial_idx));
            let stats = taskprune::ResourceAllocator::new(cluster, belief, sim)
                .truth_pet(truth)
                .heuristic(HeuristicKind::Mm)
                .pruning(PruningConfig::paper_default())
                .run(&trial.tasks);
            stats.robustness_pct(taskprune_sim::stats::PAPER_TRIM)
        })
        .collect();
    SummaryStats::from_values(&per_trial).expect("trials > 0")
}

fn main() {
    let args = CommonArgs::parse();
    let truth = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let workload = {
        let base = WorkloadConfig::paper_default(0x40DE1);
        WorkloadConfig {
            total_tasks: (20_000.0 * args.scale.size_factor) as usize,
            span_tu: base.span_tu * args.scale.size_factor,
            ..base
        }
    };
    let trials = args.scale.trials;

    println!(
        "model-error study: MM + pruning, 20K-density spiky workload ({})\n",
        args.scale.label()
    );

    let oracle = run_with_belief(&truth, &truth, &cluster, &workload, trials);
    println!("oracle PET                    {:>6}", oracle.display_pm(2));

    println!("\n-- belief learned from k observations per cell --");
    for k in [2usize, 5, 20, 100, 500] {
        let learned = learn_from_observations(&truth, k, 0xF00D);
        let s = run_with_belief(&learned, &truth, &cluster, &workload, trials);
        println!(
            "k = {k:<4}                      {:>6}   (oracle {:+.2})",
            s.display_pm(2),
            s.mean - oracle.mean
        );
    }

    println!("\n-- systematically miscalibrated belief --");
    for factor in [0.5, 0.8, 1.0, 1.25, 2.0] {
        let belief = miscalibrate(&truth, factor);
        let s = run_with_belief(&belief, &truth, &cluster, &workload, trials);
        println!(
            "x{factor:<4}                        {:>6}   (oracle {:+.2})",
            s.display_pm(2),
            s.mean - oracle.mean
        );
    }
    println!(
        "\nreading: the mechanism needs surprisingly few observations — the\n\
         chance threshold only asks *which side of β* a task falls on, not\n\
         for exact probabilities. Optimistic beliefs (x<1) are costlier than\n\
         pessimistic ones: they stop the pruner from pruning."
    );
}
