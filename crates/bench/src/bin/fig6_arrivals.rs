//! Regenerates Fig. 6: the spiky arrival pattern series.

use taskprune_bench::args::CommonArgs;

fn main() {
    let args = CommonArgs::parse();
    taskprune_bench::figures::fig6::run(args.scale, &args.out_dir)
        .expect("writing fig6 series");
}
