//! Machine-readable federation-throughput trajectory.
//!
//! Two scenario families, one tracked series
//! (`results/BENCH_gateway_baseline.json`):
//!
//! **`gateway_ingest_<shards>`** — aggregate ingest throughput
//! (arrivals/second of wall time) of the standard oversubscribed
//! MM + pruning scenario pushed through the single-threaded
//! [`taskprune_sim::FederatedEngine`] at shard counts {1, 2, 4, 8},
//! round-robin routed. The 1-shard run *is* the plain engine (the
//! federation equivalence suite pins it bit-identical), so the series
//! doubles as the single-cluster ingest baseline. Sharding pays even
//! single-threaded: the batch mapping loop is superlinear in
//! batch-queue depth, so N shards each holding 1/N of the backlog do
//! strictly less work per mapping event than one cluster holding all
//! of it. Each entry records the run's **robustness** too, so a
//! throughput dip can be read against scheduling quality — the known
//! 2-shard dip happens because two shards drop *less* than one
//! reactively-shedding cluster, i.e. they do more real work per
//! arrival; the series makes that visible instead of mysterious.
//!
//! **`gateway_reuse_<policy>_d<rate>`** — ingest throughput of the same
//! 4-shard serial scenario on a stream carrying content-keyed duplicate
//! arrivals at rates {0, 10, 30} %, with the function-reuse gate off
//! versus exact dedup. The gate-off run is each rate's yardstick, so
//! `speedup` is the throughput the gate buys by absorbing duplicates
//! before machine-queue commitment; `reuse_hit_pct` and
//! `arrivals_per_sec` are recorded beside the existing columns.
//!
//! **`gateway_parallel_t<threads>`** — wall-clock of the same 4-shard
//! scenario on the work-stealing
//! [`taskprune_sim::ParallelFederatedEngine`] at thread counts
//! {1, 2, 4}. The equivalence suite guarantees the *output* is
//! bit-identical across this family (the bin asserts it again at run
//! time); only the wall clock may move. The 1-thread run is the
//! yardstick, so `speedup` is the 1→N-thread scaling.
//!
//! **`gateway_stateful_t<threads>`** — the same 4-shard parallel
//! matrix with the *stateful* least-queued policy routing on
//! `Consistency::BoundedStale { k: 4 }` views with batch-queue
//! stealing on. Without the relaxed-routing layer a stateful policy
//! serialises every arrival on the coordinator; this family tracks
//! what bounded staleness (one sync per `k+1` arrivals) buys in
//! thread scaling. Output is bit-identical across thread counts here
//! too (asserted at run time, pinned by
//! `tests/relaxed_equivalence.rs`); `steals_pct` and `staleness_k`
//! are recorded beside the existing columns.
//!
//! **`gateway_tenant_{off,quota,ladder}`** — the multi-tenant
//! admission layer on the same 4-shard serial scenario with 3 SLA
//! lanes (Premium / Standard / BestEffort). The `off` leg installs no
//! tenancy (byte-identical to the pre-tenancy gateway, pinned by
//! `tests/tenant_isolation.rs`) and is the family's yardstick, so
//! `speedup` is the admission layer's ingest overhead. `quota` puts a
//! token bucket on the Standard lane; `ladder` adds weighted-fair
//! admission and runs under a default-policy supervisor so the
//! overload degradation ladder gets sensing ticks.
//! `per_tenant_robustness_pct` (the robustness floor across tenants
//! that submitted — the SLA-isolation signal) and `shed_pct`
//! (front-door drops as a % of submissions) are recorded beside the
//! existing columns.
//!
//! Entries reuse the [`BenchEntry`] schema so the commit-stamped
//! [`BenchSeries`] machinery (per-scenario noise-aware regression
//! gates) applies unchanged: `queue_depth` = shard count (ingest
//! family) or thread count (parallel family), `pet_support` = tasks
//! pushed, `incremental_ns` = ns/arrival, `scratch_ns` = the family's
//! yardstick, `speedup` = throughput scaling vs the yardstick,
//! `robustness_pct` = the run's paper-trim robustness, and
//! `robustness_under_faults_pct` = the same scenario supervised under
//! a fixed seeded `FaultPlan` storm with a zero retry budget (the
//! worst-case degraded mode) — so the series tracks fault-*tolerance*
//! regressions commit over commit alongside throughput.
//!
//! Flags: `--smoke` (single repeat for CI — the workload stays the
//! standard one so the smoke run's (scenario, depth, support) triples
//! match the tracked series and the regression comparison is never
//! vacuous), `--out DIR`, `--commit LABEL`, `--check` (exit non-zero
//! on a noise-aware per-scenario regression vs the previous run, when
//! the 4-shard scaling fails to exceed 1×, **or** — on hosts with ≥ 4
//! hardware threads, i.e. CI — when the 1→4-thread scaling of either
//! parallel family (round-robin `gateway_parallel_t*` or stateful
//! `gateway_stateful_t*`) fails to exceed 1.5×; on smaller hosts both
//! thread gates are **waived with a warning** and the
//! `gateway_parallel_t4` / `gateway_stateful_t4` entries are stamped
//! `gate: "skipped(cores<4)"`, so the tracked series records a skip
//! rather than a silent pass).

use std::time::Instant;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_bench::args::BaselineArgs;
use taskprune_bench::report::{BenchEntry, BenchSeries};
use taskprune_sim::{
    LadderConfig, RateLimit, SlaClass, TenancyPolicy, TenantSpec,
};

const REGRESSION_THRESHOLD: f64 = 0.15;

/// Fixed seed of the fault storm behind `robustness_under_faults_pct`
/// (one of the two seeds the CI fault-matrix job pins).
const FAULT_PLAN_SEED: u64 = 0xFA01;

/// Fixed seed of the duplicate-injection stream behind the
/// `gateway_reuse_*` family (dedicated Xoshiro stream — the truth RNG
/// never sees it).
const DUP_STREAM_SEED: u64 = 0xD0B1;

/// Shard counts measured (serial driver), ascending; index 0 is the
/// yardstick.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Thread counts measured (parallel driver at [`PARALLEL_SHARDS`]
/// shards), ascending; index 0 is the yardstick.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Shard count of the parallel-driver family (the gate's scenario).
const PARALLEL_SHARDS: usize = 4;

/// Required 1→4-thread wall-clock scaling at 4 shards (enforced under
/// `--check` on hosts with ≥ 4 hardware threads), for both the
/// round-robin `gateway_parallel_t*` family and the stateful
/// `gateway_stateful_t*` family.
const THREAD_SCALING_GATE: f64 = 1.5;

/// Staleness bound of the `gateway_stateful_t*` family: routing views
/// refresh every `k + 1` arrivals, so the parallel driver only
/// synchronises at one in five arrivals instead of all of them.
const STATEFUL_STALENESS_K: u64 = 4;

/// Tenant-lane count of the `gateway_tenant_*` family (Premium /
/// Standard / BestEffort, one lane per SLA class).
const TENANT_LANES: usize = 3;

struct Measured {
    ns_per_arrival: f64,
    robustness_pct: f64,
    /// Reuse-gate counters of the run (all-zero when the gate is off).
    reuse: ReuseStats,
    /// Steal counters of the run (all-zero without stealing).
    steals: StealStats,
    /// Serialized stats of the last repeat, for the cross-thread-count
    /// bit-identity assertion.
    stats_json: String,
}

/// `stateful = false` is the round-robin baseline configuration every
/// pre-existing family measures; `true` swaps in the stateful
/// least-queued policy routing on bounded-stale views with
/// batch-queue stealing — the relaxed-routing layer under test in the
/// `gateway_stateful_t*` family.
fn build_engine<'a>(
    cluster: &Cluster,
    pet: &'a PetMatrix,
    shards: usize,
    reuse: ReusePolicy,
    stateful: bool,
) -> GatewayBuilder<'a, taskprune_sim::NullSink> {
    let n_types = pet.n_task_types();
    let b = GatewayBuilder::new(cluster, pet)
        .config(SimConfig::batch(7))
        .shards(shards)
        .strategy_with(move |_| HeuristicKind::Mm.make())
        .pruner_with(move |_| {
            Box::new(PruningMechanism::new(
                PruningConfig::paper_default(),
                n_types,
            ))
        })
        .reuse(reuse);
    if stateful {
        b.policy(LeastQueuedRoute::new())
            .consistency(Consistency::BoundedStale {
                k: STATEFUL_STALENESS_K,
            })
            .stealing(true)
    } else {
        b.policy(RoundRobinRoute::new())
    }
}

/// Wall-clock ns per arrival for full federated runs (build excluded,
/// drain included — the figure a front-end cares about), best-of-N to
/// strip scheduler noise. `threads = None` drives the serial engine,
/// `Some(t)` the parallel one.
#[allow(clippy::too_many_arguments)]
fn measure(
    cluster: &Cluster,
    pet: &PetMatrix,
    tasks: &[Task],
    shards: usize,
    threads: Option<usize>,
    repeats: u32,
    reuse: ReusePolicy,
    stateful: bool,
) -> Measured {
    let mut best = f64::INFINITY;
    let mut robustness = 0.0;
    let mut reuse_stats = ReuseStats::default();
    let mut steal_stats = StealStats::default();
    let mut stats_json = String::new();
    for _ in 0..repeats {
        let builder = build_engine(cluster, pet, shards, reuse, stateful);
        let (elapsed, stats) = match threads {
            None => {
                let engine = builder.build().expect("valid configuration");
                let start = Instant::now();
                let stats = engine.run_stream(tasks.iter().copied());
                (start.elapsed().as_nanos() as f64, stats)
            }
            Some(t) => {
                let engine = builder
                    .threads(t)
                    .build_parallel()
                    .expect("valid configuration");
                let start = Instant::now();
                let stats = engine.run_stream(tasks.iter().copied());
                (start.elapsed().as_nanos() as f64, stats)
            }
        };
        assert_eq!(stats.unreported(), 0);
        best = best.min(elapsed / tasks.len() as f64);
        robustness = stats.paper_robustness_pct();
        reuse_stats = stats.reuse_stats();
        steal_stats = stats.steal_stats();
        stats_json = serde_json::to_string(&stats).expect("stats serialize");
    }
    Measured {
        ns_per_arrival: best,
        robustness_pct: robustness,
        reuse: reuse_stats,
        steals: steal_stats,
        stats_json,
    }
}

/// Paper-trim robustness of the same scenario **supervised under the
/// fixed seeded fault storm with a zero retry budget** — worst-case
/// degraded mode: lost deliveries stay lost, the crashed shard is
/// quarantined and its backlog re-routed to the survivors. Not timed
/// (one run, quality only); the gap to the fault-free
/// `robustness_pct` is the tracked fault-tolerance signal.
fn measure_under_faults(
    cluster: &Cluster,
    pet: &PetMatrix,
    tasks: &[Task],
    shards: usize,
    threads: Option<usize>,
) -> f64 {
    let plan = FaultPlan::generate(
        FAULT_PLAN_SEED,
        &FaultSpec::storm(shards, (tasks.len() / shards.max(1)) as u64),
    );
    let builder = build_engine(cluster, pet, shards, ReusePolicy::Off, false);
    let stats = match threads {
        None => {
            let engine = builder.build().expect("valid configuration");
            let mut sup = Supervisor::new(engine, RecoveryPolicy::no_retries());
            sup.arm(plan);
            sup.run_stream(tasks.iter().copied())
        }
        Some(t) => {
            let engine = builder
                .threads(t)
                .build_parallel()
                .expect("valid configuration");
            let mut sup =
                ParallelSupervisor::new(engine, RecoveryPolicy::no_retries());
            sup.arm(&plan);
            sup.run_stream(tasks.iter().copied())
        }
    };
    assert_eq!(
        stats.unreported(),
        0,
        "degraded runs must account for every arrival"
    );
    stats.paper_robustness_pct()
}

struct TenantMeasured {
    ns_per_arrival: f64,
    robustness_pct: f64,
    /// Floor of per-tenant robustness over tenants that submitted
    /// anything; `None` when the run has no admission layer.
    per_tenant_robustness_pct: Option<f64>,
    /// % of submitted arrivals the admission layer shed across all
    /// tenants; `None` when the run has no admission layer.
    shed_pct: Option<f64>,
}

/// Serial 4-shard run with an optional multi-tenant admission layer,
/// best-of-N like [`measure`]. `supervised` routes the run through a
/// default-policy [`Supervisor`] (fault-free) so a configured overload
/// ladder actually gets sensing ticks — the ladder is supervisor-driven
/// and inert under a bare engine.
fn measure_tenancy(
    cluster: &Cluster,
    pet: &PetMatrix,
    tasks: &[Task],
    repeats: u32,
    tenancy: impl Fn() -> Option<TenancyPolicy>,
    supervised: bool,
) -> TenantMeasured {
    let mut best = f64::INFINITY;
    let mut robustness = 0.0;
    let mut per_tenant = None;
    let mut shed = None;
    for _ in 0..repeats {
        let mut builder = build_engine(
            cluster,
            pet,
            PARALLEL_SHARDS,
            ReusePolicy::Off,
            false,
        );
        if let Some(policy) = tenancy() {
            builder = builder.tenancy(policy);
        }
        let engine = builder.build().expect("valid configuration");
        let start = Instant::now();
        let stats = if supervised {
            Supervisor::new(engine, RecoveryPolicy::default())
                .run_stream(tasks.iter().copied())
        } else {
            engine.run_stream(tasks.iter().copied())
        };
        let elapsed = start.elapsed().as_nanos() as f64;
        assert_eq!(stats.unreported(), 0);
        best = best.min(elapsed / tasks.len() as f64);
        robustness = stats.paper_robustness_pct();
        if let Some(slices) = stats.tenant_slices() {
            per_tenant = slices
                .iter()
                .filter(|s| s.counters.submitted > 0)
                .map(|s| s.robustness_pct())
                .fold(None, |acc: Option<f64>, r| {
                    Some(acc.map_or(r, |a| a.min(r)))
                });
            let submitted: u64 =
                slices.iter().map(|s| s.counters.submitted).sum();
            let total_shed: u64 =
                slices.iter().map(|s| s.counters.shed()).sum();
            shed = (submitted > 0)
                .then(|| 100.0 * total_shed as f64 / submitted as f64);
        }
    }
    TenantMeasured {
        ns_per_arrival: best,
        robustness_pct: robustness,
        per_tenant_robustness_pct: per_tenant,
        shed_pct: shed,
    }
}

fn main() {
    let BaselineArgs {
        smoke,
        check,
        out_dir,
        commit,
    } = BaselineArgs::parse();

    let (total_tasks, span_tu) = (10_000, 600.0);
    let repeats = if smoke { 1 } else { 3 };

    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let tasks = WorkloadConfig {
        total_tasks,
        span_tu,
        ..WorkloadConfig::paper_default(42)
    }
    .generate_trial(&pet, 0)
    .tasks;

    let mut entries = Vec::new();

    // Family 1: serial driver across shard counts.
    let mut yardstick = f64::NAN;
    let mut scaling_at_4_shards = f64::NAN;
    for &shards in &SHARD_COUNTS {
        let m = measure(
            &cluster,
            &pet,
            &tasks,
            shards,
            None,
            repeats,
            ReusePolicy::Off,
            false,
        );
        let faulted =
            measure_under_faults(&cluster, &pet, &tasks, shards, None);
        let ns = m.ns_per_arrival;
        if shards == 1 {
            yardstick = ns;
        }
        let speedup = yardstick / ns;
        if shards == 4 {
            scaling_at_4_shards = speedup;
        }
        eprintln!(
            "gateway_ingest shards {shards}: {ns:>9.0} ns/arrival \
             ({:>9.0} arrivals/s), {speedup:.2}x vs 1 shard, \
             robustness {:.1} % ({faulted:.1} % under the fault storm)",
            1e9 / ns,
            m.robustness_pct,
        );
        entries.push(BenchEntry {
            // One scenario per shard count: the per-scenario gate then
            // judges each independently instead of geomeaning a
            // 2-shard regression away against flat 1/4/8 entries.
            scenario: format!("gateway_ingest_{shards}"),
            queue_depth: shards,
            pet_support: total_tasks,
            incremental_ns: ns,
            scratch_ns: yardstick,
            speedup,
            robustness_pct: Some(m.robustness_pct),
            robustness_under_faults_pct: Some(faulted),
            gate: None,
            reuse_hit_pct: None,
            arrivals_per_sec: Some(1e9 / ns),
            steals_pct: None,
            staleness_k: None,
            per_tenant_robustness_pct: None,
            shed_pct: None,
        });
    }

    // The thread-scaling gate needs >= 4 hardware threads to be
    // expressible; on smaller hosts it is *waived*, and the waiver is
    // stamped into the gated entry so the tracked series shows a skip,
    // not a pass.
    let hw_threads =
        std::thread::available_parallelism().map_or(1, |p| p.get());
    let thread_gate_skipped = hw_threads < 4;

    // Family 2: parallel driver across thread counts at 4 shards.
    let mut thread_yardstick = f64::NAN;
    let mut thread_yardstick_stats = String::new();
    let mut scaling_at_4_threads = f64::NAN;
    for &threads in &THREAD_COUNTS {
        let m = measure(
            &cluster,
            &pet,
            &tasks,
            PARALLEL_SHARDS,
            Some(threads),
            repeats,
            ReusePolicy::Off,
            false,
        );
        let faulted = measure_under_faults(
            &cluster,
            &pet,
            &tasks,
            PARALLEL_SHARDS,
            Some(threads),
        );
        let ns = m.ns_per_arrival;
        if threads == 1 {
            thread_yardstick = ns;
            thread_yardstick_stats = m.stats_json.clone();
        } else {
            // Parallelism must be purely a wall-clock change — the
            // equivalence suite pins this; re-assert it on the real
            // bench workload so the series can never silently record
            // a divergent run.
            assert_eq!(
                thread_yardstick_stats, m.stats_json,
                "parallel driver diverged between thread counts"
            );
        }
        let speedup = thread_yardstick / ns;
        if threads == 4 {
            scaling_at_4_threads = speedup;
        }
        eprintln!(
            "gateway_parallel threads {threads} (at {PARALLEL_SHARDS} \
             shards): {ns:>9.0} ns/arrival ({:>9.0} arrivals/s), \
             {speedup:.2}x vs 1 thread",
            1e9 / ns,
        );
        entries.push(BenchEntry {
            scenario: format!("gateway_parallel_t{threads}"),
            queue_depth: threads,
            pet_support: total_tasks,
            incremental_ns: ns,
            scratch_ns: thread_yardstick,
            speedup,
            robustness_pct: Some(m.robustness_pct),
            robustness_under_faults_pct: Some(faulted),
            gate: (threads == 4 && thread_gate_skipped)
                .then(|| "skipped(cores<4)".to_string()),
            reuse_hit_pct: None,
            arrivals_per_sec: Some(1e9 / ns),
            steals_pct: None,
            staleness_k: None,
            per_tenant_robustness_pct: None,
            shed_pct: None,
        });
    }

    // Family 3: the function-reuse gate on duplicate-bearing streams
    // (serial driver at 4 shards). For each duplicate rate, the same
    // stream runs with the gate off and with exact dedup; the Off run
    // is the rate's own yardstick, so `speedup` is what absorbing
    // duplicates buys in ingest throughput on this workload, and
    // `reuse_hit_pct` records how much of the stream was absorbed.
    for rate_pct in [0u64, 10, 30] {
        let dup_tasks: Vec<Task> =
            taskprune_workload::TaskStream::from_tasks(tasks.clone())
                .with_duplicate_rate(rate_pct as f64 / 100.0, DUP_STREAM_SEED)
                .collect();
        let mut off_ns = f64::NAN;
        for (name, policy) in
            [("off", ReusePolicy::Off), ("exact", ReusePolicy::ExactOnly)]
        {
            let m = measure(
                &cluster,
                &pet,
                &dup_tasks,
                PARALLEL_SHARDS,
                None,
                repeats,
                policy,
                false,
            );
            let ns = m.ns_per_arrival;
            if policy == ReusePolicy::Off {
                off_ns = ns;
            }
            let hit_pct =
                100.0 * m.reuse.absorbed() as f64 / dup_tasks.len() as f64;
            eprintln!(
                "gateway_reuse {name} at {rate_pct} % duplicates: \
                 {ns:>9.0} ns/arrival ({:>9.0} arrivals/s), {:.2}x vs \
                 gate off, {hit_pct:.1} % absorbed, robustness {:.1} %",
                1e9 / ns,
                off_ns / ns,
                m.robustness_pct,
            );
            entries.push(BenchEntry {
                scenario: format!("gateway_reuse_{name}_d{rate_pct}"),
                queue_depth: PARALLEL_SHARDS,
                pet_support: dup_tasks.len(),
                incremental_ns: ns,
                scratch_ns: off_ns,
                speedup: off_ns / ns,
                robustness_pct: Some(m.robustness_pct),
                robustness_under_faults_pct: None,
                gate: None,
                reuse_hit_pct: Some(hit_pct),
                arrivals_per_sec: Some(1e9 / ns),
                steals_pct: None,
                staleness_k: None,
                per_tenant_robustness_pct: None,
                shed_pct: None,
            });
        }
    }

    // Family 4: the stateful relaxed-routing configuration — least-
    // queued routing on BoundedStale{4} views with batch-queue
    // stealing — on the parallel driver across thread counts at 4
    // shards. Without the relaxed layer a stateful policy forces a
    // coordinator barrier per arrival; the series tracks what the
    // bounded-staleness sync (one barrier per k+1 arrivals) buys in
    // thread scaling. Output stays bit-identical across thread counts
    // (asserted here, pinned by tests/relaxed_equivalence.rs).
    let mut stateful_yardstick = f64::NAN;
    let mut stateful_yardstick_stats = String::new();
    let mut stateful_scaling_at_4_threads = f64::NAN;
    for &threads in &THREAD_COUNTS {
        let m = measure(
            &cluster,
            &pet,
            &tasks,
            PARALLEL_SHARDS,
            Some(threads),
            repeats,
            ReusePolicy::Off,
            true,
        );
        let ns = m.ns_per_arrival;
        if threads == 1 {
            stateful_yardstick = ns;
            stateful_yardstick_stats = m.stats_json.clone();
        } else {
            assert_eq!(
                stateful_yardstick_stats, m.stats_json,
                "stateful parallel driver diverged between thread counts"
            );
        }
        let speedup = stateful_yardstick / ns;
        if threads == 4 {
            stateful_scaling_at_4_threads = speedup;
        }
        let steals_pct =
            100.0 * m.steals.tasks_moved as f64 / tasks.len() as f64;
        eprintln!(
            "gateway_stateful threads {threads} (least-queued, \
             BoundedStale{{{STATEFUL_STALENESS_K}}}, stealing, at \
             {PARALLEL_SHARDS} shards): {ns:>9.0} ns/arrival \
             ({:>9.0} arrivals/s), {speedup:.2}x vs 1 thread, \
             {steals_pct:.2} % of arrivals stolen",
            1e9 / ns,
        );
        entries.push(BenchEntry {
            scenario: format!("gateway_stateful_t{threads}"),
            queue_depth: threads,
            pet_support: total_tasks,
            incremental_ns: ns,
            scratch_ns: stateful_yardstick,
            speedup,
            robustness_pct: Some(m.robustness_pct),
            robustness_under_faults_pct: None,
            gate: (threads == 4 && thread_gate_skipped)
                .then(|| "skipped(cores<4)".to_string()),
            reuse_hit_pct: None,
            arrivals_per_sec: Some(1e9 / ns),
            steals_pct: Some(steals_pct),
            staleness_k: Some(STATEFUL_STALENESS_K),
            per_tenant_robustness_pct: None,
            shed_pct: None,
        });
    }

    // Family 5: the multi-tenant admission layer (serial driver at 4
    // shards, 3 SLA lanes). `off` runs the identical workload with no
    // tenancy installed — the equivalence suite pins it byte-identical
    // to the pre-tenancy gateway, so it is the family's yardstick and
    // `speedup` is the admission layer's ingest overhead (≈1x when the
    // front-door check is cheap). `quota` gives the Standard lane a
    // real token bucket, `ladder` adds weighted-fair admission plus
    // the supervisor-driven overload degradation ladder; both record
    // `per_tenant_robustness_pct` (the floor across tenants — the
    // SLA-isolation signal) and `shed_pct` (front-door drops).
    type TenancyMaker = fn() -> Option<TenancyPolicy>;
    let tenant_scenarios: [(&str, TenancyMaker, bool); 3] = [
        ("off", || None, false),
        (
            "quota",
            || {
                Some(
                    TenancyPolicy::new(TENANT_LANES as u64)
                        .tenant(TenantSpec::new(SlaClass::Premium))
                        .tenant(
                            TenantSpec::new(SlaClass::Standard)
                                .quota(RateLimit::per_ticks(16, 1_000)),
                        )
                        .tenant(TenantSpec::new(SlaClass::BestEffort)),
                )
            },
            false,
        ),
        (
            "ladder",
            || {
                Some(
                    TenancyPolicy::new(TENANT_LANES as u64)
                        .tenant(TenantSpec::new(SlaClass::Premium).weight(3))
                        .tenant(TenantSpec::new(SlaClass::Standard).weight(2))
                        .tenant(TenantSpec::new(SlaClass::BestEffort))
                        .ladder(LadderConfig {
                            high: 48,
                            low: 4,
                            sustain: 2,
                            retry_after: 64,
                        }),
                )
            },
            true,
        ),
    ];
    let mut tenant_yardstick = f64::NAN;
    for (name, tenancy, supervised) in tenant_scenarios {
        let m = measure_tenancy(
            &cluster, &pet, &tasks, repeats, tenancy, supervised,
        );
        let ns = m.ns_per_arrival;
        if name == "off" {
            tenant_yardstick = ns;
        }
        eprintln!(
            "gateway_tenant {name} ({TENANT_LANES} lanes, at \
             {PARALLEL_SHARDS} shards): {ns:>9.0} ns/arrival \
             ({:>9.0} arrivals/s), {:.2}x vs no tenancy, robustness \
             {:.1} % (per-tenant floor {}, shed {})",
            1e9 / ns,
            tenant_yardstick / ns,
            m.robustness_pct,
            m.per_tenant_robustness_pct
                .map_or("-".to_string(), |p| format!("{p:.1} %")),
            m.shed_pct.map_or("-".to_string(), |p| format!("{p:.1} %")),
        );
        entries.push(BenchEntry {
            scenario: format!("gateway_tenant_{name}"),
            queue_depth: TENANT_LANES,
            pet_support: total_tasks,
            incremental_ns: ns,
            scratch_ns: tenant_yardstick,
            speedup: tenant_yardstick / ns,
            robustness_pct: Some(m.robustness_pct),
            robustness_under_faults_pct: None,
            gate: None,
            reuse_hit_pct: None,
            arrivals_per_sec: Some(1e9 / ns),
            steals_pct: None,
            staleness_k: None,
            per_tenant_robustness_pct: m.per_tenant_robustness_pct,
            shed_pct: m.shed_pct,
        });
    }

    let mut series = BenchSeries::load_or_new(
        &out_dir,
        "gateway_baseline",
        "Per-PR federation ingest-throughput trajectory: the standard \
         oversubscribed MM+pruning workload pushed through a round-robin \
         FederatedEngine at shard counts 1/2/4/8 (gateway_ingest_*, \
         queue_depth = shard count) and through the work-stealing \
         ParallelFederatedEngine at 4 shards and thread counts 1/2/4 \
         (gateway_parallel_t*, queue_depth = thread count). pet_support \
         = tasks pushed, incremental_ns = ns per arrival, scratch_ns = \
         the family's yardstick run (1 shard / 1 thread), speedup = \
         throughput scaling vs that yardstick (machine-relative, so \
         runs from different hosts stay comparable), robustness_pct = \
         the run's paper-trim robustness (throughput shifts are read \
         against scheduling quality), robustness_under_faults_pct = \
         the same scenario supervised under the fixed 0xFA01 FaultPlan \
         storm with a zero retry budget (worst-case degraded mode; the \
         gap to robustness_pct is the tracked fault-tolerance signal). \
         The gateway_reuse_{off,exact}_d{0,10,30} family runs the same \
         workload with content-keyed duplicates injected at 0/10/30 % \
         (seed 0xD0B1) through a 4-shard serial federation with the \
         function-reuse gate off vs exact dedup: scratch_ns = that \
         rate's gate-off run, speedup = ingest-throughput gain from \
         absorbing duplicates, reuse_hit_pct = % of arrivals absorbed, \
         arrivals_per_sec = raw ingest rate. The gateway_stateful_t* \
         family repeats the parallel thread matrix with the stateful \
         least-queued policy routing on BoundedStale{k:4} views with \
         batch-queue stealing (steals_pct = % of arrivals moved between \
         shards, staleness_k = the staleness bound); output is \
         bit-identical across thread counts. The \
         gateway_tenant_{off,quota,ladder} family runs the same workload \
         through the multi-tenant admission layer at 3 SLA lanes \
         (queue_depth = lane count): off = no tenancy (the yardstick — \
         byte-identical to the pre-tenancy gateway), quota = a token \
         bucket on the Standard lane, ladder = weighted-fair admission \
         plus the supervisor-driven overload degradation ladder; \
         per_tenant_robustness_pct = the robustness floor across \
         tenants that submitted (the SLA-isolation signal), shed_pct = \
         front-door drops as a % of submissions. One commit-stamped run \
         appended per invocation.",
    )
    .expect("unreadable bench series — fix or remove it before appending");
    series.append(commit.clone(), entries);
    let gate = series.check_regression_per_scenario(REGRESSION_THRESHOLD);
    let path = series.write_file(&out_dir).expect("write bench series");
    println!("wrote {path} ({} runs, newest {commit})", series.runs.len());

    let mut failed = false;
    if scaling_at_4_shards <= 1.0 {
        eprintln!(
            "scaling gate: 4-shard aggregate throughput is \
             {scaling_at_4_shards:.2}x the 1-shard baseline — the \
             federation must scale >1x"
        );
        failed = true;
    } else {
        println!(
            "scaling gate: 1 -> 4 shards scales aggregate ingest \
             {scaling_at_4_shards:.2}x (>1x required)"
        );
    }
    if thread_gate_skipped {
        eprintln!(
            "warning: thread gate SKIPPED — host has only {hw_threads} \
             hardware thread(s), the >{THREAD_SCALING_GATE}x 1 -> 4-thread \
             gate needs >= 4; measured {scaling_at_4_threads:.2}x \
             (round-robin) and {stateful_scaling_at_4_threads:.2}x \
             (stateful), recorded gate=\"skipped(cores<4)\" in the \
             gateway_parallel_t4 and gateway_stateful_t4 entries \
             (CI enforces the gate on >= 4-thread hosts)"
        );
    } else {
        if scaling_at_4_threads <= THREAD_SCALING_GATE {
            eprintln!(
                "thread gate: 1 -> 4 threads scales the 4-shard parallel \
                 driver {scaling_at_4_threads:.2}x — \
                 >{THREAD_SCALING_GATE}x required on this {hw_threads}-\
                 thread host"
            );
            failed = true;
        } else {
            println!(
                "thread gate: 1 -> 4 threads scales the 4-shard parallel \
                 driver {scaling_at_4_threads:.2}x \
                 (>{THREAD_SCALING_GATE}x required)"
            );
        }
        if stateful_scaling_at_4_threads <= THREAD_SCALING_GATE {
            eprintln!(
                "stateful thread gate: 1 -> 4 threads scales the stateful \
                 (least-queued, BoundedStale{{{STATEFUL_STALENESS_K}}}, \
                 stealing) 4-shard parallel driver \
                 {stateful_scaling_at_4_threads:.2}x — \
                 >{THREAD_SCALING_GATE}x required on this {hw_threads}-\
                 thread host"
            );
            failed = true;
        } else {
            println!(
                "stateful thread gate: 1 -> 4 threads scales the stateful \
                 4-shard parallel driver \
                 {stateful_scaling_at_4_threads:.2}x \
                 (>{THREAD_SCALING_GATE}x required)"
            );
        }
    }
    match gate {
        Ok(per_scenario) => {
            for (scenario, degradation) in per_scenario {
                println!(
                    "perf gate: {scenario} scaling degradation \
                     {degradation:.3}x vs previous run"
                );
            }
        }
        Err(report) => {
            eprintln!("{report}");
            failed = true;
        }
    }
    if failed && check {
        std::process::exit(1);
    }
    if failed {
        eprintln!("(--check not set: recorded but not failing)");
    }
}
