//! Machine-readable federation-throughput trajectory.
//!
//! Measures aggregate ingest throughput (arrivals/second of wall time)
//! of the standard oversubscribed MM + pruning scenario pushed through
//! a [`taskprune_sim::FederatedEngine`] at shard counts {1, 2, 4, 8},
//! round-robin routed. The 1-shard run *is* the plain engine (the
//! federation equivalence suite pins it bit-identical), so the series
//! doubles as the single-cluster ingest baseline.
//!
//! Sharding pays even single-threaded: the batch mapping loop is
//! superlinear in batch-queue depth, so N shards each holding 1/N of
//! the backlog do strictly less work per mapping event than one
//! cluster holding all of it.
//!
//! Entries reuse the [`BenchEntry`] schema so the commit-stamped
//! [`BenchSeries`] machinery (and its machine-relative regression
//! gates) applies unchanged:
//!
//! * `scenario`       — `"gateway_ingest_<shards>"` (one scenario per
//!   shard count, so the per-scenario gate judges each independently
//!   and a one-shard-count regression cannot hide in a geomean);
//! * `queue_depth`    — the **shard count**;
//! * `pet_support`    — the total task count pushed;
//! * `incremental_ns` — ns per arrival at this shard count;
//! * `scratch_ns`     — ns per arrival of the 1-shard yardstick run;
//! * `speedup`        — aggregate throughput scaling vs 1 shard.
//!
//! Flags: `--smoke` (single repeat for CI — the workload itself stays
//! the standard one so the smoke run's (scenario, shard count, task
//! count) triples match the tracked series and the regression
//! comparison is never vacuous), `--out DIR`, `--commit LABEL`,
//! `--check` (exit non-zero on a noise-aware per-scenario regression
//! vs the previous run, **or** when the 4-shard scaling fails to
//! exceed 1× — the federation must never cost throughput).

use std::time::Instant;
use taskprune::prelude::*;
use taskprune::pruner::PruningMechanism;
use taskprune_bench::args::BaselineArgs;
use taskprune_bench::report::{BenchEntry, BenchSeries};

const REGRESSION_THRESHOLD: f64 = 0.15;

/// Shard counts measured, ascending; index 0 is the yardstick.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Wall-clock ns per arrival for one full federated run (build
/// excluded, drain included — the figure a front-end cares about).
fn ns_per_arrival(
    cluster: &Cluster,
    pet: &PetMatrix,
    tasks: &[Task],
    shards: usize,
    repeats: u32,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let engine = GatewayBuilder::new(cluster, pet)
            .config(SimConfig::batch(7))
            .shards(shards)
            .policy(RoundRobinRoute::new())
            .strategy_with(|_| HeuristicKind::Mm.make())
            .pruner_with(|_| {
                Box::new(PruningMechanism::new(
                    PruningConfig::paper_default(),
                    pet.n_task_types(),
                ))
            })
            .build()
            .expect("valid configuration");
        let start = Instant::now();
        let stats = engine.run_stream(tasks.iter().copied());
        let elapsed = start.elapsed().as_nanos() as f64;
        assert_eq!(stats.unreported(), 0);
        // Best-of-N: the standard way to strip scheduler noise from a
        // single-shot wall-clock measurement.
        best = best.min(elapsed / tasks.len() as f64);
    }
    best
}

fn main() {
    let BaselineArgs {
        smoke,
        check,
        out_dir,
        commit,
    } = BaselineArgs::parse();

    let (total_tasks, span_tu) = (10_000, 600.0);
    let repeats = if smoke { 1 } else { 3 };

    let pet = PetGenConfig::paper_heterogeneous(
        taskprune::experiment::PET_MATRIX_SEED,
    )
    .generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let tasks = WorkloadConfig {
        total_tasks,
        span_tu,
        ..WorkloadConfig::paper_default(42)
    }
    .generate_trial(&pet, 0)
    .tasks;

    let mut entries = Vec::new();
    let mut yardstick = f64::NAN;
    let mut scaling_at_4 = f64::NAN;
    for &shards in &SHARD_COUNTS {
        let ns = ns_per_arrival(&cluster, &pet, &tasks, shards, repeats);
        if shards == 1 {
            yardstick = ns;
        }
        let speedup = yardstick / ns;
        if shards == 4 {
            scaling_at_4 = speedup;
        }
        let arrivals_per_sec = 1e9 / ns;
        eprintln!(
            "gateway_ingest shards {shards}: {ns:>9.0} ns/arrival \
             ({arrivals_per_sec:>9.0} arrivals/s), {speedup:.2}x vs 1 shard"
        );
        entries.push(BenchEntry {
            // One scenario per shard count: the per-scenario gate then
            // judges each independently instead of geomeaning a
            // 2-shard regression away against flat 1/4/8 entries.
            scenario: format!("gateway_ingest_{shards}"),
            queue_depth: shards,
            pet_support: total_tasks,
            incremental_ns: ns,
            scratch_ns: yardstick,
            speedup,
        });
    }

    let mut series = BenchSeries::load_or_new(
        &out_dir,
        "gateway_baseline",
        "Per-PR federation ingest-throughput trajectory: the standard \
         oversubscribed MM+pruning workload pushed through a round-robin \
         FederatedEngine at shard counts 1/2/4/8. queue_depth = shard \
         count, pet_support = tasks pushed, incremental_ns = ns per \
         arrival, scratch_ns = the same run's 1-shard yardstick, speedup \
         = aggregate throughput scaling vs 1 shard (machine-relative, so \
         runs from different hosts stay comparable). One commit-stamped \
         run appended per invocation.",
    )
    .expect("unreadable bench series — fix or remove it before appending");
    series.append(commit.clone(), entries);
    let gate = series.check_regression_per_scenario(REGRESSION_THRESHOLD);
    let path = series.write_file(&out_dir).expect("write bench series");
    println!("wrote {path} ({} runs, newest {commit})", series.runs.len());

    let mut failed = false;
    if scaling_at_4 <= 1.0 {
        eprintln!(
            "scaling gate: 4-shard aggregate throughput is {scaling_at_4:.2}x \
             the 1-shard baseline — the federation must scale >1x"
        );
        failed = true;
    } else {
        println!(
            "scaling gate: 1 -> 4 shards scales aggregate ingest \
             {scaling_at_4:.2}x (>1x required)"
        );
    }
    match gate {
        Ok(per_scenario) => {
            for (scenario, degradation) in per_scenario {
                println!(
                    "perf gate: {scenario} scaling degradation \
                     {degradation:.3}x vs previous run"
                );
            }
        }
        Err(report) => {
            eprintln!("{report}");
            failed = true;
        }
    }
    if failed && check {
        std::process::exit(1);
    }
    if failed {
        eprintln!("(--check not set: recorded but not failing)");
    }
}
