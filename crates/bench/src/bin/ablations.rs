//! Runs the ablation sweeps over the reproduction's design choices.
//!
//! Usage: `ablations [queue-capacity|bin-width|fairness|toggle-alpha|
//! threshold|kpb|all] [--trials N] [--scale F]`.

use taskprune_bench::args::CommonArgs;
use taskprune_bench::figures::ablations;
use taskprune_bench::report::FigureReport;
use taskprune_bench::Scale;

fn run_one(name: &str, scale: Scale) -> Option<FigureReport> {
    Some(match name {
        "queue-capacity" => ablations::queue_capacity(scale),
        "bin-width" => ablations::bin_width(scale),
        "fairness" => ablations::fairness_factor(scale),
        "toggle-alpha" => ablations::toggle_alpha(scale),
        "threshold" => ablations::threshold_fine(scale),
        "kpb" => ablations::kpb_fraction(scale),
        _ => return None,
    })
}

const ALL: [&str; 6] = [
    "queue-capacity",
    "bin-width",
    "fairness",
    "toggle-alpha",
    "threshold",
    "kpb",
];

fn main() {
    let args = CommonArgs::parse();
    let which = args
        .positionals
        .first()
        .map(|s| s.as_str())
        .unwrap_or("all");
    let names: Vec<&str> = if which == "all" {
        ALL.to_vec()
    } else {
        vec![which]
    };
    for name in names {
        let Some(report) = run_one(name, args.scale) else {
            eprintln!(
                "unknown ablation '{name}'; expected one of {ALL:?} or 'all'"
            );
            std::process::exit(2);
        };
        report.print();
        report.write_files(&args.out_dir).expect("writing report");
    }
}
