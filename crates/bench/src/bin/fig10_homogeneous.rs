//! Regenerates Fig. 10a/10b: pruning on homogeneous-system heuristics.
//!
//! Usage: `fig10_homogeneous [--pattern constant|spiky] [--trials N]`.

use taskprune_bench::args::CommonArgs;
use taskprune_bench::figures::fig10;

fn main() {
    let args = CommonArgs::parse();
    let patterns: Vec<bool> = match args.pattern.as_deref() {
        Some("constant") => vec![true],
        Some("spiky") => vec![false],
        _ => vec![true, false],
    };
    for constant in patterns {
        let report = fig10::run(args.scale, constant);
        report.print();
        report.write_files(&args.out_dir).expect("writing report");
    }
}
