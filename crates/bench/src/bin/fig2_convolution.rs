//! Regenerates Fig. 2: the worked PET ∗ PCT convolution example.

fn main() {
    taskprune_bench::figures::fig2::print_example();
}
