//! Calibration scratchpad: runs a reduced version of the paper's main
//! comparison to check workload parameters put the system in the right
//! operating regime before the full figure harnesses run.

use taskprune::prelude::*;
use taskprune::{run_experiment, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let total: usize =
        args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1_500);
    let span: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300.0);
    let trials: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("== calibrate: {total} tasks over {span} tu, {trials} trials ==");
    let workload = WorkloadConfig {
        total_tasks: total,
        span_tu: span,
        ..WorkloadConfig::paper_default(42)
    };

    for kind in [HeuristicKind::Mm, HeuristicKind::Msd, HeuristicKind::Mmu] {
        for pruning in [None, Some(PruningConfig::paper_default())] {
            let cfg = ExperimentConfig::new(kind, pruning, workload.clone())
                .trials(trials);
            let t0 = std::time::Instant::now();
            let result = run_experiment(&cfg);
            println!(
                "{}   [{:?}/trial]",
                result.summary_line(),
                t0.elapsed() / trials
            );
        }
    }
}
