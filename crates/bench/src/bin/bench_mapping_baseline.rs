//! Machine-readable mapping-event perf trajectory.
//!
//! Times the queue-estimator mutation cycles a mapping event performs —
//! tail drops, mid-queue drops, and the pop/admit steady-state cycle —
//! under the lazy incremental chain maintenance and under a forced
//! from-scratch rebuild (the pre-incremental cost profile), across
//! queue depths {4, 16, 64} × PET supports {64, 512, 4096}.
//!
//! Each invocation **appends** a commit-stamped run to the series in
//! `results/BENCH_mapping_event.json` (migrating the pre-series
//! single-report format on first contact), so the file accumulates one
//! entry per PR and the perf trajectory is diffable across history.
//!
//! Flags:
//! * `--smoke`        small grid for CI;
//! * `--out DIR`      series directory (default `results`);
//! * `--commit LABEL` stamp for this run (default: `git rev-parse
//!   --short HEAD`, falling back to `unknown`);
//! * `--check`        exit non-zero when any *scenario's* geometric-mean
//!   incremental-vs-scratch speedup degrades past its noise-aware
//!   allowance vs the previous run (the CI regression gate; see
//!   `BenchSeries::check_regression_per_scenario`).

use std::hint::black_box;
use std::time::{Duration, Instant};
use taskprune_bench::args::BaselineArgs;
use taskprune_bench::chainbench::{
    probe_task, wide_pet_matrix, wide_queue, CHAIN_DEPTHS, CHAIN_SUPPORTS,
};
use taskprune_bench::report::{BenchEntry, BenchSeries};
use taskprune_model::{PetMatrix, SimTime};
use taskprune_sim::queue::MachineQueue;

/// The CI regression threshold: mean slowdown beyond this fails `--check`.
const REGRESSION_THRESHOLD: f64 = 0.15;

/// Nanoseconds per call of `f`, doubling the iteration count until the
/// measurement window is long enough to trust.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm caches, grow arenas, build FFT plans
    f();
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(150) || iters >= 1 << 22 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

/// One proactive-drop cycle: remove the waiting task at `pos`, re-admit
/// it, then force the chain current with a chance query (what the next
/// pruning scan does anyway). With `scratch`, a full rebuild follows
/// the removal — what the pre-incremental code did on every removal.
fn drop_cycle(
    q: &mut MachineQueue,
    pet: &PetMatrix,
    pos: usize,
    scratch: bool,
) -> f64 {
    let spec = pet.bin_spec();
    let probe = probe_task(u64::MAX);
    time_ns(|| {
        let id = q.waiting().nth(pos).expect("position in range").id;
        let removed = q.remove_waiting(&[id]);
        if scratch {
            q.force_full_rebuild(pet);
        }
        q.admit(removed[0]);
        black_box(q.chance_if_appended(spec, pet, SimTime(0), &probe));
    })
}

/// The steady-state mapping-event cycle: the head pops for execution
/// and completes, a new arrival is admitted, and the next event queries
/// the chain. With `scratch`, the pop triggers an immediate full
/// rebuild (the pre-incremental behaviour) instead of lazily coalescing
/// with the admit into one repair at the query.
fn steady_cycle(q: &mut MachineQueue, pet: &PetMatrix, scratch: bool) -> f64 {
    let spec = pet.bin_spec();
    let probe = probe_task(u64::MAX);
    let mut next_id = 1_000_000u64;
    time_ns(|| {
        let head = q.pop_head_for_start().expect("non-empty queue");
        if scratch {
            q.force_full_rebuild(pet);
        }
        q.set_running(head, SimTime(0));
        q.complete_running();
        q.admit(probe_task(next_id));
        next_id += 1;
        black_box(q.chance_if_appended(spec, pet, SimTime(0), &probe));
    })
}

fn main() {
    let BaselineArgs {
        smoke,
        check,
        out_dir,
        commit,
    } = BaselineArgs::parse();

    let (depths, supports): (&[usize], &[usize]) = if smoke {
        (&[4, 16], &[64])
    } else {
        (CHAIN_DEPTHS, CHAIN_SUPPORTS)
    };

    let mut entries = Vec::new();
    for &support in supports {
        let pet = wide_pet_matrix(support);
        for &depth in depths {
            let mut record = |scenario: &str, inc: f64, scr: f64| {
                let speedup = scr / inc;
                eprintln!(
                    "{scenario:>12} depth {depth:>3} support {support:>5}: \
                     incremental {inc:>11.0} ns, scratch {scr:>11.0} ns, \
                     speedup {speedup:.2}x"
                );
                entries.push(BenchEntry {
                    scenario: scenario.to_string(),
                    queue_depth: depth,
                    pet_support: support,
                    incremental_ns: inc,
                    scratch_ns: scr,
                    speedup,
                    robustness_pct: None,
                    robustness_under_faults_pct: None,
                    gate: None,
                    reuse_hit_pct: None,
                    arrivals_per_sec: None,
                    steals_pct: None,
                    staleness_k: None,
                    per_tenant_robustness_pct: None,
                    shed_pct: None,
                });
            };

            let inc =
                drop_cycle(&mut wide_queue(depth), &pet, depth - 1, false);
            let scr = drop_cycle(&mut wide_queue(depth), &pet, depth - 1, true);
            record("tail_drop", inc, scr);

            let inc =
                drop_cycle(&mut wide_queue(depth), &pet, depth / 2, false);
            let scr = drop_cycle(&mut wide_queue(depth), &pet, depth / 2, true);
            record("mid_drop", inc, scr);

            let inc = steady_cycle(&mut wide_queue(depth), &pet, false);
            let scr = steady_cycle(&mut wide_queue(depth), &pet, true);
            record("steady_cycle", inc, scr);
        }
    }

    let mut series = BenchSeries::load_or_new(
        &out_dir,
        "mapping_event",
        "Per-PR perf trajectory of the queue-estimator mutation cycles a \
         mapping event performs (remove/admit/pop + chance query): lazy \
         incremental prefix-chain maintenance vs forced from-scratch \
         rebuilds. ns per cycle, release build; one commit-stamped run \
         appended per invocation. The regression gate compares the \
         machine-relative incremental-vs-scratch speedup, not absolute ns.",
    )
    .expect("unreadable bench series — fix or remove it before appending");
    series.append(commit.clone(), entries);
    let gate = series.check_regression_per_scenario(REGRESSION_THRESHOLD);
    let path = series.write_file(&out_dir).expect("write bench series");
    println!("wrote {path} ({} runs, newest {commit})", series.runs.len());
    match gate {
        Ok(per_scenario) => {
            for (scenario, degradation) in &per_scenario {
                println!(
                    "perf gate: {scenario} speedup degradation \
                     {degradation:.3}x vs previous run (base threshold \
                     {:.2}x, noise-widened per scenario)",
                    1.0 + REGRESSION_THRESHOLD
                );
            }
            if per_scenario.is_empty() {
                println!("perf gate: no previous run to compare against");
            }
        }
        Err(report) => {
            eprintln!("{report}");
            if check {
                std::process::exit(1);
            }
            eprintln!("(--check not set: recorded but not failing)");
        }
    }
}
