//! Generates workload trials as JSON files — the equivalent of the
//! trial archive the paper's authors published (git.io/fhSZW).
//!
//! Usage:
//!   genworkload [--tasks N] [--span TU] [--pattern constant|spiky]
//!               [--seed S] [--n-trials K] [--out DIR]

use taskprune::experiment::PET_MATRIX_SEED;
use taskprune::prelude::*;
use taskprune_workload::TrialSet;

struct Opts {
    tasks: usize,
    span: f64,
    pattern: ArrivalPattern,
    seed: u64,
    n_trials: u32,
    out: String,
}

fn parse() -> Opts {
    let mut opts = Opts {
        tasks: 15_000,
        span: 3_000.0,
        pattern: ArrivalPattern::paper_spiky(),
        seed: 1,
        n_trials: 30,
        out: "workloads".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("flag {flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--tasks" => opts.tasks = value().parse().expect("--tasks N"),
            "--span" => opts.span = value().parse().expect("--span TU"),
            "--seed" => opts.seed = value().parse().expect("--seed S"),
            "--n-trials" => {
                opts.n_trials = value().parse().expect("--n-trials K")
            }
            "--out" => opts.out = value(),
            "--pattern" => {
                opts.pattern = match value().as_str() {
                    "constant" => ArrivalPattern::Constant,
                    "spiky" => ArrivalPattern::paper_spiky(),
                    other => {
                        eprintln!("unknown pattern '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    let opts = parse();
    let pet = PetGenConfig::paper_heterogeneous(PET_MATRIX_SEED).generate();
    let workload = WorkloadConfig {
        total_tasks: opts.tasks,
        span_tu: opts.span,
        pattern: opts.pattern,
        seed: opts.seed,
        ..WorkloadConfig::paper_default(opts.seed)
    };
    let set = TrialSet::generate(&workload, &pet, opts.n_trials);
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    for trial in &set.trials {
        let path = std::path::Path::new(&opts.out).join(format!(
            "trial_{}_{}_{}_{:02}.json",
            opts.tasks,
            workload.pattern.label(),
            opts.seed,
            trial.trial_idx
        ));
        trial.save_json(&path).expect("write trial");
        println!("{} ({} tasks)", path.display(), trial.len());
    }
}
