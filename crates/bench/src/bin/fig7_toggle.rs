//! Regenerates Fig. 7a/7b: Toggle impact on immediate- and batch-mode
//! heuristics.
//!
//! Usage: `fig7_toggle [--mode immediate|batch] [--trials N] [--scale F]`
//! (no mode = both subfigures).

use taskprune_bench::args::CommonArgs;
use taskprune_bench::figures::fig7;

fn main() {
    let args = CommonArgs::parse();
    let modes: Vec<bool> = match args.positionals.first().map(|s| s.as_str()) {
        Some("immediate") => vec![true],
        Some("batch") => vec![false],
        _ => vec![true, false],
    };
    for immediate in modes {
        let report = fig7::run(args.scale, immediate);
        report.print();
        report.write_files(&args.out_dir).expect("writing report");
    }
}
