//! Runs one simulation over a saved workload trial and prints the full
//! outcome breakdown — the inspection tool for saved `genworkload`
//! trials.
//!
//! Usage:
//!   runsim <trial.json> [--heuristic NAME] [--prune] [--threshold F]
//!          [--capacity N] [--seed S] [--trace FILE]
//!
//! With `--trace`, the full execution trace (task lifecycle events +
//! queue-occupancy snapshots) is written to FILE as JSON.

use taskprune::experiment::PET_MATRIX_SEED;
use taskprune::prelude::*;
use taskprune_workload::WorkloadTrial;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!(
            "usage: runsim <trial.json> [--heuristic NAME] [--prune] \
             [--threshold F] [--capacity N] [--seed S]"
        );
        std::process::exit(2);
    };
    let mut heuristic = HeuristicKind::Mm;
    let mut prune = false;
    let mut threshold = 0.5f64;
    let mut capacity = 4usize;
    let mut seed = 0u64;
    let mut trace_path: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--prune" => prune = true,
            "--heuristic" => {
                let name = args.next().expect("--heuristic NAME");
                heuristic =
                    HeuristicKind::from_name(&name).unwrap_or_else(|| {
                        eprintln!("unknown heuristic '{name}'");
                        std::process::exit(2);
                    });
            }
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold F");
            }
            "--capacity" => {
                capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--capacity N");
            }
            "--seed" => {
                seed =
                    args.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--trace" => {
                trace_path = Some(args.next().expect("--trace FILE"));
            }
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    let trial = WorkloadTrial::load_json(std::path::Path::new(&path))
        .expect("readable trial JSON");
    let pet = PetGenConfig::paper_heterogeneous(PET_MATRIX_SEED).generate();
    let cluster = taskprune_workload::machines::heterogeneous_cluster();
    let mut sim = if heuristic.is_immediate() {
        SimConfig::immediate(seed)
    } else {
        SimConfig::batch(seed)
    };
    sim.queue_capacity = capacity;

    let pruning = prune.then(|| {
        let base = PruningConfig::paper_default().with_threshold(threshold);
        if heuristic.is_immediate() {
            PruningConfig {
                defer_enabled: false,
                ..base
            }
        } else {
            base
        }
    });
    let mut alloc = ResourceAllocator::new(&cluster, &pet, sim)
        .heuristic(heuristic)
        .pruning_opt(pruning);
    if trace_path.is_some() {
        alloc = alloc.traced();
    }
    let stats = alloc.run(&trial.tasks);
    if let Some(path) = &trace_path {
        let trace = stats.trace.as_ref().expect("tracing was enabled");
        let json = serde_json::to_string(trace).expect("serialisable");
        std::fs::write(path, json).expect("writable trace path");
        println!(
            "trace: {} events, {} snapshots -> {path}",
            trace.len(),
            trace.snapshots().len()
        );
    }

    println!(
        "trial: {} tasks, pattern {}, trial #{}",
        trial.len(),
        trial.config.pattern.label(),
        trial.trial_idx
    );
    println!(
        "run: {} {} (queue capacity {capacity}, sim seed {seed})\n",
        heuristic.name(),
        if prune {
            format!("+ pruning @ {:.0}%", threshold * 100.0)
        } else {
            "bare".to_string()
        },
    );
    println!(
        "robustness (paper trim):  {:>6.2} %",
        stats.paper_robustness_pct()
    );
    println!(
        "robustness (no trim):     {:>6.2} %",
        stats.robustness_pct(0)
    );
    for (label, outcome) in [
        ("completed on time", TaskOutcome::CompletedOnTime),
        ("completed late", TaskOutcome::CompletedLate),
        ("dropped (deadline)", TaskOutcome::DroppedReactive),
        ("dropped (pruned)", TaskOutcome::DroppedProactive),
        ("cancelled mid-run", TaskOutcome::CancelledRunning),
        ("rejected at arrival", TaskOutcome::Rejected),
        ("unfinished", TaskOutcome::Unfinished),
    ] {
        println!("{label:<24} {:>8}", stats.count(outcome));
    }
    println!(
        "\nmapping events {:>10}\ndeferrals      {:>10}\nwasted compute {:>9.1} %",
        stats.mapping_events,
        stats.deferrals,
        100.0 * stats.wasted_fraction()
    );
}
