//! Regenerates Fig. 9a/9b: pruning on batch heuristics across
//! oversubscription levels.
//!
//! Usage: `fig9_batch [--pattern constant|spiky] [--trials N] [--scale F]`
//! (no pattern = both subfigures).

use taskprune_bench::args::CommonArgs;
use taskprune_bench::figures::fig9;

fn main() {
    let args = CommonArgs::parse();
    let patterns: Vec<bool> = match args.pattern.as_deref() {
        Some("constant") => vec![true],
        Some("spiky") => vec![false],
        _ => vec![true, false],
    };
    for constant in patterns {
        let report = fig9::run(args.scale, constant);
        report.print();
        report.write_files(&args.out_dir).expect("writing report");
    }
}
