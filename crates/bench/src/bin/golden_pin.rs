//! Prints the values the golden regression tests pin (tests/golden.rs).
//! Run after any *intentional* behaviour change and update the constants.

use taskprune::prelude::*;
use taskprune::ClusterKind;

fn main() {
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    let pet = petgen.generate();
    let trial = WorkloadConfig {
        total_tasks: 800,
        span_tu: 150.0,
        ..WorkloadConfig::paper_default(0x601D)
    }
    .generate_trial(&pet, 0);
    println!("trial len = {}", trial.len());
    let t0 = &trial.tasks[0];
    let t_mid = &trial.tasks[400];
    println!(
        "t0 = ({}, {}, {})   t400 = ({}, {}, {})",
        t0.arrival.ticks(),
        t0.deadline.ticks(),
        t0.type_id.0,
        t_mid.arrival.ticks(),
        t_mid.deadline.ticks(),
        t_mid.type_id.0,
    );
    let bare = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(9))
        .heuristic(HeuristicKind::Mm)
        .run(&trial.tasks);
    println!(
        "bare: on_time={} late={} reactive={}",
        bare.count(TaskOutcome::CompletedOnTime),
        bare.count(TaskOutcome::CompletedLate),
        bare.count(TaskOutcome::DroppedReactive),
    );
    let pruned = ResourceAllocator::new(&cluster, &pet, SimConfig::batch(9))
        .heuristic(HeuristicKind::Mm)
        .pruning(PruningConfig::paper_default())
        .run(&trial.tasks);
    println!(
        "pruned: on_time={} proactive={} deferrals={}",
        pruned.count(TaskOutcome::CompletedOnTime),
        pruned.count(TaskOutcome::DroppedProactive),
        pruned.deferrals,
    );
}
