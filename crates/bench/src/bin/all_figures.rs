//! Regenerates every figure of the paper in one run, writing
//! Markdown + CSV reports into `results/`.
//!
//! Usage: `all_figures [--trials N] [--scale F] [--smoke]`
//! (paper scale: 30 trials, full spans — takes tens of minutes).

use taskprune_bench::args::CommonArgs;
use taskprune_bench::figures::{fig10, fig2, fig6, fig7, fig8, fig9};

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();

    println!("=== Fig. 2 ===");
    fig2::print_example();
    println!("\n=== Fig. 6 ===");
    fig6::run(args.scale, &args.out_dir).expect("fig6");

    for (name, report) in [
        ("Fig. 7a", fig7::run(args.scale, true)),
        ("Fig. 7b", fig7::run(args.scale, false)),
        ("Fig. 8", fig8::run(args.scale)),
        ("Fig. 9a", fig9::run(args.scale, true)),
        ("Fig. 9b", fig9::run(args.scale, false)),
        ("Fig. 10a", fig10::run(args.scale, true)),
        ("Fig. 10b", fig10::run(args.scale, false)),
    ] {
        println!("\n=== {name} ===");
        report.print();
        report.write_files(&args.out_dir).expect("writing report");
    }

    println!(
        "\nall figures regenerated in {:.1?}; reports in {}/",
        t0.elapsed(),
        args.out_dir
    );
}
