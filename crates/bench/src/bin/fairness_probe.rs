//! Probe: how the fairness factor redistributes proactive drops across
//! task types (calibration aid for the fairness tests/ablation).

use taskprune::prelude::*;
use taskprune::ClusterKind;

fn main() {
    let (cluster, petgen) = ClusterKind::Heterogeneous.materialise();
    let pet = petgen.generate();
    let trial = WorkloadConfig {
        total_tasks: 2_500,
        span_tu: 300.0,
        ..WorkloadConfig::paper_default(11)
    }
    .generate_trial(&pet, 0);
    for factor in [0.0, 0.01, 0.05, 0.1, 0.2, 0.5] {
        let mut pruning =
            PruningConfig::paper_default().with_toggle(ToggleMode::Always);
        pruning.fairness = if factor == 0.0 {
            FairnessConfig::disabled()
        } else {
            FairnessConfig {
                factor,
                ..FairnessConfig::paper_default(0.5)
            }
        };
        let stats =
            ResourceAllocator::new(&cluster, &pet, SimConfig::batch(21))
                .heuristic(HeuristicKind::Mm)
                .pruning(pruning)
                .run(&trial.tasks);
        let drop_fracs: Vec<f64> = stats
            .per_type()
            .iter()
            .filter(|t| t.arrived > 0)
            .map(|t| t.dropped_proactive as f64 / t.arrived as f64)
            .collect();
        let max_drop = drop_fracs.iter().cloned().fold(0.0, f64::max);
        let mean_drop =
            drop_fracs.iter().sum::<f64>() / drop_fracs.len() as f64;
        println!(
            "c={factor:<5} robustness {:>5.1}%  on-time-var {:.5}  drop-frac mean {:.3} max {:.3} (max/mean {:.2})",
            stats.robustness_pct(100),
            stats.per_type_on_time_variance(),
            mean_drop,
            max_drop,
            max_drop / mean_drop.max(1e-9),
        );
    }
}
