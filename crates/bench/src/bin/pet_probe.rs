//! Prints summary statistics of the generated PET matrix — the numbers
//! workload calibration is based on (see DESIGN.md §3).

use taskprune::experiment::PET_MATRIX_SEED;
use taskprune_model::{MachineTypeId, TaskTypeId, TICKS_PER_TIME_UNIT};
use taskprune_workload::PetGenConfig;

fn main() {
    let pet = PetGenConfig::paper_heterogeneous(PET_MATRIX_SEED).generate();
    let tu = TICKS_PER_TIME_UNIT as f64;
    println!(
        "PET matrix {}x{}",
        pet.n_machine_types(),
        pet.n_task_types()
    );
    let mut best_sum = 0.0;
    let mut worst_sum = 0.0;
    for t in 0..pet.n_task_types() {
        let tt = TaskTypeId(t as u16);
        let execs: Vec<f64> = (0..pet.n_machine_types())
            .map(|m| pet.expected_ticks(MachineTypeId(m as u16), tt) / tu)
            .collect();
        let best = execs.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = execs.iter().cloned().fold(0.0, f64::max);
        let mean = execs.iter().sum::<f64>() / execs.len() as f64;
        best_sum += best;
        worst_sum += worst;
        println!(
            "type {t:>2}: best {best:>6.2} tu  mean {mean:>6.2} tu  worst {worst:>6.2} tu  (spread {:>4.1}x)",
            worst / best
        );
    }
    let n = pet.n_task_types() as f64;
    println!(
        "\noverall: mean-of-best {:.2} tu, matrix mean {:.2} tu, mean-of-worst {:.2} tu",
        best_sum / n,
        pet.mean_expected_ticks_overall() / tu,
        worst_sum / n
    );
    println!(
        "capacity hint: 8 machines / (5 tasks per tu) => break-even best-exec ~1.6 tu at 15K"
    );
}
