//! Benchmark harness: regenerates every figure of the paper's
//! evaluation (§V), plus ablation studies over the design choices the
//! reproduction had to make.
//!
//! Each `figures::*` function computes the data series behind one paper
//! figure and returns printable rows; the `src/bin/fig*` binaries wrap
//! them with CLI scaling knobs and CSV/Markdown output into `results/`.

pub mod args;
pub mod chainbench;
pub mod figures;
pub mod report;
pub mod scale;

pub use scale::Scale;
