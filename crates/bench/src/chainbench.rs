//! Shared fixtures for the prefix-chain micro-benchmarks: synthetic
//! wide-support PET matrices and steady-state queues at the depth ×
//! support grid the perf baseline tracks.

use taskprune_model::{
    BinSpec, Cluster, MachineId, PetMatrix, SimTime, Task, TaskTypeId,
};
use taskprune_prob::Pmf;
use taskprune_sim::queue::MachineQueue;

/// Queue depths the chain benches sweep.
pub const CHAIN_DEPTHS: &[usize] = &[4, 16, 64];

/// PET support lengths (bins) the chain benches sweep.
pub const CHAIN_SUPPORTS: &[usize] = &[64, 512, 4096];

/// Chain truncation horizon used by the benches: long enough that small
/// supports never truncate, short enough to bound the memory of the
/// depth-64 × support-4096 cell.
pub const CHAIN_HORIZON: u64 = 8_192;

/// A 1×1 PET matrix whose single entry is uniform over
/// `[1, support]` bins.
pub fn wide_pet_matrix(support: usize) -> PetMatrix {
    let points: Vec<(u64, f64)> = (1..=support as u64)
        .map(|b| (b, 1.0 / support as f64))
        .collect();
    PetMatrix::new(
        BinSpec::new(100),
        1,
        1,
        vec![Pmf::from_points(&points).expect("uniform support")],
    )
}

/// A far-future-deadline task of the matrix's single type.
pub fn probe_task(id: u64) -> Task {
    Task::new(id, TaskTypeId(0), SimTime(0), SimTime(u64::MAX / 4))
}

/// A queue pre-filled with `depth` waiting tasks (ids `0..depth`), with
/// one spare slot so mutation cycles can re-admit what they remove. The
/// chain is built lazily at the first estimate query.
pub fn wide_queue(depth: usize) -> MachineQueue {
    let cluster = Cluster::one_per_type(1);
    let mut q = MachineQueue::new(
        cluster.machine(MachineId(0)),
        depth + 1,
        CHAIN_HORIZON,
    );
    for i in 0..depth {
        q.admit(probe_task(i as u64));
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_consistent_queues() {
        let pet = wide_pet_matrix(64);
        let q = wide_queue(4);
        assert_eq!(q.waiting_len(), 4);
        assert_eq!(q.free_slots(), 1);
        let (pmfs, _) = q.chain_snapshot(&pet);
        assert_eq!(pmfs.len(), 5);
        // Four uniform-64 PETs convolved: support ends at 4 × 64.
        assert_eq!(pmfs[4].max_bin(), 256);
    }
}
