//! Experiment scaling: run the paper's exact protocol or a cheaper
//! smoke-test version of it.

use taskprune::prelude::*;

/// Scales an experiment family down from the paper's full protocol
/// while preserving the operating regime (task density is kept constant
/// by shrinking the span together with the task count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Multiplier on task count and span (1.0 = the paper's 3 000 time
    /// units).
    pub size_factor: f64,
    /// Number of trials per experiment (30 in the paper).
    pub trials: u32,
}

impl Scale {
    /// The paper's full protocol: 30 trials at full span.
    pub fn full() -> Self {
        Self {
            size_factor: 1.0,
            trials: 30,
        }
    }

    /// A fast smoke scale for CI and `cargo bench` runs: one tenth the
    /// span, 3 trials. The regime (tasks per time unit) is identical.
    pub fn smoke() -> Self {
        Self {
            size_factor: 0.1,
            trials: 3,
        }
    }

    /// Applies the scale to a workload family.
    pub fn workload(&self, total_tasks: usize, seed: u64) -> WorkloadConfig {
        let base = WorkloadConfig::paper_default(seed);
        WorkloadConfig {
            total_tasks: ((total_tasks as f64) * self.size_factor).round()
                as usize,
            span_tu: base.span_tu * self.size_factor,
            ..base
        }
    }

    /// The robustness-window trim must shrink with tiny workloads or the
    /// window would be empty; the paper's 100-task trim applies at full
    /// scale automatically because `SimStats::robustness_pct` is driven
    /// by the experiment runner.
    pub fn label(&self) -> String {
        if (self.size_factor - 1.0).abs() < 1e-9 && self.trials == 30 {
            "paper-scale".to_string()
        } else {
            format!("scale×{:.2}/{} trials", self.size_factor, self.trials)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper() {
        let s = Scale::full();
        let w = s.workload(15_000, 1);
        assert_eq!(w.total_tasks, 15_000);
        assert_eq!(w.span_tu, 3_000.0);
        assert_eq!(s.label(), "paper-scale");
    }

    #[test]
    fn smoke_scale_preserves_density() {
        let s = Scale::smoke();
        let w = s.workload(15_000, 1);
        assert_eq!(w.total_tasks, 1_500);
        assert_eq!(w.span_tu, 300.0);
        // Density (tasks per time unit) unchanged.
        let full = Scale::full().workload(15_000, 1);
        let d_full = full.total_tasks as f64 / full.span_tu;
        let d_smoke = w.total_tasks as f64 / w.span_tu;
        assert!((d_full - d_smoke).abs() < 1e-9);
    }
}
