//! Routing policies: which shard of a federation receives an arrival.
//!
//! A [`crate::Gateway`] multiplexes one live arrival stream across N
//! independent [`crate::SchedulerCore`] shards. The choice of shard is
//! the federation's one new degree of freedom, so it is a plug-in — a
//! [`RoutePolicy`] sees a read-only [`ShardView`] of every shard and
//! names the recipient. Two stateless baselines ship here
//! ([`RoundRobinRoute`], [`LeastQueuedRoute`]); the probability-aware
//! policy, which reuses the Eq. 1 prefix chains through the estimate
//! probes, lives with the other estimate-driven logic in
//! `taskprune_heuristics::probe`.
//!
//! Policies only see arrivals that reach routing: a task the
//! function-reuse gate absorbs onto an in-flight primary
//! ([`crate::ReusePolicy`]) piggybacks on the primary's shard and
//! **never advances the policy's cursor** — a round-robin federation
//! with reuse enabled rotates once per *executed* task, not once per
//! submitted one.

use crate::view::SystemView;
use taskprune_model::Task;

/// How fresh the shard views handed to a stateful [`RoutePolicy`] must
/// be — the knob that trades routing accuracy for barrier-free
/// parallelism (set via [`crate::GatewayBuilder::consistency`]).
///
/// Under [`Consistency::Lockstep`] every stateful routing decision
/// reads live shard state, which forces the parallel driver into one
/// global barrier per arrival. Under
/// [`Consistency::BoundedStale`]`{k}` the gateway instead routes on a
/// cached, epoch-stamped view table refreshed every `k + 1` arrivals
/// (at arrival ordinals divisible by `k + 1`, counting every admitted
/// task including reuse absorptions), so views are at most `k`
/// arrivals stale. The refresh schedule is pinned to the same
/// (arrival-ordinal, shard-op-count) coordinate system
/// [`crate::FaultPlan`] uses, so serial and parallel drivers observe
/// byte-identical stale views and produce byte-identical runs — the
/// relaxed equivalence contract in `tests/relaxed_equivalence.rs`.
///
/// `BoundedStale { k: 0 }` refreshes before every arrival and is
/// bit-for-bit identical to `Lockstep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Stateful policies route on live shard state; the parallel
    /// driver synchronises every arrival (the PR 5 behaviour).
    #[default]
    Lockstep,
    /// Stateful policies route on views at most `k` arrivals stale;
    /// the parallel driver only synchronises at view-refresh ordinals.
    BoundedStale {
        /// Maximum staleness, in arrivals, of the view table.
        k: u64,
    },
}

impl Consistency {
    /// The view-refresh period in arrivals: the table is rebuilt at
    /// every arrival ordinal divisible by this. `Lockstep` behaves as
    /// period 1 (always fresh).
    pub fn refresh_period(self) -> u64 {
        match self {
            Consistency::Lockstep => 1,
            Consistency::BoundedStale { k } => k.saturating_add(1),
        }
    }

    /// The staleness bound `k` (0 under `Lockstep`).
    pub fn staleness(self) -> u64 {
        match self {
            Consistency::Lockstep => 0,
            Consistency::BoundedStale { k } => k,
        }
    }
}

/// A read-only snapshot of one shard, handed to routing policies.
///
/// Wraps the shard's [`SystemView`] (machine queues, PET matrix, chance
/// probes) plus the gateway-level state a view cannot see: the shard
/// index and the batch-queue backlog.
pub struct ShardView<'v> {
    index: usize,
    view: SystemView<'v>,
    pending_batch: usize,
    age: u64,
}

impl<'v> ShardView<'v> {
    /// Builds a live (age 0) shard view (gateway-internal; public for
    /// policy tests).
    pub fn new(
        index: usize,
        view: SystemView<'v>,
        pending_batch: usize,
    ) -> Self {
        Self::with_age(index, view, pending_batch, 0)
    }

    /// Builds a shard view carrying an explicit staleness age — the
    /// number of admitted arrivals since this entry was published to
    /// the bounded-staleness view table. Live (Lockstep) views and a
    /// table refreshed this very arrival have age 0.
    pub fn with_age(
        index: usize,
        view: SystemView<'v>,
        pending_batch: usize,
        age: u64,
    ) -> Self {
        Self {
            index,
            view,
            pending_batch,
            age,
        }
    }

    /// This shard's index within the federation.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Admitted arrivals since this view entry was published (0 for
    /// live views). Staleness-aware policies discount chance estimates
    /// by this — a deep-looking backlog in an old entry may already be
    /// drained, and an empty-looking shard may already be flooded.
    pub fn age(&self) -> u64 {
        self.age
    }

    /// The shard's system view — machine queues, free slots, and the
    /// Eq. 2 chance probes.
    pub fn view(&self) -> &SystemView<'v> {
        &self.view
    }

    /// Tasks waiting in the shard's batch queue.
    pub fn pending_batch_len(&self) -> usize {
        self.pending_batch
    }

    /// Total tasks currently inside the shard: batch queue + machine
    /// queues + running tasks. The load figure `LeastQueuedRoute`
    /// balances on.
    pub fn tasks_in_system(&self) -> usize {
        let queued: usize = (0..self.view.n_machines())
            .map(|i| {
                let m = taskprune_model::MachineId(i as u16);
                self.view.waiting_len(m) + usize::from(self.view.is_busy(m))
            })
            .sum();
        self.pending_batch + queued
    }
}

/// Chooses the shard that receives each arriving task.
///
/// Policies may keep state (round-robin cursors, EWMA load estimates);
/// the gateway calls [`RoutePolicy::route`] exactly once per arrival,
/// in arrival order, so any internal state advances deterministically.
/// The returned index must be `< shards.len()`.
pub trait RoutePolicy {
    /// Display name, for reports and debugging.
    fn name(&self) -> &str;

    /// Picks the destination shard for `task`.
    fn route(&mut self, shards: &[ShardView<'_>], task: &Task) -> usize;

    /// Whether this policy routes **without reading shard state**: its
    /// decision may depend only on the shard *count*, the task, and
    /// the policy's own internal state (a round-robin cursor, a hash).
    ///
    /// Declaring `true` is a contract: [`RoutePolicy::route_stateless`]
    /// must be implemented and must pick exactly the shard
    /// [`RoutePolicy::route`] would pick. In exchange the gateway skips
    /// materialising shard views, and the parallel federated driver
    /// routes the whole arrival stream up front so every shard runs
    /// its event loop with **zero cross-shard barriers**.
    fn is_stateless(&self) -> bool {
        false
    }

    /// [`RoutePolicy::route`] without the views, for policies that
    /// declare [`RoutePolicy::is_stateless`]. Only called when
    /// `is_stateless()` is `true`.
    fn route_stateless(&mut self, n_shards: usize, task: &Task) -> usize {
        let _ = (n_shards, task);
        unimplemented!(
            "route_stateless is required when is_stateless() returns true"
        )
    }

    /// Captures the policy's internal state (cursors, load estimates)
    /// for a federation snapshot. Stateless-in-memory policies keep
    /// the default ([`serde::Value::Null`]); policies with memory must
    /// override this *and* [`RoutePolicy::restore_state`] so a
    /// restored gateway keeps routing identically.
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores state captured by [`RoutePolicy::snapshot_state`].
    /// The default accepts only `Null` (the stateless capture).
    ///
    /// # Errors
    /// When `state` is not what this implementation's
    /// `snapshot_state` produces.
    fn restore_state(
        &mut self,
        state: &serde::Value,
    ) -> Result<(), serde::Error> {
        match state {
            serde::Value::Null => Ok(()),
            other => {
                Err(serde::Error::unexpected("null (stateless policy)", other))
            }
        }
    }
}

/// Cycles through the shards in index order, ignoring state entirely —
/// the baseline every other policy has to beat.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinRoute {
    next: usize,
}

impl RoundRobinRoute {
    /// Starts the cycle at shard 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoutePolicy for RoundRobinRoute {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn route(&mut self, shards: &[ShardView<'_>], task: &Task) -> usize {
        self.route_stateless(shards.len(), task)
    }

    fn is_stateless(&self) -> bool {
        true
    }

    fn route_stateless(&mut self, n_shards: usize, _task: &Task) -> usize {
        let shard = self.next % n_shards;
        self.next = self.next.wrapping_add(1);
        shard
    }

    fn snapshot_state(&self) -> serde::Value {
        serde::Value::UInt(self.next as u64)
    }

    fn restore_state(
        &mut self,
        state: &serde::Value,
    ) -> Result<(), serde::Error> {
        self.next = serde::Deserialize::from_value(state)?;
        Ok(())
    }
}

/// Routes each arrival to the shard holding the fewest tasks (batch
/// queue + machine queues + running), ties broken by lowest index —
/// join-the-shortest-queue at federation granularity.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastQueuedRoute;

impl LeastQueuedRoute {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl RoutePolicy for LeastQueuedRoute {
    fn name(&self) -> &str {
        "least-queued"
    }

    fn route(&mut self, shards: &[ShardView<'_>], _task: &Task) -> usize {
        shards
            .iter()
            .min_by_key(|s| (s.tasks_in_system(), s.index()))
            .map(|s| s.index())
            .expect("gateway guarantees at least one shard")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::MachineQueue;
    use taskprune_model::{BinSpec, Cluster, PetMatrix, SimTime, TaskTypeId};
    use taskprune_prob::Pmf;

    fn pet() -> PetMatrix {
        PetMatrix::new(BinSpec::new(100), 1, 1, vec![Pmf::point_mass(2)])
    }

    fn queues(n_tasks: usize, pet: &PetMatrix) -> Vec<MachineQueue> {
        let cluster = Cluster::one_per_type(1);
        let mut qs: Vec<MachineQueue> = cluster
            .machines()
            .iter()
            .map(|&m| MachineQueue::new(m, 8, 256))
            .collect();
        for i in 0..n_tasks {
            qs[0].admit(Task::new(
                i as u64,
                TaskTypeId(0),
                SimTime(0),
                SimTime(100_000),
            ));
        }
        let _ = pet;
        qs
    }

    fn probe() -> Task {
        Task::new(99, TaskTypeId(0), SimTime(0), SimTime(100_000))
    }

    #[test]
    fn round_robin_cycles_in_index_order() {
        let pet = pet();
        let q0 = queues(0, &pet);
        let q1 = queues(0, &pet);
        let views = vec![
            ShardView::new(0, SystemView::new(SimTime(0), &q0, &pet), 0),
            ShardView::new(1, SystemView::new(SimTime(0), &q1, &pet), 0),
        ];
        let mut rr = RoundRobinRoute::new();
        let picks: Vec<usize> =
            (0..5).map(|_| rr.route(&views, &probe())).collect();
        assert_eq!(picks, vec![0, 1, 0, 1, 0]);
        assert_eq!(rr.name(), "round-robin");
    }

    #[test]
    fn least_queued_prefers_the_emptier_shard() {
        let pet = pet();
        let busy = queues(3, &pet);
        let idle = queues(0, &pet);
        let views = vec![
            ShardView::new(0, SystemView::new(SimTime(0), &busy, &pet), 2),
            ShardView::new(1, SystemView::new(SimTime(0), &idle, &pet), 0),
        ];
        assert_eq!(views[0].tasks_in_system(), 5);
        assert_eq!(views[0].pending_batch_len(), 2);
        assert_eq!(views[1].tasks_in_system(), 0);
        let mut lq = LeastQueuedRoute::new();
        assert_eq!(lq.route(&views, &probe()), 1);
        assert_eq!(lq.name(), "least-queued");
    }

    #[test]
    fn least_queued_ties_break_to_the_lowest_index() {
        let pet = pet();
        let a = queues(1, &pet);
        let b = queues(1, &pet);
        let views = vec![
            ShardView::new(0, SystemView::new(SimTime(0), &a, &pet), 0),
            ShardView::new(1, SystemView::new(SimTime(0), &b, &pet), 0),
        ];
        assert_eq!(LeastQueuedRoute::new().route(&views, &probe()), 0);
    }
}
