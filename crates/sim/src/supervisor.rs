//! The self-healing supervisor: auto-checkpoints, fault detection,
//! bounded retries, and graceful degradation for federated runs.
//!
//! A [`Supervisor`] wraps a [`FederatedEngine`] (and a
//! [`ParallelSupervisor`] its parallel sibling) and pumps its event
//! loop in watermark-sized slices. At every watermark it takes
//! per-shard checkpoints and runs health checks (journal-gap,
//! watermark-lag); when an injected fault surfaces it applies a typed
//! [`RecoveryPolicy`]: bounded retries with deterministic sim-time
//! backoff, checkpoint + journal replay for crashes, and — once a
//! shard's budget is exhausted — quarantine with load shedding: the
//! shard's still-unmapped backlog re-routes to healthy shards, whose
//! pruning thresholds tighten to absorb it.
//!
//! Two invariants make the supervisor testable to the bit:
//!
//! * **Recovery is exact.** A healed fault leaves zero trace in the
//!   simulation state: retry backoff is bookkeeping (logged, never
//!   simulated — the sim clock is the workload's, not the
//!   supervisor's), checkpoints capture state without perturbing it,
//!   and replay mirrors the fault-free delivery order exactly. With a
//!   retry budget covering every injected fault, a supervised run's
//!   serialized [`FederationStats`] is bit-identical to the fault-free
//!   run's — `tests/self_healing.rs` pins this for both drivers.
//! * **Every action is logged.** The [`RecoveryLog`] records each
//!   checkpoint, detection, retry, replay and quarantine with its
//!   sim-time instant, deterministically: two runs of the same
//!   `(seed, plan)` produce identical logs.
//!
//! Function-reuse absorption composes with both invariants: a
//! piggybacked arrival counts against the same per-shard
//! *arrival-ordinal* fault coordinates as a routed one (so one
//! [`FaultPlan`] means the same thing whether a gate absorbs
//! duplicates or not), and each absorption is journaled as
//! [`crate::JournalOp::Piggyback`] before delivery, so checkpoint +
//! journal replay reproduces a merging shard bit-identically —
//! `tests/reuse_equivalence.rs` pins a full-budget storm over a
//! merging run against its fault-free twin.
//!
//! Batch-queue stealing composes the same way. Steals are a
//! synchronous coordinator-side action at sync ordinals (never a
//! lane-local race), quarantined shards are skipped as both thief and
//! victim, and each transfer is journaled as
//! [`crate::JournalOp::Steal`]/[`crate::JournalOp::Adopt`] before any
//! stolen work executes — so checkpoint + journal replay reproduces a
//! stealing shard exactly, and fault coordinates
//! (nth-completion-on-shard) are stealing-invariant. Tasks stolen
//! *into* a shard that later exhausts its budget are salvaged by the
//! same quarantine backlog drain as native ones;
//! `tests/steal_faults.rs` pins both the full-budget bit-identical
//! heal and the zero-loss quarantine path.

use crate::config::RunError;
use crate::fault::{FaultKind, FaultPlan};
use crate::gateway::{DriveSignal, FederatedEngine, FederationStats};
use crate::parallel::ParallelFederatedEngine;
use crate::sink::{NullSink, Sink};
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::iter::Peekable;
use taskprune_model::{SimTime, Task};

/// How a [`Supervisor`] reacts to faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Recovery attempts each shard may consume across the whole run
    /// (redeliveries, crash restores, checkpoint retries). Once a
    /// shard exhausts its budget, the next unrecoverable fault
    /// quarantines it.
    pub retry_budget: u32,
    /// Base of the exponential retry backoff, in sim-time ticks. The
    /// backoff for attempt *k* is `base · 2^(k−1)`. **Bookkeeping
    /// only**: it is recorded in the [`RecoveryLog`] and drives the
    /// give-up decision, but never advances the simulation clock —
    /// recovery must happen at the fault instant to keep the
    /// truth-RNG streams aligned with the fault-free run.
    pub backoff_base: u64,
    /// Auto-checkpoint every this many ingested arrivals (the
    /// [`FederatedEngine::run_until`] watermark coordinate). Also the
    /// cadence of the journal-gap and watermark-lag health checks.
    pub checkpoint_interval: u64,
    /// Factor applied to healthy shards' pruning thresholds when a
    /// quarantined shard's backlog is re-routed onto them (> 1 prunes
    /// more aggressively — the paper's own mechanism doubling as the
    /// degraded-mode load shed).
    pub quarantine_shed_factor: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            retry_budget: 3,
            backoff_base: 64,
            checkpoint_interval: 64,
            quarantine_shed_factor: 1.5,
        }
    }
}

impl RecoveryPolicy {
    /// The degraded-path policy: no retries at all, so the first
    /// unrecoverable fault on a shard quarantines it immediately.
    pub fn no_retries() -> Self {
        Self {
            retry_budget: 0,
            ..Self::default()
        }
    }
}

/// What one supervisor action did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryActionKind {
    /// An auto-checkpoint of the shard was captured at the given
    /// arrival watermark.
    CheckpointTaken {
        /// Total arrivals ingested when the checkpoint was taken.
        watermark: u64,
    },
    /// A checkpoint attempt failed transiently (injected
    /// [`FaultKind::CheckpointFailure`]).
    CheckpointFailed {
        /// 1-based attempt number at this watermark.
        attempt: u32,
    },
    /// An injected fault was detected.
    FaultDetected {
        /// What kind of fault fired.
        fault: FaultKind,
    },
    /// A retry was scheduled with deterministic exponential backoff
    /// (bookkeeping only — see [`RecoveryPolicy::backoff_base`]).
    RetryScheduled {
        /// 1-based attempt number for this fault.
        attempt: u32,
        /// The backoff recorded for this attempt, in ticks.
        backoff: u64,
        /// The sim-time instant the backoff nominally expires at.
        at: SimTime,
    },
    /// A lost/delayed completion was redelivered from its journal
    /// record.
    Redelivered,
    /// A duplicated completion delivery was suppressed by the
    /// staleness dedupe (no state was perturbed).
    DuplicateSuppressed,
    /// A crashed shard was rebuilt from its checkpoint plus journal
    /// replay.
    RecoveryReplayed {
        /// Journal operations replayed on top of the checkpoint.
        journal_ops: u64,
    },
    /// A recovery attempt failed (injected
    /// [`FaultKind::RecoveryFailure`] or a corrupt checkpoint).
    RecoveryFailed {
        /// 1-based attempt number for this fault.
        attempt: u32,
    },
    /// The shard exhausted its retry budget and was quarantined; its
    /// salvageable backlog was re-routed to healthy shards.
    Quarantined {
        /// Batch-queued tasks re-routed to healthy shards.
        rerouted: u64,
    },
    /// The overload ladder stepped **up** after sustained queue-depth
    /// pressure: non-Premium admission degrades at the new rung (see
    /// [`crate::LadderConfig`]). Logged once per transition, against
    /// shard 0 (the ladder is a federation-wide coordinate).
    OverloadStepUp {
        /// The rung stepped to (1–3).
        rung: u8,
    },
    /// The overload ladder stepped back **down** after sustained
    /// relief — transitions are one rung at a time, so recovery
    /// retraces the degradation path deterministically.
    OverloadStepDown {
        /// The rung stepped to (0–2).
        rung: u8,
    },
    /// A watermark health check found journaled-but-undelivered
    /// operations on the shard.
    JournalGapDetected {
        /// Number of undelivered operations.
        gap: u64,
    },
    /// A watermark health check found the shard's clock behind the
    /// federation's (a stalled or silently dead shard).
    WatermarkLagDetected {
        /// How far behind, in ticks.
        lag: u64,
    },
}

/// One timestamped supervisor action on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryAction {
    /// Sim-time instant of the action.
    pub time: SimTime,
    /// The shard acted on.
    pub shard: usize,
    /// What was done.
    pub kind: RecoveryActionKind,
}

/// The deterministic, append-only audit trail of everything a
/// supervisor did. Retrieve it from
/// [`FederationStats::recovery_log`] after the run; it is **not**
/// part of the stats' serialized wire shape (serialize the log itself
/// for durable audit trails).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryLog {
    actions: Vec<RecoveryAction>,
}

impl RecoveryLog {
    /// The actions, in the order they were taken.
    pub fn actions(&self) -> &[RecoveryAction] {
        &self.actions
    }

    /// Number of recorded actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether nothing was recorded (a fault-free supervised run still
    /// records its checkpoints).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// How many recorded actions satisfy `pred` — convenience for
    /// assertions like "exactly one quarantine".
    pub fn count(&self, pred: impl Fn(&RecoveryActionKind) -> bool) -> usize {
        self.actions.iter().filter(|a| pred(&a.kind)).count()
    }

    pub(crate) fn push(
        &mut self,
        time: SimTime,
        shard: usize,
        kind: RecoveryActionKind,
    ) {
        self.actions.push(RecoveryAction { time, shard, kind });
    }

    pub(crate) fn extend(&mut self, other: RecoveryLog) {
        self.actions.extend(other.actions);
    }
}

/// Deterministic exponential backoff for attempt `k` (1-based):
/// `base · 2^(k−1)`, exponent capped so it can never overflow.
pub(crate) fn backoff_at(base: u64, attempt: u32) -> u64 {
    let exp = attempt.saturating_sub(1).min(16);
    base.saturating_mul(1u64 << exp)
}

/// The self-healing wrapper around the serial [`FederatedEngine`]:
/// auto-checkpoints, detects faults, retries within a budget, and
/// degrades gracefully (quarantine + load shed) when the budget runs
/// out. See the module docs for the two invariants it upholds.
///
/// Construction enables journaling and captures an initial checkpoint
/// of every shard; arm a [`FaultPlan`] afterwards via
/// [`Supervisor::arm`] so the bootstrap captures are not themselves
/// fault targets.
pub struct Supervisor<'a, S: Sink = NullSink> {
    engine: FederatedEngine<'a, S>,
    policy: RecoveryPolicy,
    retries_left: Vec<u32>,
    checkpoints: Vec<Snapshot>,
    next_watermark: u64,
    log: RecoveryLog,
}

impl<'a, S: Sink> Supervisor<'a, S> {
    /// Wraps `engine`, enabling journaling and taking the initial
    /// per-shard checkpoints recovery will replay from.
    pub fn new(
        mut engine: FederatedEngine<'a, S>,
        policy: RecoveryPolicy,
    ) -> Self {
        engine.enable_journal();
        let n = engine.n_shards();
        let checkpoints = (0..n).map(|s| engine.checkpoint(s)).collect();
        // Relative to the arrivals already ingested, so a supervisor
        // attached to a restored coordinator resumes its checkpoint
        // cadence instead of waiting for an absolute count it may
        // already be past.
        let next_watermark =
            engine.arrivals_ingested() + policy.checkpoint_interval.max(1);
        Self {
            engine,
            policy,
            retries_left: vec![policy.retry_budget; n],
            checkpoints,
            next_watermark,
            log: RecoveryLog::default(),
        }
    }

    /// Arms deterministic fault injection (see
    /// [`FederatedEngine::arm_faults`]).
    pub fn arm(&mut self, plan: FaultPlan) {
        self.engine.arm_faults(plan);
    }

    /// The supervised engine (for watermark counters, journals, …).
    pub fn engine(&self) -> &FederatedEngine<'a, S> {
        &self.engine
    }

    /// The actions taken so far.
    pub fn recovery_log(&self) -> &RecoveryLog {
        &self.log
    }

    /// Captures the coordinator for a cold restart (see
    /// [`FederatedEngine::snapshot_coordinator`]). Take it at a
    /// paused [`Supervisor::run_until`] watermark.
    pub fn snapshot_coordinator(&self) -> Snapshot {
        self.engine.snapshot_coordinator()
    }

    /// Supervised [`FederatedEngine::run_stream`]: consumes the whole
    /// arrival stream, healing faults as they fire, and returns the
    /// outcome record with the [`RecoveryLog`] attached.
    pub fn run_stream<I>(mut self, arrivals: I) -> FederationStats
    where
        I: IntoIterator<Item = Task>,
    {
        let mut source = arrivals.into_iter().peekable();
        self.pump(&mut source, None);
        self.finish_with_log()
    }

    /// Supervised [`FederatedEngine::run_until`]: drives (and heals)
    /// until `watermark` total arrivals have been ingested, then
    /// pauses non-destructively.
    pub fn run_until<I>(&mut self, source: &mut Peekable<I>, watermark: u64)
    where
        I: Iterator<Item = Task>,
    {
        self.pump(source, Some(watermark));
    }

    /// Supervised [`FederatedEngine::finish_stream`]: consumes the
    /// rest of a paused stream, drains every shard, and returns the
    /// outcome record with the [`RecoveryLog`] attached.
    pub fn finish_stream<I>(
        mut self,
        source: &mut Peekable<I>,
    ) -> FederationStats
    where
        I: Iterator<Item = Task>,
    {
        self.pump(&mut *source, None);
        self.finish_with_log()
    }

    fn finish_with_log(self) -> FederationStats {
        let mut stats = self.engine.finish_now();
        stats.recovery = self.log;
        stats
    }

    /// The supervision loop: drive to the next maintenance watermark
    /// (or the caller's stop watermark, whichever is sooner), settle
    /// whatever surfaced, repeat.
    fn pump<I>(&mut self, source: &mut Peekable<I>, stop_at: Option<u64>)
    where
        I: Iterator<Item = Task>,
    {
        loop {
            let target = match stop_at {
                Some(w) => w.min(self.next_watermark),
                None => self.next_watermark,
            };
            let signal = self.engine.drive(source, Some(target));
            for notice in self.engine.take_notices() {
                self.log.push(
                    notice.time,
                    notice.shard,
                    RecoveryActionKind::DuplicateSuppressed,
                );
            }
            match signal {
                DriveSignal::Exhausted => return,
                DriveSignal::Watermark => {
                    if self.engine.arrivals_ingested() >= self.next_watermark {
                        self.maintain();
                        self.next_watermark +=
                            self.policy.checkpoint_interval.max(1);
                    }
                    if stop_at
                        .is_some_and(|w| self.engine.arrivals_ingested() >= w)
                    {
                        return;
                    }
                }
                DriveSignal::Fault(report) => {
                    let more = source.peek().is_some();
                    self.log.push(
                        report.time,
                        report.shard,
                        RecoveryActionKind::FaultDetected {
                            fault: report.kind,
                        },
                    );
                    match report.kind {
                        FaultKind::ShardCrash => {
                            self.settle_crash(report.shard, report.time, more);
                        }
                        FaultKind::LostCompletion
                        | FaultKind::DelayedCompletion => {
                            if self.retries_left[report.shard] > 0 {
                                self.retries_left[report.shard] -= 1;
                                let backoff =
                                    backoff_at(self.policy.backoff_base, 1);
                                self.log.push(
                                    report.time,
                                    report.shard,
                                    RecoveryActionKind::RetryScheduled {
                                        attempt: 1,
                                        backoff,
                                        at: SimTime(
                                            report
                                                .time
                                                .ticks()
                                                .saturating_add(backoff),
                                        ),
                                    },
                                );
                                self.engine.resolve_fault(&report, true, more);
                                self.log.push(
                                    report.time,
                                    report.shard,
                                    RecoveryActionKind::Redelivered,
                                );
                            } else {
                                // Budget exhausted: the delivery stays
                                // lost. The shard remains live; its
                                // stuck work surfaces as `Unfinished`
                                // at the drain and the journal gap
                                // records the loss.
                                self.engine.resolve_fault(&report, false, more);
                            }
                        }
                        FaultKind::DuplicateCompletion
                        | FaultKind::CheckpointFailure
                        | FaultKind::RecoveryFailure => {
                            unreachable!(
                                "drive surfaces only crashes and \
                                 lost/delayed deliveries as faults"
                            )
                        }
                    }
                }
            }
        }
    }

    /// Crash path: bounded retries of checkpoint + journal replay; on
    /// an exhausted budget, salvage the backlog and quarantine.
    fn settle_crash(&mut self, shard: usize, now: SimTime, more: bool) {
        if self.try_recover(shard, now) {
            return;
        }
        // Budget exhausted: the shard stays down. Rebuild its state
        // once from the durable checkpoint + journal — not to revive
        // it, but to salvage the still-unmapped backlog the batch
        // queue held (a free read of durable storage, not a retry) —
        // then quarantine it and shed load on the survivors.
        let _ = self.engine.recover_shard(shard, &self.checkpoints[shard]);
        let rerouted = self.engine.quarantine_shard(shard, more);
        self.engine
            .tighten_healthy_pruners(self.policy.quarantine_shed_factor);
        self.log
            .push(now, shard, RecoveryActionKind::Quarantined { rerouted });
    }

    /// Bounded retry loop around checkpoint + journal replay. Returns
    /// whether the shard was rebuilt.
    fn try_recover(&mut self, shard: usize, now: SimTime) -> bool {
        let mut attempt = 0u32;
        while self.retries_left[shard] > 0 {
            attempt += 1;
            self.retries_left[shard] -= 1;
            let backoff = backoff_at(self.policy.backoff_base, attempt);
            self.log.push(
                now,
                shard,
                RecoveryActionKind::RetryScheduled {
                    attempt,
                    backoff,
                    at: SimTime(now.ticks().saturating_add(backoff)),
                },
            );
            if self.engine.recovery_attempt_fails(shard) {
                self.log.push(
                    now,
                    shard,
                    RecoveryActionKind::RecoveryFailed { attempt },
                );
                continue;
            }
            match self.engine.recover_shard(shard, &self.checkpoints[shard]) {
                Ok(()) => {
                    let journal_ops = self.engine.journal(shard).len() as u64;
                    self.log.push(
                        now,
                        shard,
                        RecoveryActionKind::RecoveryReplayed { journal_ops },
                    );
                    return true;
                }
                Err(RunError::RecoveryUnavailable) => unreachable!(
                    "the supervisor enabled journaling at construction"
                ),
                Err(_) => {
                    self.log.push(
                        now,
                        shard,
                        RecoveryActionKind::RecoveryFailed { attempt },
                    );
                }
            }
        }
        false
    }

    /// Watermark maintenance: per-shard health checks plus the
    /// auto-checkpoint. Runs at a quiescent pause, so none of it
    /// perturbs simulation state.
    fn maintain(&mut self) {
        let watermark = self.engine.arrivals_ingested();
        let now = self.engine.now();
        // Overload-ladder sensing comes first, so the checkpoints this
        // pause captures already carry the stepped rung (a recovered
        // shard replays the threshold history exactly). The pressure
        // read and the transition are pure functions of shard state at
        // this quiescent admitted-arrival ordinal, so serial and
        // parallel supervision step identically.
        if self.engine.gateway_ref().ladder_enabled() {
            let pressure = self.engine.overload_pressure();
            if let Some((from, to)) = self.engine.overload_tick(pressure) {
                let kind = if to > from {
                    RecoveryActionKind::OverloadStepUp { rung: to }
                } else {
                    RecoveryActionKind::OverloadStepDown { rung: to }
                };
                self.log.push(now, 0, kind);
            }
        }
        for shard in 0..self.engine.n_shards() {
            if self.engine.gateway_ref().is_quarantined(shard) {
                continue;
            }
            // Health check 1: journaled-but-undelivered operations.
            // Positive exactly while a lost delivery stays unhealed;
            // recoverable by a full checkpoint replay if budget
            // remains (the replay redelivers everything journaled).
            let gap = self.engine.journal_gap(shard);
            if gap > 0 {
                self.log.push(
                    now,
                    shard,
                    RecoveryActionKind::JournalGapDetected { gap },
                );
                self.try_recover(shard, now);
            }
            // Health check 2: a shard whose clock fell behind the
            // federation's is stalled or silently dead (defense in
            // depth — the serial driver advances in lockstep, so this
            // firing means an unhealed wipe).
            let shard_now = self.engine.gateway_ref().shards()[shard].now();
            if shard_now < now {
                self.log.push(
                    now,
                    shard,
                    RecoveryActionKind::WatermarkLagDetected {
                        lag: now.ticks() - shard_now.ticks(),
                    },
                );
                self.try_recover(shard, now);
            }
            // Auto-checkpoint, retrying transient storage faults
            // within the budget. Skipping on exhaustion is safe: the
            // journal keeps growing, so recovery stays possible from
            // the previous checkpoint.
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                if self.engine.checkpoint_attempt_fails(shard) {
                    self.log.push(
                        now,
                        shard,
                        RecoveryActionKind::CheckpointFailed { attempt },
                    );
                    if self.retries_left[shard] > 0 {
                        self.retries_left[shard] -= 1;
                        continue;
                    }
                    break;
                }
                self.checkpoints[shard] = self.engine.checkpoint(shard);
                self.log.push(
                    now,
                    shard,
                    RecoveryActionKind::CheckpointTaken { watermark },
                );
                break;
            }
        }
    }
}

impl<S: Sink> std::fmt::Debug for Supervisor<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("policy", &self.policy)
            .field("retries_left", &self.retries_left)
            .field("actions", &self.log.len())
            .finish_non_exhaustive()
    }
}

/// The self-healing wrapper around the
/// [`ParallelFederatedEngine`]: the same [`RecoveryPolicy`] semantics,
/// applied lane-locally on the worker threads (each lane carries its
/// own journal, checkpoint and retry budget — see the lane-guard notes
/// in [`crate::parallel`]). The one semantic difference from the
/// serial [`Supervisor`]: a lane that exhausts its budget degrades by
/// dropping its own backlog (quarantine without the cross-shard
/// re-route — lanes cannot reach each other mid-run); the coordinator
/// still remaps *future* arrivals around it at the next ingest epoch.
pub struct ParallelSupervisor<'a, S: Sink = NullSink> {
    engine: ParallelFederatedEngine<'a, S>,
    policy: RecoveryPolicy,
}

impl<'a, S: Sink> ParallelSupervisor<'a, S> {
    /// Wraps `engine`, installing lane guards with `policy`.
    pub fn new(
        mut engine: ParallelFederatedEngine<'a, S>,
        policy: RecoveryPolicy,
    ) -> Self {
        engine.supervise(policy);
        Self { engine, policy }
    }

    /// Arms deterministic fault injection: each lane receives its
    /// shard's slice of the plan.
    pub fn arm(&mut self, plan: &FaultPlan) {
        self.engine.arm_lane_faults(plan);
    }

    /// Supervised parallel run: consumes the whole arrival stream,
    /// healing faults lane-locally, and returns the outcome record
    /// with the merged (shard-index-ordered) [`RecoveryLog`]
    /// attached.
    ///
    /// When the gateway carries an overload ladder, the stream is
    /// ingested in checkpoint-interval slices of **admitted** arrivals
    /// and the ladder sensed at each quiescent pause — the same
    /// coordinates the serial [`Supervisor`] senses at, so the two
    /// drivers step (and recover) rung for rung.
    pub fn run_stream<I>(mut self, arrivals: I) -> FederationStats
    where
        I: IntoIterator<Item = Task>,
    {
        let mut iter = arrivals.into_iter();
        if !self.engine.ladder_enabled() {
            return self.engine.run_stream(iter);
        }
        let interval = self.policy.checkpoint_interval.max(1);
        let mut next = self.engine.arrivals_admitted() + interval;
        loop {
            // Sheds don't advance the admitted watermark, so keep
            // topping the slice up until the pause ordinal is reached
            // (or the stream runs dry).
            let want = next.saturating_sub(self.engine.arrivals_admitted());
            let chunk: Vec<Task> =
                iter.by_ref().take((want as usize).max(1)).collect();
            if chunk.is_empty() {
                break;
            }
            self.engine.ingest_prefix(chunk);
            if self.engine.arrivals_admitted() >= next {
                self.ladder_tick();
                next += interval;
            }
        }
        self.engine.finish_stream(std::iter::empty())
    }

    /// One quiescent-pause ladder sense, mirroring the serial
    /// supervisor's `maintain` step: read pressure, step at most one
    /// rung, and record the transition in the recovery log (via lane
    /// 0's guard — the ladder is a federation-wide coordinate).
    fn ladder_tick(&mut self) {
        let pressure = self.engine.overload_pressure();
        if let Some((from, to)) = self.engine.overload_tick(pressure) {
            let kind = if to > from {
                RecoveryActionKind::OverloadStepUp { rung: to }
            } else {
                RecoveryActionKind::OverloadStepDown { rung: to }
            };
            let time = self.engine.watermark_time();
            self.engine.push_recovery_action(time, 0, kind);
        }
    }
}

impl<S: Sink> std::fmt::Debug for ParallelSupervisor<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSupervisor")
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        assert_eq!(backoff_at(64, 1), 64);
        assert_eq!(backoff_at(64, 2), 128);
        assert_eq!(backoff_at(64, 5), 1024);
        // Exponent caps; no overflow even at absurd attempt counts.
        assert_eq!(backoff_at(u64::MAX, 40), u64::MAX);
    }

    #[test]
    fn policy_defaults_and_no_retries() {
        let p = RecoveryPolicy::default();
        assert!(p.retry_budget > 0);
        assert!(p.checkpoint_interval > 0);
        assert!(p.quarantine_shed_factor > 1.0);
        assert_eq!(RecoveryPolicy::no_retries().retry_budget, 0);
    }

    #[test]
    fn recovery_log_counts() {
        let mut log = RecoveryLog::default();
        assert!(log.is_empty());
        log.push(
            SimTime(5),
            1,
            RecoveryActionKind::FaultDetected {
                fault: FaultKind::ShardCrash,
            },
        );
        log.push(
            SimTime(5),
            1,
            RecoveryActionKind::Quarantined { rerouted: 3 },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(
            log.count(|k| matches!(k, RecoveryActionKind::Quarantined { .. })),
            1
        );
        assert_eq!(log.actions()[0].shard, 1);
    }
}
