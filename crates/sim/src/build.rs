//! Fluent, validated construction of scheduler cores and engines.
//!
//! [`SchedulerBuilder`] replaces the former positional
//! `Engine::new(..)` + `with_trace`/`with_truth` chain: every knob is a
//! named method, invalid configurations surface as typed
//! [`ConfigError`]s at build time (instead of panics mid-run), and the
//! same builder produces either a bare [`SchedulerCore`] for streaming
//! callers or a full discrete-event [`Engine`].
//!
//! ```no_run
//! # use taskprune_sim::{SchedulerBuilder, SimConfig, MappingStrategy,
//! #     NoPruning, TraceLog};
//! # fn strategy() -> MappingStrategy { unimplemented!() }
//! # let (cluster, pet) = unimplemented!();
//! let engine = SchedulerBuilder::new(&cluster, &pet)
//!     .config(SimConfig::batch(42))
//!     .strategy(strategy())
//!     .pruner(NoPruning)
//!     .sink(TraceLog::with_defaults())
//!     .build()?;
//! # Ok::<(), taskprune_sim::ConfigError>(())
//! ```

use crate::config::{ConfigError, SimConfig};
use crate::core::SchedulerCore;
use crate::decisions::{Decisions, NullDecisions};
use crate::engine::Engine;
use crate::sink::{NullSink, Sink};
use crate::traits::{MappingStrategy, NoPruning, Pruner};
use taskprune_model::{Cluster, PetMatrix};

/// Builder for a [`SchedulerCore`] or an [`Engine`]. See the [module
/// docs](self).
///
/// The builder copies the (small) machine list out of the cluster, so
/// only the PET matrices must outlive the built core — the cluster
/// borrow ends with [`SchedulerBuilder::new`].
pub struct SchedulerBuilder<
    'a,
    S: Sink = NullSink,
    D: Decisions = NullDecisions,
> {
    cfg: SimConfig,
    machines: Vec<taskprune_model::Machine>,
    pet: &'a PetMatrix,
    truth: Option<&'a PetMatrix>,
    strategy: Option<MappingStrategy>,
    pruner: Option<Box<dyn Pruner>>,
    sink: S,
    decisions: D,
}

impl<'a> SchedulerBuilder<'a, NullSink, NullDecisions> {
    /// Starts a builder over the given cluster and (belief) PET matrix.
    /// Defaults: batch mode with the paper's parameters and seed 0, no
    /// pruning, ground truth equal to belief, the zero-cost
    /// [`NullSink`], and the discard-everything [`NullDecisions`].
    pub fn new(cluster: &Cluster, pet: &'a PetMatrix) -> Self {
        Self {
            cfg: SimConfig::batch(0),
            machines: cluster.machines().to_vec(),
            pet,
            truth: None,
            strategy: None,
            pruner: None,
            sink: NullSink,
            decisions: NullDecisions,
        }
    }
}

impl<'a, S: Sink, D: Decisions> SchedulerBuilder<'a, S, D> {
    /// Sets the static simulation parameters (mode, capacity, horizon,
    /// seed, …).
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Overrides only the execution-sampling seed of the current
    /// config.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Installs the mapping heuristic. Required.
    pub fn strategy(mut self, strategy: MappingStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Installs the pruning policy (default: [`NoPruning`] — the
    /// unmodified allocator of Fig. 1a/1b).
    pub fn pruner(mut self, pruner: impl Pruner + 'static) -> Self {
        self.pruner = Some(Box::new(pruner));
        self
    }

    /// Installs an already-boxed pruning policy (convenient when the
    /// policy is chosen at runtime).
    pub fn pruner_boxed(mut self, pruner: Box<dyn Pruner>) -> Self {
        self.pruner = Some(pruner);
        self
    }

    /// Separates the scheduler's *belief* from ground truth: estimates
    /// use the matrix given to [`SchedulerBuilder::new`], while actual
    /// execution durations are sampled from `truth`. Used to study how
    /// robust pruning is to execution-time model error.
    pub fn truth(mut self, truth: &'a PetMatrix) -> Self {
        self.truth = Some(truth);
        self
    }

    /// Replaces the observability sink (default: the zero-cost
    /// [`NullSink`]). Passing a [`crate::TraceLog`] records the full
    /// execution trace into [`crate::SimStats::trace`].
    pub fn sink<T: Sink>(self, sink: T) -> SchedulerBuilder<'a, T, D> {
        SchedulerBuilder {
            cfg: self.cfg,
            machines: self.machines,
            pet: self.pet,
            truth: self.truth,
            strategy: self.strategy,
            pruner: self.pruner,
            sink,
            decisions: self.decisions,
        }
    }

    /// Replaces the typed-decision consumer the [`Engine`] driver feeds
    /// after every event (default: the discard-everything
    /// [`NullDecisions`]). Pass `&mut consumer` to keep ownership for
    /// after the run — `&mut D` implements [`Decisions`] by
    /// delegation.
    pub fn decisions<T: Decisions>(
        self,
        decisions: T,
    ) -> SchedulerBuilder<'a, S, T> {
        SchedulerBuilder {
            cfg: self.cfg,
            machines: self.machines,
            pet: self.pet,
            truth: self.truth,
            strategy: self.strategy,
            pruner: self.pruner,
            sink: self.sink,
            decisions,
        }
    }

    /// Checks the configuration without consuming the builder.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cfg.validate()?;
        if self.machines.is_empty() {
            return Err(ConfigError::EmptyCluster);
        }
        match &self.strategy {
            None => return Err(ConfigError::MissingStrategy),
            Some(strategy) => {
                let compatible = match strategy {
                    MappingStrategy::Immediate(_) => {
                        self.cfg.mode == crate::AllocationMode::Immediate
                    }
                    MappingStrategy::Batch(_) => {
                        self.cfg.mode == crate::AllocationMode::Batch
                    }
                };
                if !compatible {
                    return Err(ConfigError::ModeMismatch {
                        mode: self.cfg.mode,
                        heuristic: strategy.name().to_string(),
                    });
                }
            }
        }
        if let Some(truth) = self.truth {
            if self.pet.n_machine_types() != truth.n_machine_types() {
                return Err(ConfigError::BeliefTruthMismatch {
                    what: "machine types",
                });
            }
            if self.pet.n_task_types() != truth.n_task_types() {
                return Err(ConfigError::BeliefTruthMismatch {
                    what: "task types",
                });
            }
            if self.pet.bin_spec() != truth.bin_spec() {
                return Err(ConfigError::BeliefTruthMismatch {
                    what: "bin width",
                });
            }
        }
        Ok(())
    }

    /// Builds the clock-free [`SchedulerCore`] for streaming callers
    /// (who drain decisions themselves — the consumer is a driver
    /// concern, so it is dropped here).
    pub fn build_core(self) -> Result<SchedulerCore<'a, S>, ConfigError> {
        Ok(self.build_parts()?.0)
    }

    /// Validates and splits the builder into the core plus the decision
    /// consumer destined for the driver.
    fn build_parts(self) -> Result<(SchedulerCore<'a, S>, D), ConfigError> {
        self.validate()?;
        let strategy = self.strategy.expect("validated above");
        let pruner = self.pruner.unwrap_or_else(|| Box::new(NoPruning));
        let core = SchedulerCore::from_parts(
            self.cfg,
            &self.machines,
            self.pet,
            strategy,
            pruner,
            self.sink,
        );
        Ok((core, self.decisions))
    }

    /// Builds the discrete-event [`Engine`] (the core plus an event
    /// driver that samples ground-truth durations).
    pub fn build(self) -> Result<Engine<'a, S, D>, ConfigError> {
        let truth = self.truth;
        let pet = self.pet;
        let seed = self.cfg.seed;
        let (core, decisions) = self.build_parts()?;
        Ok(Engine::from_core(
            core,
            truth.unwrap_or(pet),
            seed,
            decisions,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Assignment, BatchMapper, ImmediateMapper};
    use crate::view::SystemView;
    use taskprune_model::{
        BinSpec, MachineId, SimTime, Task, TaskOutcome, TaskTypeId,
    };
    use taskprune_prob::Pmf;

    fn pet() -> PetMatrix {
        PetMatrix::new(BinSpec::new(100), 1, 1, vec![Pmf::point_mass(2)])
    }

    struct ToZero;
    impl BatchMapper for ToZero {
        fn name(&self) -> &str {
            "to-zero"
        }
        fn select(
            &mut self,
            view: &SystemView<'_>,
            candidates: &[Task],
        ) -> Vec<Assignment> {
            candidates
                .iter()
                .take(view.free_slots(MachineId(0)))
                .map(|t| Assignment {
                    task: t.id,
                    machine: MachineId(0),
                })
                .collect()
        }
    }

    struct ToFirst;
    impl ImmediateMapper for ToFirst {
        fn name(&self) -> &str {
            "to-first"
        }
        fn place(&mut self, _view: &SystemView<'_>, _task: &Task) -> MachineId {
            MachineId(0)
        }
    }

    fn batch_strategy() -> MappingStrategy {
        MappingStrategy::Batch(Box::new(ToZero))
    }

    #[test]
    fn builder_runs_end_to_end() {
        let pet = pet();
        let cluster = Cluster::one_per_type(1);
        let tasks: Vec<Task> = (0..5)
            .map(|i| {
                Task::new(i, TaskTypeId(0), SimTime(i * 400), SimTime(100_000))
            })
            .collect();
        let stats = SchedulerBuilder::new(&cluster, &pet)
            .config(SimConfig::batch(1))
            .strategy(batch_strategy())
            .pruner(NoPruning)
            .build()
            .expect("valid configuration")
            .run(&tasks);
        assert_eq!(stats.count(TaskOutcome::CompletedOnTime), 5);
    }

    #[test]
    fn missing_strategy_is_rejected() {
        let pet = pet();
        let cluster = Cluster::one_per_type(1);
        let err = SchedulerBuilder::new(&cluster, &pet)
            .build()
            .expect_err("must fail");
        assert_eq!(err, ConfigError::MissingStrategy);
    }

    #[test]
    fn mode_mismatch_is_rejected_both_ways() {
        let pet = pet();
        let cluster = Cluster::one_per_type(1);
        let err = SchedulerBuilder::new(&cluster, &pet)
            .config(SimConfig::immediate(1))
            .strategy(batch_strategy())
            .build_core()
            .expect_err("batch mapper in immediate mode must fail");
        assert!(matches!(err, ConfigError::ModeMismatch { .. }));

        let err = SchedulerBuilder::new(&cluster, &pet)
            .config(SimConfig::batch(1))
            .strategy(MappingStrategy::Immediate(Box::new(ToFirst)))
            .build_core()
            .expect_err("immediate mapper in batch mode must fail");
        assert!(matches!(err, ConfigError::ModeMismatch { .. }));
    }

    #[test]
    fn zero_capacity_and_tiny_horizon_are_rejected() {
        let pet = pet();
        let cluster = Cluster::one_per_type(1);
        let mut cfg = SimConfig::batch(1);
        cfg.queue_capacity = 0;
        let err = SchedulerBuilder::new(&cluster, &pet)
            .config(cfg)
            .strategy(batch_strategy())
            .build()
            .expect_err("must fail");
        assert_eq!(err, ConfigError::ZeroQueueCapacity);

        let mut cfg = SimConfig::batch(1);
        cfg.horizon_bins = 0;
        let err = SchedulerBuilder::new(&cluster, &pet)
            .config(cfg)
            .strategy(batch_strategy())
            .build()
            .expect_err("must fail");
        assert_eq!(err, ConfigError::HorizonTooSmall { horizon_bins: 0 });
    }

    #[test]
    fn belief_truth_mismatch_is_rejected() {
        let belief = pet();
        let truth =
            PetMatrix::new(BinSpec::new(200), 1, 1, vec![Pmf::point_mass(2)]);
        let cluster = Cluster::one_per_type(1);
        let err = SchedulerBuilder::new(&cluster, &belief)
            .strategy(batch_strategy())
            .truth(&truth)
            .build()
            .expect_err("bin-width mismatch must fail");
        assert_eq!(err, ConfigError::BeliefTruthMismatch { what: "bin width" });
    }

    #[test]
    fn empty_cluster_is_rejected() {
        let pet = pet();
        let cluster = Cluster::one_per_type(0);
        let err = SchedulerBuilder::new(&cluster, &pet)
            .strategy(batch_strategy())
            .build()
            .expect_err("must fail");
        assert_eq!(err, ConfigError::EmptyCluster);
    }
}
