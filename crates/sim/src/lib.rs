//! Discrete-event simulator of a heterogeneous serverless back-end.
//!
//! Implements the system model of §II of the paper (Fig. 1):
//!
//! * tasks arrive dynamically and enter either machine queues directly
//!   (**immediate mode**) or a batch/arrival queue (**batch mode**);
//! * a *mapping event* fires on every task arrival and completion; before
//!   any mapping decision, tasks that already missed their deadline are
//!   dropped (reactive dropping);
//! * machine queues are FCFS, non-preemptive, and tasks are never
//!   remapped once assigned;
//! * every machine queue tracks the **Probabilistic Completion Time** of
//!   its tail incrementally (Eq. 1: `PCT(i,j) = PET(i,j) ∗ PCT(i−1,j)`),
//!   enabling O(PET-support) chance-of-success queries (Eq. 2) without
//!   re-convolving the whole queue;
//! * the mapper ([`BatchMapper`] / [`ImmediateMapper`]) and the pruning
//!   policy ([`Pruner`]) are plug-ins, so the pruning mechanism can be
//!   attached to any heuristic "without altering it" (Fig. 1c).

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod event;
pub mod queue;
pub mod stats;
pub mod trace;
pub mod traits;
pub mod view;

pub mod queue_testing {
    //! Helpers for constructing machine-queue state outside the engine —
    //! used by heuristic unit tests and the micro-benchmarks.

    use crate::queue::MachineQueue;
    use taskprune_model::Cluster;

    /// Builds one empty queue per cluster machine.
    pub fn make_queues(
        cluster: &Cluster,
        capacity: usize,
        horizon_bins: u64,
    ) -> Vec<MachineQueue> {
        cluster
            .machines()
            .iter()
            .map(|&m| MachineQueue::new(m, capacity, horizon_bins))
            .collect()
    }
}

pub use config::{AllocationMode, SimConfig};
pub use engine::Engine;
pub use stats::SimStats;
pub use trace::{QueueSnapshot, TraceEvent, TraceLog};
pub use traits::{
    Assignment, BatchMapper, EventReport, ImmediateMapper, MappingStrategy,
    NoPruning, Pruner,
};
pub use view::SystemView;
