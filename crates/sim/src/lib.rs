//! Discrete-event simulator of a heterogeneous serverless back-end.
//!
//! Implements the system model of §II of the paper (Fig. 1):
//!
//! * tasks arrive dynamically and enter either machine queues directly
//!   (**immediate mode**) or a batch/arrival queue (**batch mode**);
//! * a *mapping event* fires on every task arrival and completion; before
//!   any mapping decision, tasks that already missed their deadline are
//!   dropped (reactive dropping);
//! * machine queues are FCFS, non-preemptive, and tasks are never
//!   remapped once assigned;
//! * every machine queue tracks the **Probabilistic Completion Time** of
//!   its tail incrementally (Eq. 1: `PCT(i,j) = PET(i,j) ∗ PCT(i−1,j)`),
//!   enabling O(PET-support) chance-of-success queries (Eq. 2) without
//!   re-convolving the whole queue;
//! * the mapper ([`BatchMapper`] / [`ImmediateMapper`]) and the pruning
//!   policy ([`Pruner`]) are plug-ins, so the pruning mechanism can be
//!   attached to any heuristic "without altering it" (Fig. 1c).
//!
//! # Architecture: driver over core over sinks
//!
//! The crate is layered so the scheduler is usable outside the
//! simulation:
//!
//! * [`SchedulerCore`] — the clock-free decision state machine. Feed it
//!   `advance_to` / `push_arrival` / `complete` / `wakeup`; read back
//!   typed [`Decision`]s and [`Start`] records. No event queue, no
//!   duration sampling: live traffic can drive it directly.
//! * [`Engine`] — the bundled discrete-event *driver*: merges an
//!   arrival stream with its completion-event heap, samples
//!   ground-truth durations, and owns the wakeup safety net. `run`
//!   (task slice) and `run_stream` (any ordered iterator) are
//!   bit-identical paths.
//! * [`Sink`] — pluggable observability, chosen *by type*: the default
//!   [`NullSink`] compiles to nothing, [`TraceLog`] records the full
//!   lifecycle trace.
//! * [`Decisions`] — pluggable consumer of the typed decision stream,
//!   also chosen by type: the default [`NullDecisions`] restores the
//!   driver's historical drain-and-discard at zero cost.
//! * [`SchedulerBuilder`] — the validated fluent constructor for both;
//!   misconfigurations surface as typed [`ConfigError`]s at build time.
//! * [`Gateway`] — the federation layer: N independent cores behind a
//!   pluggable [`RoutePolicy`], with external-id compaction at the
//!   boundary and a deterministic [`FederationStats`] fan-in;
//!   [`FederatedEngine`] is its bundled discrete-event driver. One
//!   shard is bit-identical to [`Engine`].
//! * [`ParallelFederatedEngine`] — the same federation driven with one
//!   worker per shard on a work-stealing pool, routing serialized on
//!   the coordinator. Bit-identical to [`FederatedEngine`] at every
//!   thread count; parallelism is purely a wall-clock change.
//! * [`Snapshot`] / [`ShardJournal`] — the elasticity layer: versioned,
//!   hash-sealed state capture for cores, queues and whole gateways,
//!   plus per-shard replayable operation logs. Together they give
//!   crash-failover (`replay(snapshot, log)` reproduces a shard
//!   bit-identically) and live resharding (pause at an arrival
//!   watermark, snapshot, re-split across K′ shards, resume).
//! * [`ReusePolicy`] / [`Admission`] — the function-reuse layer: a
//!   content-keyed gate at the gateway absorbs exact-duplicate and
//!   deadline-window-mergeable arrivals onto their in-flight primary,
//!   fanning the single completion out to every follower (each judged
//!   against its own deadline). Off by default and bit-identical to a
//!   gateway without it.
//! * [`Consistency`] / [`StealStats`] — the relaxed-routing layer:
//!   under [`Consistency::BoundedStale`] stateful policies route on an
//!   epoch-stamped view table at most `k` arrivals stale (letting the
//!   parallel driver skip the per-arrival barrier), and idle shards
//!   steal batch-queue tails from the deepest backlog at the same
//!   deterministic sync points. Serial and parallel drivers stay
//!   byte-identical at every `k` (`tests/relaxed_equivalence.rs`), and
//!   `BoundedStale { k: 0 }` is bit-for-bit `Lockstep`.
//! * [`FaultPlan`] / [`Supervisor`] — the robustness layer: seeded,
//!   replayable fault schedules injected into either federated driver,
//!   and a self-healing supervisor that auto-checkpoints, detects
//!   faults, retries within a bounded budget (deterministic sim-time
//!   backoff), and degrades gracefully — quarantine plus pruning-based
//!   load shedding — when the budget runs out. Every action lands in a
//!   deterministic [`RecoveryLog`].

#![warn(missing_docs)]

pub mod build;
pub mod config;
pub mod core;
pub mod decisions;
pub mod engine;
pub mod event;
pub mod fault;
pub mod gateway;
pub mod journal;
pub mod parallel;
pub mod queue;
pub mod reuse;
pub mod route;
pub mod sink;
pub mod snapshot;
pub mod stats;
pub mod supervisor;
pub mod tenant;
pub mod trace;
pub mod traits;
pub mod view;

pub mod queue_testing {
    //! Helpers for constructing machine-queue state outside the engine —
    //! used by heuristic unit tests and the micro-benchmarks.

    use crate::queue::MachineQueue;
    use taskprune_model::Cluster;

    /// Builds one empty queue per cluster machine.
    pub fn make_queues(
        cluster: &Cluster,
        capacity: usize,
        horizon_bins: u64,
    ) -> Vec<MachineQueue> {
        cluster
            .machines()
            .iter()
            .map(|&m| MachineQueue::new(m, capacity, horizon_bins))
            .collect()
    }
}

pub use build::SchedulerBuilder;
pub use config::{AllocationMode, ConfigError, RunError, SimConfig};
pub use core::{Decision, SchedulerCore, Start};
pub use decisions::{DecisionCounter, DecisionLog, Decisions, NullDecisions};
pub use engine::Engine;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultSpec, TenantBurst};
pub use gateway::{
    FedArrival, FedDecision, FedStart, FederatedEngine, FederationStats,
    Gateway, GatewayBuilder, IdCompactor,
};
pub use journal::{JournalEntry, JournalOp, ShardJournal};
pub use parallel::ParallelFederatedEngine;
pub use reuse::{Admission, ReuseMode, ReusePolicy, ReuseStats};
pub use route::{
    Consistency, LeastQueuedRoute, RoundRobinRoute, RoutePolicy, ShardView,
};
pub use sink::{NullSink, Sink};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_VERSION};
pub use stats::{SimStats, StatsError, StealStats, TenancyStats, TenantSlice};
pub use supervisor::{
    ParallelSupervisor, RecoveryAction, RecoveryActionKind, RecoveryLog,
    RecoveryPolicy, Supervisor,
};
pub use tenant::{
    LadderConfig, RateLimit, ShedReason, SlaClass, TenancyPolicy,
    TenantAdmissionStats, TenantSpec,
};
pub use trace::{QueueSnapshot, TraceEvent, TraceLog};
pub use traits::{
    Assignment, BatchMapper, EventReport, ImmediateMapper, MappingStrategy,
    NoPruning, Pruner,
};
pub use view::SystemView;
