//! The read-only system state exposed to mappers and pruners.
//!
//! A [`SystemView`] is constructed afresh for every decision point inside
//! a mapping event: it borrows the machine queues and the PET matrix, so
//! heuristics always see the effect of assignments committed earlier in
//! the same event (the Step 7 loop semantics).

use crate::queue::MachineQueue;
use taskprune_model::{
    BinSpec, Machine, MachineId, PetMatrix, SimTime, Task, TaskId, TaskTypeId,
};

/// A snapshot view over the simulator state at one instant.
pub struct SystemView<'a> {
    now: SimTime,
    queues: &'a [MachineQueue],
    pet: &'a PetMatrix,
}

impl<'a> SystemView<'a> {
    /// Builds a view (engine-internal; exposed for tests and tools).
    pub fn new(
        now: SimTime,
        queues: &'a [MachineQueue],
        pet: &'a PetMatrix,
    ) -> Self {
        Self { now, queues, pet }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The PET matrix (Eq. 1's source distributions).
    #[inline]
    pub fn pet(&self) -> &PetMatrix {
        self.pet
    }

    /// The bin resolution all probabilistic estimates use.
    #[inline]
    pub fn bin_spec(&self) -> BinSpec {
        self.pet.bin_spec()
    }

    /// Number of machines in the cluster.
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.queues.len()
    }

    /// Machine descriptors in id order.
    pub fn machines(&self) -> impl Iterator<Item = Machine> + '_ {
        self.queues.iter().map(|q| q.machine())
    }

    #[inline]
    fn queue(&self, id: MachineId) -> &MachineQueue {
        &self.queues[id.0 as usize]
    }

    /// Free waiting slots on `machine`.
    #[inline]
    pub fn free_slots(&self, machine: MachineId) -> usize {
        self.queue(machine).free_slots()
    }

    /// Total free waiting slots across the cluster.
    pub fn total_free_slots(&self) -> usize {
        self.queues.iter().map(|q| q.free_slots()).sum()
    }

    /// Number of tasks waiting on `machine` (excludes the running task).
    #[inline]
    pub fn waiting_len(&self, machine: MachineId) -> usize {
        self.queue(machine).waiting_len()
    }

    /// Whether `machine` is currently executing a task.
    #[inline]
    pub fn is_busy(&self, machine: MachineId) -> bool {
        self.queue(machine).is_busy()
    }

    /// The waiting tasks of `machine` in FCFS order.
    pub fn waiting_tasks(
        &self,
        machine: MachineId,
    ) -> impl ExactSizeIterator<Item = &Task> {
        self.queue(machine).waiting()
    }

    /// Expected execution time (ticks) of a `task_type` on `machine` —
    /// the ETC value heuristics build on.
    #[inline]
    pub fn expected_exec_ticks(
        &self,
        machine: MachineId,
        task_type: TaskTypeId,
    ) -> f64 {
        self.pet
            .expected_ticks(self.queue(machine).machine().type_id, task_type)
    }

    /// Expected time (ticks) at which `machine` would start a task
    /// appended now: expected completion of everything already queued.
    #[inline]
    pub fn expected_ready_ticks(&self, machine: MachineId) -> f64 {
        self.queue(machine).expected_ready_ticks(self.pet, self.now)
    }

    /// Expected completion time (ticks) of `task` if appended to
    /// `machine` now — the quantity MCT/MM/MSD minimise.
    pub fn expected_completion_ticks(
        &self,
        machine: MachineId,
        task: &Task,
    ) -> f64 {
        self.expected_ready_ticks(machine)
            + self.expected_exec_ticks(machine, task.type_id)
    }

    /// Chance of success (Eq. 2) of `task` if appended to `machine` now,
    /// accounting for the full compound uncertainty of the queue.
    pub fn chance_if_appended(&self, machine: MachineId, task: &Task) -> f64 {
        self.queue(machine).chance_if_appended(
            self.bin_spec(),
            self.pet,
            self.now,
            task,
        )
    }

    /// Plans proactive drops on one machine queue (Steps 4–6): walks the
    /// queue head-to-tail, handing each task's current chance of success
    /// to `decide`; returning `true` drops the task and improves the
    /// chances of those behind it within the same walk.
    pub fn plan_queue_drops(
        &self,
        machine: MachineId,
        decide: impl FnMut(&Task, f64) -> bool,
    ) -> Vec<TaskId> {
        self.queue(machine).plan_drops(
            self.bin_spec(),
            self.pet,
            self.now,
            decide,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_model::{Cluster, TaskTypeId};
    use taskprune_prob::Pmf;

    fn setup() -> (Vec<MachineQueue>, PetMatrix) {
        let pet = PetMatrix::new(
            BinSpec::new(100),
            2,
            1,
            vec![
                Pmf::point_mass(2), // machine type 0
                Pmf::point_mass(6), // machine type 1
            ],
        );
        let cluster = Cluster::one_per_type(2);
        let queues: Vec<MachineQueue> = cluster
            .machines()
            .iter()
            .map(|&m| MachineQueue::new(m, 2, 256))
            .collect();
        (queues, pet)
    }

    #[test]
    fn view_exposes_cluster_shape() {
        let (queues, pet) = setup();
        let view = SystemView::new(SimTime(0), &queues, &pet);
        assert_eq!(view.n_machines(), 2);
        assert_eq!(view.total_free_slots(), 4);
        assert!(!view.is_busy(MachineId(0)));
    }

    #[test]
    fn expected_completion_prefers_faster_machine() {
        let (queues, pet) = setup();
        let view = SystemView::new(SimTime(0), &queues, &pet);
        let task = Task::new(0, TaskTypeId(0), SimTime(0), SimTime(5_000));
        let c0 = view.expected_completion_ticks(MachineId(0), &task);
        let c1 = view.expected_completion_ticks(MachineId(1), &task);
        assert!(c0 < c1, "{c0} vs {c1}");
    }

    #[test]
    fn committed_tasks_shift_the_view() {
        let (mut queues, pet) = setup();
        let task = Task::new(0, TaskTypeId(0), SimTime(0), SimTime(5_000));
        queues[0].admit(task);
        let view = SystemView::new(SimTime(0), &queues, &pet);
        assert_eq!(view.free_slots(MachineId(0)), 1);
        assert_eq!(view.waiting_len(MachineId(0)), 1);
        let t2 = Task::new(1, TaskTypeId(0), SimTime(0), SimTime(5_000));
        // Machine 0 now has 2 bins queued ahead: completion 2+2=4 bins vs
        // machine 1's 6 bins.
        let c0 = view.expected_completion_ticks(MachineId(0), &t2);
        let c1 = view.expected_completion_ticks(MachineId(1), &t2);
        assert!(c0 < c1);
        // A tight deadline (bin 3 < completion bin 4) has zero chance on
        // machine 0, while the loose one above is certain.
        let tight = Task::new(2, TaskTypeId(0), SimTime(0), SimTime(400));
        assert_eq!(view.chance_if_appended(MachineId(0), &tight), 0.0);
        assert_eq!(view.chance_if_appended(MachineId(0), &t2), 1.0);
    }
}
