//! Versioned, hash-sealed state snapshots.
//!
//! Every durable piece of federation state — [`crate::SchedulerCore`],
//! [`crate::MachineQueue`], [`crate::IdCompactor`], [`crate::Gateway`] —
//! captures itself into a [`Snapshot`]: a wire envelope carrying a
//! format `version`, a `state_hash` sealed over the payload, an
//! optional `component` tag, and the payload [`Value`] tree itself.
//!
//! Three properties make the envelope production-grade:
//!
//! * **Versioned.** [`SNAPSHOT_VERSION`] stamps every snapshot.
//!   *Decoding* never fails on an unknown version (a newer writer's
//!   data still parses), but [`Snapshot::verify`] rejects it with
//!   [`SnapshotError::UnsupportedVersion`] before any state is
//!   restored from it.
//! * **Hash-sealed.** `state_hash` is an FNV-1a digest over a
//!   canonical walk of the payload tree. Because the whole simulator
//!   is bit-for-bit deterministic, two replicas that executed the same
//!   event stream produce the *same* hash — so a hash mismatch at a
//!   watermark is a desync (or tampering) detector, not noise.
//! * **Forward-compatible decode.** Optional envelope fields follow
//!   the same missing-field convention as the bench `BenchEntry`
//!   records: absent means `None`, so snapshots written before a field
//!   existed keep loading. Restore paths default each legacy-absent
//!   field to "the subsystem didn't exist at capture": a pre-reuse
//!   snapshot restores with an empty gate, a pre-PR9 one with no view
//!   table or steal counters, and a pre-tenancy one with a fresh
//!   `TenantTable` and `sla_rung = None` (SLA-aware pruning off) —
//!   new state never invents history a bit-identity replay would
//!   have to explain.
//!
//! Chain caches and scratch arenas are never serialized — restore
//! rebuilds them lazily, which the incremental-chain determinism
//! contract guarantees is bit-identical.

use serde::{Deserialize, Serialize, Value};

/// The snapshot wire-format version written by this build.
///
/// Bump when the payload layout of any component changes shape in a
/// way old readers cannot tolerate. Readers accept exactly the
/// versions they know how to restore; [`Snapshot::verify`] turns an
/// unknown version into [`SnapshotError::UnsupportedVersion`].
pub const SNAPSHOT_VERSION: u64 = 1;

/// Why a snapshot could not be verified or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written by an unknown (usually newer) format
    /// version; restoring it could silently misinterpret state.
    UnsupportedVersion {
        /// The version stamped on the snapshot.
        found: u64,
    },
    /// The payload does not hash to the sealed `state_hash` — the
    /// snapshot was corrupted in storage, tampered with, or the two
    /// replicas have desynced.
    HashMismatch {
        /// The hash sealed into the envelope when it was written.
        expected: u64,
        /// The hash recomputed over the payload as decoded.
        found: u64,
    },
    /// The payload tree did not decode into the component's state
    /// (wrong types, missing required fields).
    Decode(String),
    /// The payload decoded but does not fit the live component it is
    /// being restored into (wrong shard count, wrong machine count,
    /// over-capacity queue).
    ShapeMismatch {
        /// Which structural expectation was violated.
        what: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads \
                 version {SNAPSHOT_VERSION})"
            ),
            Self::HashMismatch { expected, found } => write!(
                f,
                "snapshot state-hash mismatch: sealed {expected:#018x}, \
                 payload hashes to {found:#018x} (corruption or desync)"
            ),
            Self::Decode(msg) => {
                write!(f, "snapshot payload failed to decode: {msg}")
            }
            Self::ShapeMismatch { what } => {
                write!(f, "snapshot does not fit the live component: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<serde::Error> for SnapshotError {
    fn from(e: serde::Error) -> Self {
        Self::Decode(e.to_string())
    }
}

/// FNV-1a digest over a canonical walk of a [`Value`] tree.
///
/// Deterministic across runs and hosts: every variant contributes a
/// tag byte plus its content bytes (integers little-endian, floats by
/// IEEE-754 bit pattern, object fields in their stable serialized
/// order). This is the hash [`Snapshot::seal`] stamps and
/// [`Snapshot::verify`] recomputes.
pub fn state_hash(v: &Value) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    hash_value(&mut h, v);
    h
}

fn hash_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn hash_value(h: &mut u64, v: &Value) {
    match v {
        Value::Null => hash_bytes(h, &[0]),
        Value::Bool(b) => hash_bytes(h, &[1, u8::from(*b)]),
        Value::UInt(n) => {
            hash_bytes(h, &[2]);
            hash_bytes(h, &n.to_le_bytes());
        }
        Value::Int(n) => {
            hash_bytes(h, &[3]);
            hash_bytes(h, &n.to_le_bytes());
        }
        Value::Float(x) => {
            hash_bytes(h, &[4]);
            hash_bytes(h, &x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            hash_bytes(h, &[5]);
            hash_bytes(h, &(s.len() as u64).to_le_bytes());
            hash_bytes(h, s.as_bytes());
        }
        Value::Array(items) => {
            hash_bytes(h, &[6]);
            hash_bytes(h, &(items.len() as u64).to_le_bytes());
            for item in items {
                hash_value(h, item);
            }
        }
        Value::Object(fields) => {
            hash_bytes(h, &[7]);
            hash_bytes(h, &(fields.len() as u64).to_le_bytes());
            for (k, val) in fields {
                hash_bytes(h, &(k.len() as u64).to_le_bytes());
                hash_bytes(h, k.as_bytes());
                hash_value(h, val);
            }
        }
    }
}

/// A versioned, hash-sealed capture of one component's state.
///
/// Produced by the `snapshot()` methods on [`crate::SchedulerCore`],
/// [`crate::MachineQueue`], [`crate::IdCompactor`] and the federated
/// engines; consumed by the matching `restore()` methods, which call
/// [`Snapshot::verify`] before touching any live state.
///
/// The envelope serializes through the vendored serde like any other
/// record, so snapshots round-trip through `serde_json` for durable
/// storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    version: u64,
    state_hash: u64,
    component: Option<String>,
    payload: Value,
}

impl Snapshot {
    /// Seals `payload` into an envelope stamped with the current
    /// [`SNAPSHOT_VERSION`] and the payload's [`state_hash`].
    pub fn seal(component: &str, payload: Value) -> Self {
        Self {
            version: SNAPSHOT_VERSION,
            state_hash: state_hash(&payload),
            component: Some(component.to_owned()),
            payload,
        }
    }

    /// The wire-format version stamped when the snapshot was written.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The hash sealed over the payload at write time.
    pub fn state_hash(&self) -> u64 {
        self.state_hash
    }

    /// Which component wrote this snapshot, when recorded. Snapshots
    /// from before the tag existed decode as `None` (the
    /// forward-compatible missing-field convention).
    pub fn component(&self) -> Option<&str> {
        self.component.as_deref()
    }

    /// The raw payload tree, unverified. Restore paths must go through
    /// [`Snapshot::verify`] instead.
    pub fn payload(&self) -> &Value {
        &self.payload
    }

    /// Checks the envelope and returns the payload if it is intact:
    /// the version must be one this build reads, and the payload must
    /// hash back to the sealed `state_hash`.
    ///
    /// # Errors
    /// [`SnapshotError::UnsupportedVersion`] for a version this build
    /// does not read; [`SnapshotError::HashMismatch`] when the payload
    /// has been corrupted or the producing replica desynced.
    pub fn verify(&self) -> Result<&Value, SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: self.version,
            });
        }
        let found = state_hash(&self.payload);
        if found != self.state_hash {
            return Err(SnapshotError::HashMismatch {
                expected: self.state_hash,
                found,
            });
        }
        Ok(&self.payload)
    }
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_owned(), self.version.to_value()),
            ("state_hash".to_owned(), self.state_hash.to_value()),
            ("component".to_owned(), self.component.to_value()),
            ("payload".to_owned(), self.payload.clone()),
        ])
    }
}

impl Deserialize for Snapshot {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            version: Deserialize::from_value(v.get_field("version")?)?,
            state_hash: Deserialize::from_value(v.get_field("state_hash")?)?,
            // Written before `component` existed? Still loads — the
            // same convention as `BenchEntry::robustness_pct`.
            component: match v.get_opt("component") {
                Some(f) => Deserialize::from_value(f)?,
                None => None,
            },
            payload: v.get_field("payload")?.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Value {
        Value::Object(vec![
            ("now".to_owned(), Value::UInt(42)),
            (
                "queues".to_owned(),
                Value::Array(vec![Value::Float(0.25), Value::Null]),
            ),
        ])
    }

    #[test]
    fn sealed_snapshot_verifies_and_roundtrips() {
        let snap = Snapshot::seal("unit-test", payload());
        assert_eq!(snap.version(), SNAPSHOT_VERSION);
        assert_eq!(snap.component(), Some("unit-test"));
        assert_eq!(snap.verify().expect("intact"), &payload());

        let wire = snap.to_value();
        let back = Snapshot::from_value(&wire).expect("decodes");
        assert_eq!(back, snap);
        assert_eq!(back.verify().expect("still intact"), &payload());
    }

    #[test]
    fn tampered_payload_is_rejected_by_state_hash() {
        let snap = Snapshot::seal("unit-test", payload());
        let mut wire = snap.to_value();
        // Flip one field deep inside the payload, as silent storage
        // corruption would.
        let Value::Object(fields) = &mut wire else {
            unreachable!()
        };
        let Value::Object(inner) = &mut fields[3].1 else {
            unreachable!()
        };
        inner[0].1 = Value::UInt(43);
        let tampered = Snapshot::from_value(&wire).expect("still decodes");
        let err = tampered.verify().expect_err("hash must catch the flip");
        assert!(
            matches!(err, SnapshotError::HashMismatch { .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("state-hash mismatch"), "{err}");
    }

    #[test]
    fn future_version_decodes_but_refuses_to_verify() {
        let snap = Snapshot::seal("unit-test", payload());
        let mut wire = snap.to_value();
        let Value::Object(fields) = &mut wire else {
            unreachable!()
        };
        fields[0].1 = Value::UInt(SNAPSHOT_VERSION + 7);
        let future = Snapshot::from_value(&wire).expect(
            "decode never fails \
            on version alone",
        );
        assert_eq!(
            future.verify().expect_err("verify must refuse"),
            SnapshotError::UnsupportedVersion {
                found: SNAPSHOT_VERSION + 7
            }
        );
    }

    #[test]
    fn missing_component_field_still_decodes() {
        let snap = Snapshot::seal("unit-test", payload());
        let Value::Object(mut fields) = snap.to_value() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "component");
        let old = Snapshot::from_value(&Value::Object(fields))
            .expect("pre-`component` snapshots must keep loading");
        assert_eq!(old.component(), None);
        assert_eq!(old.verify().expect("intact"), &payload());
    }

    #[test]
    fn hash_distinguishes_shape_not_just_content() {
        // [1,2] vs [[1],[2]] vs {"a":1,"b":2} must all differ.
        let a = Value::Array(vec![Value::UInt(1), Value::UInt(2)]);
        let b = Value::Array(vec![
            Value::Array(vec![Value::UInt(1)]),
            Value::Array(vec![Value::UInt(2)]),
        ]);
        let c = Value::Object(vec![
            ("a".to_owned(), Value::UInt(1)),
            ("b".to_owned(), Value::UInt(2)),
        ]);
        assert_ne!(state_hash(&a), state_hash(&b));
        assert_ne!(state_hash(&a), state_hash(&c));
        assert_ne!(state_hash(&b), state_hash(&c));
    }

    #[test]
    fn errors_display_specifically() {
        let cases: Vec<(SnapshotError, &str)> = vec![
            (SnapshotError::UnsupportedVersion { found: 9 }, "version 9"),
            (
                SnapshotError::HashMismatch {
                    expected: 1,
                    found: 2,
                },
                "mismatch",
            ),
            (SnapshotError::Decode("bad".into()), "bad"),
            (
                SnapshotError::ShapeMismatch {
                    what: "shard count",
                },
                "shard count",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
            // std::error::Error is implemented (satellite: `?` across
            // the facade).
            let _: &dyn std::error::Error = &err;
        }
    }
}
