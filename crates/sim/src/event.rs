//! The event queue driving the simulation.
//!
//! Two event kinds exist — task arrivals and machine completions — and
//! both trigger a mapping event (§II: "a mapping event occurs when a task
//! completes its execution or when a new task arrives"). Ordering is
//! fully deterministic: by time, then completions before arrivals (free
//! capacity before new demand at the same instant), then by stable ids.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use taskprune_model::{MachineId, SimTime, TaskId};

/// A scheduled simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A machine finishes (or would finish) its running task. The task
    /// id guards against stale events after a cancellation: the core
    /// ignores a completion whose task the machine no longer runs
    /// (tasks execute at most once, so the id identifies the start).
    Completion {
        /// The machine that completes.
        machine: MachineId,
        /// The task whose start this event belongs to.
        task: TaskId,
    },
    /// A task arrives into the resource allocator. [`crate::Engine`]
    /// feeds arrivals from the stream directly and never enqueues this
    /// kind; it remains part of the event vocabulary for custom drivers
    /// and pins the ordering contract (completions before arrivals at
    /// equal times).
    Arrival {
        /// Index into the trial's task list.
        task: TaskId,
    },
    /// A synthetic mapping event: scheduled when tasks remain in the
    /// batch queue but no arrival or completion will ever fire again
    /// (every machine idle, all remaining work deferred). Guarantees the
    /// deferred tasks are reconsidered — or reactively dropped — instead
    /// of starving silently.
    Wakeup,
}

impl EventKind {
    /// Sort class: completions first at equal times.
    fn class(&self) -> u8 {
        match self {
            EventKind::Completion { .. } => 0,
            EventKind::Arrival { .. } => 1,
            EventKind::Wakeup => 2,
        }
    }

    /// Stable id used as the final tie-breaker.
    fn stable_id(&self) -> u64 {
        match self {
            EventKind::Completion { machine, .. } => machine.0 as u64,
            EventKind::Arrival { task } => task.0,
            EventKind::Wakeup => 0,
        }
    }
}

/// An event with its firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// What happens.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.kind.class().cmp(&other.kind.class()))
            .then_with(|| self.kind.stable_id().cmp(&other.kind.stable_id()))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of events in deterministic firing order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        self.heap.push(std::cmp::Reverse(event));
    }

    /// Removes and returns the next event in firing order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|r| r.0)
    }

    /// Next event without removing it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|r| &r.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(t: u64, id: u64) -> Event {
        Event {
            time: SimTime(t),
            kind: EventKind::Arrival { task: TaskId(id) },
        }
    }

    fn completion(t: u64, m: u16) -> Event {
        Event {
            time: SimTime(t),
            kind: EventKind::Completion {
                machine: MachineId(m),
                task: TaskId(0),
            },
        }
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(arrival(30, 0));
        q.push(arrival(10, 1));
        q.push(arrival(20, 2));
        assert_eq!(q.pop().unwrap().time, SimTime(10));
        assert_eq!(q.pop().unwrap().time, SimTime(20));
        assert_eq!(q.pop().unwrap().time, SimTime(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn completions_precede_arrivals_at_same_time() {
        let mut q = EventQueue::new();
        q.push(arrival(10, 0));
        q.push(completion(10, 3));
        let first = q.pop().unwrap();
        assert!(matches!(first.kind, EventKind::Completion { .. }));
    }

    #[test]
    fn stable_ids_break_remaining_ties() {
        let mut q = EventQueue::new();
        q.push(arrival(10, 5));
        q.push(arrival(10, 2));
        q.push(completion(10, 7));
        q.push(completion(10, 1));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.kind.stable_id())
            .collect();
        assert_eq!(order, vec![1, 7, 2, 5]);
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(arrival(5, 0));
        q.push(arrival(1, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().time, SimTime(1));
        assert_eq!(q.len(), 2);
    }
}
