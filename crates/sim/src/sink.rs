//! Pluggable observability for the scheduler core.
//!
//! The core reports every task-lifecycle transition and periodic queue
//! snapshot to a [`Sink`]. Observability is a *type parameter* of
//! [`crate::SchedulerCore`] and [`crate::Engine`], so the default
//! [`NullSink`] compiles to nothing at all — tracing costs exactly zero
//! when it is off, with no `Option` branch and no virtual dispatch on
//! the hot mapping-event path.
//!
//! [`crate::TraceLog`] implements `Sink`, turning the previous
//! `Engine::with_trace` special case into one implementation among any
//! number (metrics exporters, stdout printers, test probes, …).

use crate::trace::{QueueSnapshot, TraceEvent, TraceLog};
use taskprune_model::SimTime;

/// A consumer of scheduler observability events.
///
/// All methods have no-op defaults: implementations override only what
/// they care about. `snapshot_due` gates snapshot *construction* — when
/// it returns `false` the core does not even assemble the
/// [`QueueSnapshot`], so a sink that ignores snapshots pays nothing for
/// them.
///
/// `Send` because the owning [`crate::SchedulerCore`] may run as a
/// federation shard on a worker thread of the parallel federated
/// driver (one thread at a time — no `Sync` requirement).
pub trait Sink: Send {
    /// Observes one task-lifecycle transition at simulated time `at`.
    fn record(&mut self, at: SimTime, event: TraceEvent) {
        let _ = (at, event);
    }

    /// Whether a queue snapshot should be taken at the given
    /// mapping-event ordinal (1-based, monotonically increasing).
    fn snapshot_due(&self, mapping_event: u64) -> bool {
        let _ = mapping_event;
        false
    }

    /// Observes a sampled queue snapshot (only called after
    /// [`Sink::snapshot_due`] returned `true`).
    fn record_snapshot(&mut self, snapshot: QueueSnapshot) {
        let _ = snapshot;
    }

    /// Converts the sink into a [`TraceLog`] for
    /// [`crate::SimStats::trace`] once the run finishes. Sinks that do
    /// not accumulate a trace return `None` (the default).
    fn into_trace(self) -> Option<TraceLog>
    where
        Self: Sized,
    {
        None
    }

    /// Captures the sink's accumulated state for a federation
    /// snapshot. Sinks that accumulate nothing keep the default
    /// ([`serde::Value::Null`]); accumulating sinks (a [`TraceLog`])
    /// must override this *and* [`Sink::restore_state`] so a restored
    /// shard's trace stays bit-identical.
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores state captured by [`Sink::snapshot_state`]. The
    /// default accepts only `Null` (the stateless capture).
    ///
    /// # Errors
    /// When `state` is not what this implementation's
    /// `snapshot_state` produces.
    fn restore_state(
        &mut self,
        state: &serde::Value,
    ) -> Result<(), serde::Error> {
        match state {
            serde::Value::Null => Ok(()),
            other => {
                Err(serde::Error::unexpected("null (stateless sink)", other))
            }
        }
    }
}

/// The default sink: ignores everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {}

impl Sink for TraceLog {
    fn record(&mut self, at: SimTime, event: TraceEvent) {
        TraceLog::record(self, at, event);
    }

    fn snapshot_due(&self, mapping_event: u64) -> bool {
        TraceLog::snapshot_due(self, mapping_event)
    }

    fn record_snapshot(&mut self, snapshot: QueueSnapshot) {
        TraceLog::record_snapshot(self, snapshot);
    }

    fn into_trace(self) -> Option<TraceLog> {
        Some(self)
    }

    fn snapshot_state(&self) -> serde::Value {
        serde::Serialize::to_value(self)
    }

    fn restore_state(
        &mut self,
        state: &serde::Value,
    ) -> Result<(), serde::Error> {
        *self = serde::Deserialize::from_value(state)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_model::TaskId;

    #[test]
    fn null_sink_discards_and_never_snapshots() {
        let mut sink = NullSink;
        sink.record(SimTime(1), TraceEvent::Arrived { task: TaskId(0) });
        assert!(!sink.snapshot_due(0));
        assert!(!sink.snapshot_due(16));
        assert!(Sink::into_trace(sink).is_none());
    }

    #[test]
    fn trace_log_sink_accumulates_and_converts() {
        let mut log = TraceLog::new(8, 4);
        Sink::record(
            &mut log,
            SimTime(3),
            TraceEvent::Arrived { task: TaskId(9) },
        );
        assert!(Sink::snapshot_due(&log, 4));
        assert!(!Sink::snapshot_due(&log, 5));
        let trace = Sink::into_trace(log).expect("trace log converts");
        assert_eq!(trace.len(), 1);
    }
}
