//! Per-machine FCFS queues with probabilistic completion-time tracking.
//!
//! Each machine holds at most one *running* task (non-preemptive, §II)
//! and a bounded FCFS queue of *waiting* tasks. Alongside the plain
//! queue, the estimator state implements Eq. 1 incrementally:
//!
//! * `prefix_pmfs[i]` is the convolution of the PETs of the first `i`
//!   waiting tasks (a *relative duration* distribution);
//! * the *base* is the absolute-time completion distribution of the
//!   running task, conditioned on it not having finished yet (or a point
//!   mass at `now` for an idle machine);
//! * the PCT of waiting task `i` is `base ∗ prefix_pmfs[i] ∗ PET(i)`, and
//!   its chance of success (Eq. 2) is evaluated as a double dot product
//!   without materialising that convolution.
//!
//! Chains are truncated at a configurable horizon: probability mass that
//! far in the future can never contribute to an on-time completion, so
//! success queries stay exact (see `taskprune-prob`'s tail-mass
//! semantics).

use std::collections::VecDeque;
use taskprune_model::{BinSpec, Machine, PetMatrix, SimTime, Task, TaskId};
use taskprune_prob::{Bin, Cdf, Pmf};

/// The task currently executing on a machine.
#[derive(Debug, Clone)]
pub struct RunningTask {
    /// The task itself.
    pub task: Task,
    /// When it started executing.
    pub start: SimTime,
    /// Ground-truth completion time (sampled by the engine). Estimators
    /// must never read this; it exists so the engine can schedule the
    /// completion event.
    pub actual_finish: SimTime,
}

/// A machine's execution state plus the PCT estimator state.
#[derive(Debug, Clone)]
pub struct MachineQueue {
    machine: Machine,
    capacity: usize,
    horizon_bins: u64,
    generation: u64,
    running: Option<RunningTask>,
    waiting: VecDeque<Task>,
    /// `prefix_pmfs[i]` = PET(w₀) ∗ … ∗ PET(w_{i−1}); `[0]` = δ(0).
    prefix_pmfs: Vec<Pmf>,
    /// Cumulative views of `prefix_pmfs`, kept in lock-step.
    prefix_cdfs: Vec<Cdf>,
}

impl MachineQueue {
    /// Creates an empty queue for `machine` with the given waiting-slot
    /// capacity and estimator horizon.
    pub fn new(machine: Machine, capacity: usize, horizon_bins: u64) -> Self {
        let zero = Pmf::point_mass(0);
        let zero_cdf = zero.to_cdf();
        Self {
            machine,
            capacity,
            horizon_bins,
            generation: 0,
            running: None,
            waiting: VecDeque::new(),
            prefix_pmfs: vec![zero],
            prefix_cdfs: vec![zero_cdf],
        }
    }

    /// The machine this queue belongs to.
    #[inline]
    pub fn machine(&self) -> Machine {
        self.machine
    }

    /// The currently executing task, if any.
    #[inline]
    pub fn running(&self) -> Option<&RunningTask> {
        self.running.as_ref()
    }

    /// Waiting tasks in FCFS order.
    #[inline]
    pub fn waiting(&self) -> impl ExactSizeIterator<Item = &Task> {
        self.waiting.iter()
    }

    /// Number of free waiting slots.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.capacity.saturating_sub(self.waiting.len())
    }

    /// Waiting-queue length.
    #[inline]
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Whether the machine is executing a task.
    #[inline]
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// Current start-generation (stale completion events carry an older
    /// value and are ignored by the engine).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends `task` to the waiting queue (Eq. 1: the new tail PCT is
    /// the old tail convolved with the task's PET).
    ///
    /// # Panics
    /// If no waiting slot is free.
    pub fn admit(&mut self, task: Task, pet_matrix: &PetMatrix) {
        assert!(self.free_slots() > 0, "admit into a full machine queue");
        let pet = pet_matrix.pet(self.machine.type_id, task.type_id);
        let last = self
            .prefix_pmfs
            .last()
            .expect("prefix chain is never empty");
        let mut next = last.convolve(pet);
        next.truncate_to_horizon(self.horizon_bins);
        self.prefix_cdfs.push(next.to_cdf());
        self.prefix_pmfs.push(next);
        self.waiting.push_back(task);
    }

    /// Removes the head waiting task so the engine can start it.
    /// Returns `None` if the queue is empty or a task is already running.
    pub fn pop_head_for_start(
        &mut self,
        pet_matrix: &PetMatrix,
    ) -> Option<Task> {
        if self.running.is_some() {
            return None;
        }
        let task = self.waiting.pop_front()?;
        self.rebuild_chain(pet_matrix);
        Some(task)
    }

    /// Marks `task` as running. The engine supplies the sampled
    /// ground-truth finish time. Returns the new generation for the
    /// completion event.
    pub fn set_running(
        &mut self,
        task: Task,
        start: SimTime,
        actual_finish: SimTime,
    ) -> u64 {
        assert!(self.running.is_none(), "machine already busy");
        self.generation += 1;
        self.running = Some(RunningTask {
            task,
            start,
            actual_finish,
        });
        self.generation
    }

    /// Completes the running task, returning it.
    pub fn complete_running(&mut self) -> RunningTask {
        self.running.take().expect("completion on an idle machine")
    }

    /// Cancels the running task (the optional `cancel_running_late`
    /// policy). Bumps the generation so the in-flight completion event
    /// becomes stale.
    pub fn cancel_running(&mut self) -> RunningTask {
        let rt = self.running.take().expect("cancel on an idle machine");
        self.generation += 1;
        rt
    }

    /// Removes waiting tasks that already missed their deadline at `now`
    /// (reactive dropping, Step 1 of the pruning procedure — applied by
    /// every configuration per §II).
    pub fn drop_missed_deadlines(
        &mut self,
        now: SimTime,
        pet_matrix: &PetMatrix,
    ) -> Vec<Task> {
        if self.waiting.iter().all(|t| !t.is_past_deadline(now)) {
            return Vec::new();
        }
        let mut dropped = Vec::new();
        self.waiting.retain(|t| {
            if t.is_past_deadline(now) {
                dropped.push(*t);
                false
            } else {
                true
            }
        });
        self.rebuild_chain(pet_matrix);
        dropped
    }

    /// Removes the given waiting tasks (proactive drops chosen by the
    /// pruner). Ids not present are ignored. Returns the removed tasks.
    pub fn remove_waiting(
        &mut self,
        ids: &[TaskId],
        pet_matrix: &PetMatrix,
    ) -> Vec<Task> {
        if ids.is_empty() {
            return Vec::new();
        }
        let mut removed = Vec::new();
        self.waiting.retain(|t| {
            if ids.contains(&t.id) {
                removed.push(*t);
                false
            } else {
                true
            }
        });
        if !removed.is_empty() {
            self.rebuild_chain(pet_matrix);
        }
        removed
    }

    /// Recomputes the prefix chains from the current waiting queue.
    fn rebuild_chain(&mut self, pet_matrix: &PetMatrix) {
        self.prefix_pmfs.clear();
        self.prefix_cdfs.clear();
        let zero = Pmf::point_mass(0);
        self.prefix_cdfs.push(zero.to_cdf());
        self.prefix_pmfs.push(zero);
        // Collect PETs first: `waiting` cannot be borrowed while pushing.
        let pets: Vec<&Pmf> = self
            .waiting
            .iter()
            .map(|t| pet_matrix.pet(self.machine.type_id, t.type_id))
            .collect();
        for pet in pets {
            let last = self.prefix_pmfs.last().expect("chain is never empty");
            let mut next = last.convolve(pet);
            next.truncate_to_horizon(self.horizon_bins);
            self.prefix_cdfs.push(next.to_cdf());
            self.prefix_pmfs.push(next);
        }
    }

    /// The absolute-bin distribution of when the machine becomes free
    /// for the first waiting task: the running task's PCT conditioned on
    /// "still running at `now`", or a point mass at `now` when idle.
    pub fn base_pmf(
        &self,
        bin_spec: BinSpec,
        pet_matrix: &PetMatrix,
        now: SimTime,
    ) -> Pmf {
        let now_bin = bin_spec.bin_of(now);
        match &self.running {
            None => Pmf::point_mass(now_bin),
            Some(rt) => {
                let pet = pet_matrix.pet(self.machine.type_id, rt.task.type_id);
                let start_bin = bin_spec.bin_of(rt.start);
                let absolute = pet.shift(start_bin);
                if now_bin == 0 {
                    absolute
                } else {
                    // Still running ⇒ completion bin ≥ now_bin.
                    absolute.condition_greater_than(now_bin - 1)
                }
            }
        }
    }

    /// Chance of success (Eq. 2) for `task` if appended at the tail of
    /// this queue right now.
    pub fn chance_if_appended(
        &self,
        bin_spec: BinSpec,
        pet_matrix: &PetMatrix,
        now: SimTime,
        task: &Task,
    ) -> f64 {
        let base = self.base_pmf(bin_spec, pet_matrix, now);
        let chain_cdf = self.prefix_cdfs.last().expect("chain is never empty");
        let pet = pet_matrix.pet(self.machine.type_id, task.type_id);
        chance_of_success(
            &base,
            chain_cdf,
            pet,
            bin_spec.deadline_bin(task.deadline),
        )
    }

    /// Walks the waiting queue head-to-tail computing each task's chance
    /// of success, *assuming all drops already decided in this walk have
    /// happened* (dropping a task removes its PET from the chain of every
    /// task behind it — the compound-uncertainty reduction of §II).
    ///
    /// `decide(task, chance)` returns `true` to drop. The queue itself is
    /// not modified; apply the returned ids with [`Self::remove_waiting`].
    pub fn plan_drops(
        &self,
        bin_spec: BinSpec,
        pet_matrix: &PetMatrix,
        now: SimTime,
        mut decide: impl FnMut(&Task, f64) -> bool,
    ) -> Vec<TaskId> {
        if self.waiting.is_empty() {
            return Vec::new();
        }
        let base = self.base_pmf(bin_spec, pet_matrix, now);
        let mut drops = Vec::new();
        // Until the first drop the cached prefix chains are exact; after
        // it we re-convolve the surviving suffix on the fly.
        let mut live_chain: Option<(Pmf, Cdf)> = None;
        for (i, task) in self.waiting.iter().enumerate() {
            let pet = pet_matrix.pet(self.machine.type_id, task.type_id);
            let deadline_bin = bin_spec.deadline_bin(task.deadline);
            let chance = match &live_chain {
                None => chance_of_success(
                    &base,
                    &self.prefix_cdfs[i],
                    pet,
                    deadline_bin,
                ),
                Some((_, cdf)) => {
                    chance_of_success(&base, cdf, pet, deadline_bin)
                }
            };
            if decide(task, chance) {
                drops.push(task.id);
                if live_chain.is_none() {
                    let pmf = self.prefix_pmfs[i].clone();
                    let cdf = pmf.to_cdf();
                    live_chain = Some((pmf, cdf));
                }
            } else if let Some((pmf, cdf)) = &mut live_chain {
                let mut next = pmf.convolve(pet);
                next.truncate_to_horizon(self.horizon_bins);
                *cdf = next.to_cdf();
                *pmf = next;
            }
        }
        drops
    }

    /// Deterministic expected-completion accounting used by the classic
    /// heuristics (MCT, MM, …): expected finish of the running task
    /// (never earlier than `now`), plus the expected execution times of
    /// all waiting tasks. In ticks.
    pub fn expected_ready_ticks(
        &self,
        pet_matrix: &PetMatrix,
        now: SimTime,
    ) -> f64 {
        let mut t = match &self.running {
            None => now.ticks() as f64,
            Some(rt) => {
                let e = rt.start.ticks() as f64
                    + pet_matrix
                        .expected_ticks(self.machine.type_id, rt.task.type_id);
                e.max(now.ticks() as f64 + 1.0)
            }
        };
        for w in &self.waiting {
            t += pet_matrix.expected_ticks(self.machine.type_id, w.type_id);
        }
        t
    }

    /// All tasks still owned by this queue (running + waiting), used to
    /// mark leftovers as unfinished at simulation end.
    pub fn drain_all(&mut self) -> Vec<Task> {
        let mut out: Vec<Task> =
            self.running.take().map(|rt| rt.task).into_iter().collect();
        out.extend(self.waiting.drain(..));
        self.prefix_pmfs.truncate(1);
        self.prefix_cdfs.truncate(1);
        out
    }
}

/// `P(base + chain + pet ≤ deadline_bin)` evaluated as a double dot
/// product: Σₓ pet(x) · Σₐ base(a) · chain_cdf(deadline − x − a).
///
/// `base` is absolute bins, `chain_cdf` and `pet` relative bins. This is
/// Eq. 2 without materialising the Eq. 1 convolution; exactness is
/// property-tested against the explicit convolution.
pub fn chance_of_success(
    base: &Pmf,
    chain_cdf: &Cdf,
    pet: &Pmf,
    deadline_bin: Bin,
) -> f64 {
    let mut total = 0.0;
    for (x, px) in pet.iter() {
        if px == 0.0 || x > deadline_bin {
            continue;
        }
        let rem = deadline_bin - x;
        let mut inner = 0.0;
        for (a, pa) in base.iter() {
            if a > rem {
                break; // base bins ascend; later terms are all zero
            }
            if pa == 0.0 {
                continue;
            }
            inner += pa * chain_cdf.at(rem - a);
        }
        total += px * inner;
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_model::{BinSpec, Cluster, TaskTypeId};

    const BIN: u64 = 100;

    /// 1 machine type × 2 task types with easily hand-checked PETs.
    fn pet_matrix() -> PetMatrix {
        let spec = BinSpec::new(BIN);
        PetMatrix::new(
            spec,
            1,
            2,
            vec![
                Pmf::from_points(&[(2, 0.5), (4, 0.5)]).unwrap(), // type 0
                Pmf::point_mass(3),                               // type 1
            ],
        )
    }

    fn queue() -> MachineQueue {
        let cluster = Cluster::one_per_type(1);
        MachineQueue::new(
            cluster.machine(taskprune_model::MachineId(0)),
            4,
            256,
        )
    }

    fn task(id: u64, type_id: u16, deadline_ticks: u64) -> Task {
        Task::new(id, TaskTypeId(type_id), SimTime(0), SimTime(deadline_ticks))
    }

    #[test]
    fn admit_tracks_slots_and_chain() {
        let pm = pet_matrix();
        let mut q = queue();
        assert_eq!(q.free_slots(), 4);
        q.admit(task(0, 1, 10_000), &pm);
        q.admit(task(1, 1, 10_000), &pm);
        assert_eq!(q.free_slots(), 2);
        assert_eq!(q.waiting_len(), 2);
        // Chain after two point-mass(3) PETs: prefix[2] = δ(6).
        assert_eq!(q.prefix_pmfs[2], Pmf::point_mass(6));
    }

    #[test]
    #[should_panic(expected = "full")]
    fn admit_beyond_capacity_panics() {
        let pm = pet_matrix();
        let mut q = queue();
        for i in 0..5 {
            q.admit(task(i, 1, 10_000), &pm);
        }
    }

    #[test]
    fn chance_on_idle_machine_matches_hand_computation() {
        let pm = pet_matrix();
        let q = queue();
        let spec = pm.bin_spec();
        // Idle at t=0: PCT of a type-0 task = its PET {2:0.5, 4:0.5}.
        // Deadline at tick 300 → deadline_bin 2 → P = 0.5.
        let t = task(0, 0, 300);
        let c = q.chance_if_appended(spec, &pm, SimTime(0), &t);
        assert!((c - 0.5).abs() < 1e-12, "chance {c}");
        // Deadline 500 → bin 4 → P = 1.0.
        let t = task(1, 0, 500);
        let c = q.chance_if_appended(spec, &pm, SimTime(0), &t);
        assert!((c - 1.0).abs() < 1e-12);
        // Deadline 200 → bin 1 → P = 0.
        let t = task(2, 0, 200);
        let c = q.chance_if_appended(spec, &pm, SimTime(0), &t);
        assert!(c.abs() < 1e-12);
    }

    #[test]
    fn chance_behind_queued_task_compounds() {
        let pm = pet_matrix();
        let mut q = queue();
        let spec = pm.bin_spec();
        // δ(3) ahead.
        q.admit(task(0, 1, 10_000), &pm);
        // Type-0 task behind it: completion = 3 + {2:0.5, 4:0.5}.
        // Deadline bin 5 (deadline 600) → P = 0.5.
        let t = task(1, 0, 600);
        let c = q.chance_if_appended(spec, &pm, SimTime(0), &t);
        assert!((c - 0.5).abs() < 1e-12, "chance {c}");
    }

    #[test]
    fn chance_accounts_for_conditioned_running_task() {
        let pm = pet_matrix();
        let mut q = queue();
        let spec = pm.bin_spec();
        // Start a type-0 task ({2:0.5,4:0.5}) at t=0; at now=300 (bin 3)
        // it is still running ⇒ its completion must be bin 4 (prob 1
        // after conditioning away the bin-2 outcome).
        let rt = task(0, 0, 100_000);
        q.set_running(rt, SimTime(0), SimTime(450));
        let t = task(1, 1, 800); // PET δ(3); completion = bin 4 + 3 = 7.
        let c_tight =
            q.chance_if_appended(spec, &pm, SimTime(300), &task(1, 1, 700));
        let c_loose =
            q.chance_if_appended(spec, &pm, SimTime(300), &task(2, 1, 800));
        // Deadline bin of 700 is 6 < 7 ⇒ impossible.
        assert!(c_tight.abs() < 1e-12, "tight {c_tight}");
        // Deadline bin of 800 is 7 ⇒ certain.
        assert!((c_loose - 1.0).abs() < 1e-12, "loose {c_loose}");
        let _ = t;
    }

    #[test]
    fn pop_head_rebuilds_chain() {
        let pm = pet_matrix();
        let mut q = queue();
        q.admit(task(0, 1, 10_000), &pm);
        q.admit(task(1, 1, 10_000), &pm);
        let head = q.pop_head_for_start(&pm).unwrap();
        assert_eq!(head.id, TaskId(0));
        assert_eq!(q.waiting_len(), 1);
        assert_eq!(q.prefix_pmfs.len(), 2);
        assert_eq!(q.prefix_pmfs[1], Pmf::point_mass(3));
    }

    #[test]
    fn pop_head_refuses_while_busy() {
        let pm = pet_matrix();
        let mut q = queue();
        q.set_running(task(9, 1, 10_000), SimTime(0), SimTime(100));
        q.admit(task(0, 1, 10_000), &pm);
        assert!(q.pop_head_for_start(&pm).is_none());
    }

    #[test]
    fn generation_bumps_on_start_and_cancel() {
        let pm = pet_matrix();
        let mut q = queue();
        let g1 = q.set_running(task(0, 1, 10_000), SimTime(0), SimTime(10));
        q.complete_running();
        let g2 = q.set_running(task(1, 1, 10_000), SimTime(10), SimTime(20));
        assert!(g2 > g1);
        let rt = q.cancel_running();
        assert_eq!(rt.task.id, TaskId(1));
        assert!(q.generation() > g2);
        let _ = pm;
    }

    #[test]
    fn reactive_drops_remove_expired_tasks() {
        let pm = pet_matrix();
        let mut q = queue();
        q.admit(task(0, 1, 100), &pm);
        q.admit(task(1, 1, 900), &pm);
        let dropped = q.drop_missed_deadlines(SimTime(500), &pm);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].id, TaskId(0));
        assert_eq!(q.waiting_len(), 1);
        assert_eq!(q.prefix_pmfs.len(), 2);
    }

    #[test]
    fn remove_waiting_rebuilds_chain() {
        let pm = pet_matrix();
        let mut q = queue();
        q.admit(task(0, 0, 10_000), &pm);
        q.admit(task(1, 1, 10_000), &pm);
        q.admit(task(2, 1, 10_000), &pm);
        let removed = q.remove_waiting(&[TaskId(1)], &pm);
        assert_eq!(removed.len(), 1);
        assert_eq!(q.waiting_len(), 2);
        // Chain is now PET(t0) ∗ PET(t2) = {2,4}·δ(3) → {5:0.5, 7:0.5}.
        assert_eq!(q.prefix_pmfs.len(), 3);
        assert!(
            (q.prefix_pmfs[2].prob_at(5) - 0.5).abs() < 1e-12
                && (q.prefix_pmfs[2].prob_at(7) - 0.5).abs() < 1e-12
        );
    }

    #[test]
    fn plan_drops_recomputes_chances_behind_drops() {
        let pm = pet_matrix();
        let mut q = queue();
        // Two type-1 tasks (δ(3) each) then a type-0 task.
        q.admit(task(0, 1, 10_000), &pm);
        q.admit(task(1, 1, 10_000), &pm);
        // Task 2's deadline bin: base 0 + 3 + 3 + {2:.5,4:.5} ⇒ bins 8/10.
        // With deadline at bin 8 (tick 900) chance is 0.5.
        q.admit(task(2, 0, 900), &pm);
        // Decide: drop task 0 only; task 2's chance must then *improve*
        // to bins 5/7 ⇒ certain (deadline bin 8).
        let mut seen = Vec::new();
        let drops =
            q.plan_drops(pm.bin_spec(), &pm, SimTime(0), |task, chance| {
                seen.push((task.id, chance));
                task.id == TaskId(0)
            });
        assert_eq!(drops, vec![TaskId(0)]);
        assert_eq!(seen.len(), 3);
        // Without drops task 2's chance would be 0.5; after dropping
        // task 0 the scan must report the improved 1.0.
        let last = seen.last().unwrap();
        assert_eq!(last.0, TaskId(2));
        assert!((last.1 - 1.0).abs() < 1e-12, "chance {}", last.1);
    }

    #[test]
    fn plan_drops_uses_cached_prefixes_when_nothing_drops() {
        let pm = pet_matrix();
        let mut q = queue();
        q.admit(task(0, 1, 350), &pm); // bin 3 vs deadline bin 2 → 0
        q.admit(task(1, 1, 10_000), &pm);
        let mut chances = Vec::new();
        let drops = q.plan_drops(pm.bin_spec(), &pm, SimTime(0), |_, c| {
            chances.push(c);
            false
        });
        assert!(drops.is_empty());
        assert!(chances[0].abs() < 1e-12);
        assert!((chances[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_ready_accounts_for_running_and_waiting() {
        let pm = pet_matrix();
        let mut q = queue();
        // Idle: ready = now.
        assert_eq!(q.expected_ready_ticks(&pm, SimTime(500)), 500.0);
        // Running type-1 (E = (3+0.5)·100 = 350 ticks) started at 0.
        q.set_running(task(0, 1, 10_000), SimTime(0), SimTime(999));
        assert_eq!(q.expected_ready_ticks(&pm, SimTime(100)), 350.0);
        // Overdue running task: floor at now + 1.
        assert_eq!(q.expected_ready_ticks(&pm, SimTime(400)), 401.0);
        // Plus a waiting type-0 (E = (3+0.5)·100 = 350).
        q.admit(task(1, 0, 10_000), &pm);
        assert_eq!(q.expected_ready_ticks(&pm, SimTime(100)), 700.0);
    }

    #[test]
    fn drain_returns_everything() {
        let pm = pet_matrix();
        let mut q = queue();
        q.set_running(task(0, 1, 10_000), SimTime(0), SimTime(10));
        q.admit(task(1, 1, 10_000), &pm);
        q.admit(task(2, 0, 10_000), &pm);
        let all = q.drain_all();
        assert_eq!(all.len(), 3);
        assert_eq!(q.waiting_len(), 0);
        assert!(!q.is_busy());
    }

    #[test]
    fn chance_of_success_matches_full_convolution() {
        // Randomised agreement check against the explicit Eq. 1 path.
        let base =
            Pmf::from_points(&[(10, 0.3), (12, 0.45), (15, 0.25)]).unwrap();
        let chain = Pmf::from_points(&[(0, 0.2), (3, 0.5), (7, 0.3)]).unwrap();
        let pet = Pmf::from_points(&[(1, 0.6), (5, 0.4)]).unwrap();
        let explicit = base.convolve(&chain).convolve(&pet);
        let chain_cdf = chain.to_cdf();
        for deadline in 8..30 {
            let fast = chance_of_success(&base, &chain_cdf, &pet, deadline);
            let slow = explicit.success_probability(deadline);
            assert!(
                (fast - slow).abs() < 1e-12,
                "deadline {deadline}: {fast} vs {slow}"
            );
        }
    }
}
