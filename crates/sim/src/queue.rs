//! Per-machine FCFS queues with probabilistic completion-time tracking.
//!
//! Each machine holds at most one *running* task (non-preemptive, §II)
//! and a bounded FCFS queue of *waiting* tasks. Alongside the plain
//! queue, the estimator state implements Eq. 1 incrementally:
//!
//! * `chain[i]` is the convolution of the PETs of the first `i`
//!   waiting tasks (a *relative duration* distribution);
//! * the *base* is the absolute-time completion distribution of the
//!   running task, conditioned on it not having finished yet (or a point
//!   mass at `now` for an idle machine);
//! * the PCT of waiting task `i` is `base ∗ chain[i] ∗ PET(i)`, and
//!   its chance of success (Eq. 2) is evaluated as a double dot product
//!   without materialising that convolution.
//!
//! # Incremental maintenance and the convolution arena
//!
//! Chains are maintained *lazily*: structural mutations (admitting,
//! popping the head for execution, reactive or proactive drops) never
//! re-convolve anything — they only record the first chain position the
//! mutation invalidated. The next estimate query repairs the chain from
//! that position, reusing each slot's existing window allocation via
//! `convolve_into`/`to_cdf_into` and one [`ConvScratch`] per queue (FFT
//! buffers + cached twiddle plans). Consequences:
//!
//! * a proactive drop at queue position `k` costs `len − k` tail
//!   convolutions instead of a full O(len) rebuild — the prefixes ahead
//!   of the drop are reused as-is;
//! * back-to-back mutations inside one mapping event (reactive drops,
//!   then a pop, then proactive drops) coalesce into a *single* suffix
//!   repair at the first query instead of one full rebuild each;
//! * admitting into a clean chain is exactly one tail convolution, so
//!   the common arrival path stays O(1);
//! * steady-state mapping events perform no heap allocation in the
//!   estimator: chain slots, CDF views, the base distribution, and the
//!   drop-planning walk all reuse arena buffers.
//!
//! Deconvolution is deliberately avoided: removing a PET from a
//! truncated convolution is numerically ill-posed (the horizon lumps
//! tail mass irreversibly), so invalidated suffixes are re-convolved
//! forward. Because the repair performs the exact same
//! convolve-then-truncate operations, in the same order, on the same
//! operands as a from-scratch rebuild, the incremental chains are
//! **bit-identical** to rebuilt ones — `queue_fuzz` pins that
//! equivalence and the golden/determinism suites depend on it.
//!
//! Chains are truncated at a configurable horizon: probability mass that
//! far in the future can never contribute to an on-time completion, so
//! success queries stay exact (see `taskprune-prob`'s tail-mass
//! semantics).

use crate::snapshot::{Snapshot, SnapshotError};
use serde::{Deserialize, Serialize, Value};
use std::cell::RefCell;
use std::collections::VecDeque;
use taskprune_model::{
    BinSpec, Machine, MachineTypeId, PetMatrix, SimTime, Task, TaskId,
};
use taskprune_prob::{convolve_into, Bin, Cdf, ConvScratch, Pmf};

/// The task currently executing on a machine.
///
/// Deliberately carries no finish time: when the task completes is the
/// *caller's* knowledge (a sampled duration in the simulation driver, a
/// worker callback in a live deployment), and estimators must never see
/// it — they reason only from the PET and `start`.
#[derive(Debug, Clone, Copy)]
pub struct RunningTask {
    /// The task itself.
    pub task: Task,
    /// When it started executing.
    pub start: SimTime,
}

/// The lazily-repaired prefix-chain cache plus the per-queue convolution
/// arena. Interior-mutable so estimate queries on `&MachineQueue` can
/// repair the chain in place.
#[derive(Debug, Clone)]
struct ChainCache {
    /// Slot `i` = PET(w₀) ∗ … ∗ PET(w_{i−1}); slot 0 = δ(0). Physical
    /// length may exceed the live chain: slots past the current queue
    /// length are spare buffers whose allocations get reused.
    pmfs: Vec<Pmf>,
    /// Cumulative views of `pmfs`, kept in lock-step.
    cdfs: Vec<Cdf>,
    /// Number of leading slots that are valid for the current waiting
    /// list. Always ≥ 1: slot 0 is constant.
    valid: usize,
    /// FFT buffers and cached twiddle plans for `convolve_into`.
    scratch: ConvScratch,
    /// Rotating live-chain buffers for the `plan_drops` walk.
    walk_pmf: Pmf,
    walk_next: Pmf,
    walk_cdf: Cdf,
    /// Base buffer dedicated to the `plan_drops` walk, separate from
    /// `base` so re-entrant chance queries from a `decide` callback
    /// cannot clobber the walk's base distribution.
    walk_base: Pmf,
    /// Guards the walk buffers: a nested `plan_drops` on the same queue
    /// would silently corrupt them, so it fails loudly instead.
    walk_active: bool,
    /// Buffer for the base (machine-ready-time) distribution.
    base: Pmf,
}

impl ChainCache {
    fn new() -> Self {
        let zero = Pmf::point_mass(0);
        let zero_cdf = zero.to_cdf();
        Self {
            pmfs: vec![zero.clone()],
            cdfs: vec![zero_cdf.clone()],
            valid: 1,
            scratch: ConvScratch::new(),
            walk_pmf: zero.clone(),
            walk_next: zero.clone(),
            walk_cdf: zero_cdf,
            walk_base: zero.clone(),
            walk_active: false,
            base: zero,
        }
    }

    /// Records that the waiting task at `first_changed` (and everything
    /// behind it) no longer matches the cached chain.
    fn invalidate_from(&mut self, first_changed: usize) {
        self.valid = self.valid.min(first_changed + 1);
    }

    /// Repairs the chain up to the current queue length, re-convolving
    /// only the invalidated suffix into reused slot allocations.
    fn repair(
        &mut self,
        waiting: &VecDeque<Task>,
        machine_type: MachineTypeId,
        pet_matrix: &PetMatrix,
        horizon_bins: Bin,
    ) {
        let target = waiting.len() + 1;
        while self.valid < target {
            let i = self.valid;
            let pet = pet_matrix.pet(machine_type, waiting[i - 1].type_id);
            if self.pmfs.len() <= i {
                self.pmfs.push(Pmf::point_mass(0));
                self.cdfs.push(Cdf::point_mass(0));
            }
            let (done, rest) = self.pmfs.split_at_mut(i);
            let slot = &mut rest[0];
            convolve_into(&done[i - 1], pet, slot, &mut self.scratch);
            slot.truncate_to_horizon(horizon_bins);
            slot.to_cdf_into(&mut self.cdfs[i]);
            self.valid = i + 1;
        }
    }
}

/// A machine's execution state plus the PCT estimator state.
#[derive(Debug, Clone)]
pub struct MachineQueue {
    machine: Machine,
    capacity: usize,
    horizon_bins: u64,
    generation: u64,
    running: Option<RunningTask>,
    waiting: VecDeque<Task>,
    chain: RefCell<ChainCache>,
}

impl MachineQueue {
    /// Creates an empty queue for `machine` with the given waiting-slot
    /// capacity and estimator horizon.
    pub fn new(machine: Machine, capacity: usize, horizon_bins: u64) -> Self {
        Self {
            machine,
            capacity,
            horizon_bins,
            generation: 0,
            running: None,
            waiting: VecDeque::new(),
            chain: RefCell::new(ChainCache::new()),
        }
    }

    /// The machine this queue belongs to.
    #[inline]
    pub fn machine(&self) -> Machine {
        self.machine
    }

    /// The currently executing task, if any.
    #[inline]
    pub fn running(&self) -> Option<&RunningTask> {
        self.running.as_ref()
    }

    /// Waiting tasks in FCFS order.
    #[inline]
    pub fn waiting(&self) -> impl ExactSizeIterator<Item = &Task> {
        self.waiting.iter()
    }

    /// Number of free waiting slots.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.capacity.saturating_sub(self.waiting.len())
    }

    /// Waiting-queue length.
    #[inline]
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Whether the machine is executing a task.
    #[inline]
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// Current start-generation (stale completion events carry an older
    /// value and are ignored by the engine).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends `task` to the waiting queue (Eq. 1: the new tail PCT is
    /// the old tail convolved with the task's PET). O(1): extending a
    /// clean chain costs exactly one tail convolution at the next
    /// estimate query; on an invalidated chain the extension folds into
    /// the pending suffix repair — and an admit whose task is popped or
    /// dropped before any query costs nothing at all.
    ///
    /// # Panics
    /// If no waiting slot is free.
    pub fn admit(&mut self, task: Task) {
        assert!(self.free_slots() > 0, "admit into a full machine queue");
        self.waiting.push_back(task);
    }

    /// Removes the head waiting task so the engine can start it.
    /// Returns `None` if the queue is empty or a task is already running.
    ///
    /// O(1): every chain position loses the head's PET, so the whole
    /// chain is invalidated and rebuilt lazily at the next query —
    /// coalescing with any other mutations in the same mapping event.
    pub fn pop_head_for_start(&mut self) -> Option<Task> {
        if self.running.is_some() {
            return None;
        }
        let task = self.waiting.pop_front()?;
        self.chain.get_mut().invalidate_from(0);
        Some(task)
    }

    /// Marks `task` as running from `start`. When it finishes is the
    /// caller's knowledge, reported later via the core's `complete`.
    /// Returns the new start-generation.
    pub fn set_running(&mut self, task: Task, start: SimTime) -> u64 {
        assert!(self.running.is_none(), "machine already busy");
        self.generation += 1;
        self.running = Some(RunningTask { task, start });
        self.generation
    }

    /// Completes the running task, returning it.
    pub fn complete_running(&mut self) -> RunningTask {
        self.running.take().expect("completion on an idle machine")
    }

    /// Cancels the running task (the optional `cancel_running_late`
    /// policy). Bumps the generation so the in-flight completion event
    /// becomes stale.
    pub fn cancel_running(&mut self) -> RunningTask {
        let rt = self.running.take().expect("cancel on an idle machine");
        self.generation += 1;
        rt
    }

    /// Removes waiting tasks that already missed their deadline at `now`
    /// (reactive dropping, Step 1 of the pruning procedure — applied by
    /// every configuration per §II). Invalidates the chain from the
    /// first expired position only.
    pub fn drop_missed_deadlines(&mut self, now: SimTime) -> Vec<Task> {
        let mut dropped = Vec::new();
        let mut first_removed = None;
        let mut idx = 0usize;
        self.waiting.retain(|t| {
            let expired = t.is_past_deadline(now);
            if expired {
                first_removed.get_or_insert(idx);
                dropped.push(*t);
            }
            idx += 1;
            !expired
        });
        if let Some(first) = first_removed {
            self.chain.get_mut().invalidate_from(first);
        }
        dropped
    }

    /// Removes the given waiting tasks (proactive drops chosen by the
    /// pruner). Ids not present are ignored. Returns the removed tasks.
    ///
    /// The id set is sorted once and probed by binary search, so a batch
    /// removal is O(queue · log ids) instead of the former O(queue·ids)
    /// linear scans; the chain is invalidated from the first removed
    /// position only.
    pub fn remove_waiting(&mut self, ids: &[TaskId]) -> Vec<Task> {
        if ids.is_empty() {
            return Vec::new();
        }
        let mut sorted: Vec<TaskId> = ids.to_vec();
        sorted.sort_unstable();
        let mut removed = Vec::new();
        let mut first_removed = None;
        let mut idx = 0usize;
        self.waiting.retain(|t| {
            let hit = sorted.binary_search(&t.id).is_ok();
            if hit {
                first_removed.get_or_insert(idx);
                removed.push(*t);
            }
            idx += 1;
            !hit
        });
        if let Some(first) = first_removed {
            self.chain.get_mut().invalidate_from(first);
        }
        removed
    }

    /// Writes the base distribution into `out`: the absolute-bin
    /// distribution of when the machine becomes free for the first
    /// waiting task — the running task's PCT conditioned on "still
    /// running at `now`", or a point mass at `now` when idle.
    fn write_base(
        &self,
        bin_spec: BinSpec,
        pet_matrix: &PetMatrix,
        now: SimTime,
        out: &mut Pmf,
    ) {
        let now_bin = bin_spec.bin_of(now);
        match &self.running {
            None => out.set_point_mass(now_bin),
            Some(rt) => {
                let pet = pet_matrix.pet(self.machine.type_id, rt.task.type_id);
                pet.shift_into(bin_spec.bin_of(rt.start), out);
                if now_bin > 0 {
                    // Still running ⇒ completion bin ≥ now_bin.
                    out.condition_greater_than_in_place(now_bin - 1);
                }
            }
        }
    }

    /// The base distribution as an owned PMF (see [`Self::write_base`];
    /// the query paths use the arena-buffered variant).
    pub fn base_pmf(
        &self,
        bin_spec: BinSpec,
        pet_matrix: &PetMatrix,
        now: SimTime,
    ) -> Pmf {
        let mut out = Pmf::point_mass(0);
        self.write_base(bin_spec, pet_matrix, now, &mut out);
        out
    }

    /// Chance of success (Eq. 2) for `task` if appended at the tail of
    /// this queue right now.
    pub fn chance_if_appended(
        &self,
        bin_spec: BinSpec,
        pet_matrix: &PetMatrix,
        now: SimTime,
        task: &Task,
    ) -> f64 {
        let mut chain = self.chain.borrow_mut();
        chain.repair(
            &self.waiting,
            self.machine.type_id,
            pet_matrix,
            self.horizon_bins,
        );
        let cache = &mut *chain;
        self.write_base(bin_spec, pet_matrix, now, &mut cache.base);
        let chain_cdf = &cache.cdfs[self.waiting.len()];
        let pet = pet_matrix.pet(self.machine.type_id, task.type_id);
        chance_of_success(
            &cache.base,
            chain_cdf,
            pet,
            bin_spec.deadline_bin(task.deadline),
        )
    }

    /// Walks the waiting queue head-to-tail computing each task's chance
    /// of success, *assuming all drops already decided in this walk have
    /// happened* (dropping a task removes its PET from the chain of every
    /// task behind it — the compound-uncertainty reduction of §II).
    ///
    /// `decide(task, chance)` returns `true` to drop. The queue itself is
    /// not modified; apply the returned ids with [`Self::remove_waiting`].
    /// The post-drop live chain re-convolves into rotating arena buffers
    /// (with a walk-dedicated base), so the walk allocates nothing
    /// beyond the returned ids. The chain cache is *not* held borrowed
    /// across `decide`: the callback may freely issue read-only estimate
    /// queries against this queue ([`Self::chance_if_appended`]); only a
    /// nested `plan_drops` on the same queue is unsupported (it would
    /// clobber the shared walk buffers).
    pub fn plan_drops(
        &self,
        bin_spec: BinSpec,
        pet_matrix: &PetMatrix,
        now: SimTime,
        mut decide: impl FnMut(&Task, f64) -> bool,
    ) -> Vec<TaskId> {
        if self.waiting.is_empty() {
            return Vec::new();
        }
        {
            let mut chain = self.chain.borrow_mut();
            assert!(
                !chain.walk_active,
                "nested plan_drops on the same queue would corrupt the \
                 shared walk buffers"
            );
            chain.walk_active = true;
            chain.repair(
                &self.waiting,
                self.machine.type_id,
                pet_matrix,
                self.horizon_bins,
            );
            let cache = &mut *chain;
            self.write_base(bin_spec, pet_matrix, now, &mut cache.walk_base);
        }
        let mut drops = Vec::new();
        // Until the first drop the cached prefix chains are exact; after
        // it the surviving suffix re-convolves through the walk buffers.
        let mut live = false;
        for (i, task) in self.waiting.iter().enumerate() {
            let pet = pet_matrix.pet(self.machine.type_id, task.type_id);
            let deadline_bin = bin_spec.deadline_bin(task.deadline);
            let chance = {
                let chain = self.chain.borrow();
                let cdf = if live {
                    &chain.walk_cdf
                } else {
                    &chain.cdfs[i]
                };
                chance_of_success(&chain.walk_base, cdf, pet, deadline_bin)
            };
            if decide(task, chance) {
                drops.push(task.id);
                if !live {
                    let mut chain = self.chain.borrow_mut();
                    let ChainCache {
                        pmfs,
                        walk_pmf,
                        walk_cdf,
                        ..
                    } = &mut *chain;
                    walk_pmf.clone_from(&pmfs[i]);
                    pmfs[i].to_cdf_into(walk_cdf);
                    live = true;
                }
            } else if live {
                let mut chain = self.chain.borrow_mut();
                let ChainCache {
                    scratch,
                    walk_pmf,
                    walk_next,
                    walk_cdf,
                    ..
                } = &mut *chain;
                convolve_into(walk_pmf, pet, walk_next, scratch);
                walk_next.truncate_to_horizon(self.horizon_bins);
                walk_next.to_cdf_into(walk_cdf);
                std::mem::swap(walk_pmf, walk_next);
            }
        }
        self.chain.borrow_mut().walk_active = false;
        drops
    }

    /// Deterministic expected-completion accounting used by the classic
    /// heuristics (MCT, MM, …): expected finish of the running task
    /// (never earlier than `now`), plus the expected execution times of
    /// all waiting tasks. In ticks.
    pub fn expected_ready_ticks(
        &self,
        pet_matrix: &PetMatrix,
        now: SimTime,
    ) -> f64 {
        let mut t = match &self.running {
            None => now.ticks() as f64,
            Some(rt) => {
                let e = rt.start.ticks() as f64
                    + pet_matrix
                        .expected_ticks(self.machine.type_id, rt.task.type_id);
                e.max(now.ticks() as f64 + 1.0)
            }
        };
        for w in &self.waiting {
            t += pet_matrix.expected_ticks(self.machine.type_id, w.type_id);
        }
        t
    }

    /// All tasks still owned by this queue (running + waiting), used to
    /// mark leftovers as unfinished at simulation end.
    pub fn drain_all(&mut self) -> Vec<Task> {
        let mut out: Vec<Task> =
            self.running.take().map(|rt| rt.task).into_iter().collect();
        out.extend(self.waiting.drain(..));
        self.chain.get_mut().valid = 1;
        out
    }

    /// Invalidates the whole cached chain and repairs it immediately —
    /// the cost profile of the pre-incremental `rebuild_chain`. Exposed
    /// as the from-scratch baseline for benches and the fuzz reference.
    pub fn force_full_rebuild(&mut self, pet_matrix: &PetMatrix) {
        let chain = self.chain.get_mut();
        chain.valid = 1;
        chain.repair(
            &self.waiting,
            self.machine.type_id,
            pet_matrix,
            self.horizon_bins,
        );
    }

    /// Captures the queue's durable state into a sealed, versioned
    /// [`Snapshot`]: generation counter, running task, and waiting
    /// list. The machine identity, capacity and horizon are
    /// construction-time configuration and are *not* serialized — a
    /// restore target must be built with the same configuration. The
    /// Eq. 1 chain cache and convolution arena are never serialized;
    /// [`MachineQueue::restore`] rebuilds them lazily, bit-identically
    /// (the incremental-chain equivalence contract).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::seal("machine-queue", self.state_value())
    }

    /// Restores state captured by [`MachineQueue::snapshot`], after
    /// verifying the envelope (version + state hash).
    ///
    /// # Errors
    /// Any [`SnapshotError`]: a bad envelope, an undecodable payload,
    /// or a waiting list that does not fit this queue's capacity.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let payload = snap.verify()?.clone();
        self.restore_value(&payload)
    }

    /// The raw (unsealed) state payload, for embedding inside a larger
    /// component's snapshot.
    pub(crate) fn state_value(&self) -> Value {
        let running = self.running.as_ref().map(|rt| (rt.task, rt.start));
        Value::Object(vec![
            ("generation".to_owned(), self.generation.to_value()),
            ("running".to_owned(), running.to_value()),
            ("waiting".to_owned(), self.waiting.to_value()),
        ])
    }

    /// Applies a payload produced by [`MachineQueue::state_value`].
    pub(crate) fn restore_value(
        &mut self,
        v: &Value,
    ) -> Result<(), SnapshotError> {
        let generation = u64::from_value(v.get_field("generation")?)?;
        let running =
            Option::<(Task, SimTime)>::from_value(v.get_field("running")?)?;
        let waiting = VecDeque::<Task>::from_value(v.get_field("waiting")?)?;
        if waiting.len() > self.capacity {
            return Err(SnapshotError::ShapeMismatch {
                what: "waiting list exceeds this queue's capacity",
            });
        }
        self.generation = generation;
        self.running = running.map(|(task, start)| RunningTask { task, start });
        self.waiting = waiting;
        // The chain cache is rebuilt lazily from the restored waiting
        // list; slot 0 (δ(0)) is constant, so "valid = 1" discards
        // everything else while keeping the arena allocations.
        self.chain.get_mut().valid = 1;
        Ok(())
    }

    /// Repairs the chain, then clones out the live prefix PMFs and CDFs
    /// (`chain[0..=len]`). Test/diagnostic hook for the bit-for-bit
    /// equivalence invariant; not a hot-path API.
    pub fn chain_snapshot(
        &self,
        pet_matrix: &PetMatrix,
    ) -> (Vec<Pmf>, Vec<Cdf>) {
        let mut chain = self.chain.borrow_mut();
        chain.repair(
            &self.waiting,
            self.machine.type_id,
            pet_matrix,
            self.horizon_bins,
        );
        let n = self.waiting.len() + 1;
        (chain.pmfs[..n].to_vec(), chain.cdfs[..n].to_vec())
    }
}

/// `P(base + chain + pet ≤ deadline_bin)` evaluated as a double dot
/// product: Σₓ pet(x) · Σₐ base(a) · chain_cdf(deadline − x − a).
///
/// `base` is absolute bins, `chain_cdf` and `pet` relative bins. This is
/// Eq. 2 without materialising the Eq. 1 convolution; exactness is
/// property-tested against the explicit convolution.
pub fn chance_of_success(
    base: &Pmf,
    chain_cdf: &Cdf,
    pet: &Pmf,
    deadline_bin: Bin,
) -> f64 {
    let mut total = 0.0;
    for (x, px) in pet.iter() {
        if px == 0.0 || x > deadline_bin {
            continue;
        }
        let rem = deadline_bin - x;
        let mut inner = 0.0;
        for (a, pa) in base.iter() {
            if a > rem {
                break; // base bins ascend; later terms are all zero
            }
            if pa == 0.0 {
                continue;
            }
            inner += pa * chain_cdf.at(rem - a);
        }
        total += px * inner;
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_model::{BinSpec, Cluster, TaskTypeId};

    const BIN: u64 = 100;

    /// 1 machine type × 2 task types with easily hand-checked PETs.
    fn pet_matrix() -> PetMatrix {
        let spec = BinSpec::new(BIN);
        PetMatrix::new(
            spec,
            1,
            2,
            vec![
                Pmf::from_points(&[(2, 0.5), (4, 0.5)]).unwrap(), // type 0
                Pmf::point_mass(3),                               // type 1
            ],
        )
    }

    fn queue() -> MachineQueue {
        let cluster = Cluster::one_per_type(1);
        MachineQueue::new(
            cluster.machine(taskprune_model::MachineId(0)),
            4,
            256,
        )
    }

    fn task(id: u64, type_id: u16, deadline_ticks: u64) -> Task {
        Task::new(id, TaskTypeId(type_id), SimTime(0), SimTime(deadline_ticks))
    }

    #[test]
    fn admit_tracks_slots_and_chain() {
        let pm = pet_matrix();
        let mut q = queue();
        assert_eq!(q.free_slots(), 4);
        q.admit(task(0, 1, 10_000));
        q.admit(task(1, 1, 10_000));
        assert_eq!(q.free_slots(), 2);
        assert_eq!(q.waiting_len(), 2);
        // Chain after two point-mass(3) PETs: chain[2] = δ(6).
        let (pmfs, _) = q.chain_snapshot(&pm);
        assert_eq!(pmfs[2], Pmf::point_mass(6));
    }

    #[test]
    #[should_panic(expected = "full")]
    fn admit_beyond_capacity_panics() {
        let mut q = queue();
        for i in 0..5 {
            q.admit(task(i, 1, 10_000));
        }
    }

    #[test]
    fn chance_on_idle_machine_matches_hand_computation() {
        let pm = pet_matrix();
        let q = queue();
        let spec = pm.bin_spec();
        // Idle at t=0: PCT of a type-0 task = its PET {2:0.5, 4:0.5}.
        // Deadline at tick 300 → deadline_bin 2 → P = 0.5.
        let t = task(0, 0, 300);
        let c = q.chance_if_appended(spec, &pm, SimTime(0), &t);
        assert!((c - 0.5).abs() < 1e-12, "chance {c}");
        // Deadline 500 → bin 4 → P = 1.0.
        let t = task(1, 0, 500);
        let c = q.chance_if_appended(spec, &pm, SimTime(0), &t);
        assert!((c - 1.0).abs() < 1e-12);
        // Deadline 200 → bin 1 → P = 0.
        let t = task(2, 0, 200);
        let c = q.chance_if_appended(spec, &pm, SimTime(0), &t);
        assert!(c.abs() < 1e-12);
    }

    #[test]
    fn chance_behind_queued_task_compounds() {
        let pm = pet_matrix();
        let mut q = queue();
        let spec = pm.bin_spec();
        // δ(3) ahead.
        q.admit(task(0, 1, 10_000));
        // Type-0 task behind it: completion = 3 + {2:0.5, 4:0.5}.
        // Deadline bin 5 (deadline 600) → P = 0.5.
        let t = task(1, 0, 600);
        let c = q.chance_if_appended(spec, &pm, SimTime(0), &t);
        assert!((c - 0.5).abs() < 1e-12, "chance {c}");
    }

    #[test]
    fn chance_accounts_for_conditioned_running_task() {
        let pm = pet_matrix();
        let mut q = queue();
        let spec = pm.bin_spec();
        // Start a type-0 task ({2:0.5,4:0.5}) at t=0; at now=300 (bin 3)
        // it is still running ⇒ its completion must be bin 4 (prob 1
        // after conditioning away the bin-2 outcome).
        let rt = task(0, 0, 100_000);
        q.set_running(rt, SimTime(0));
        let t = task(1, 1, 800); // PET δ(3); completion = bin 4 + 3 = 7.
        let c_tight =
            q.chance_if_appended(spec, &pm, SimTime(300), &task(1, 1, 700));
        let c_loose =
            q.chance_if_appended(spec, &pm, SimTime(300), &task(2, 1, 800));
        // Deadline bin of 700 is 6 < 7 ⇒ impossible.
        assert!(c_tight.abs() < 1e-12, "tight {c_tight}");
        // Deadline bin of 800 is 7 ⇒ certain.
        assert!((c_loose - 1.0).abs() < 1e-12, "loose {c_loose}");
        let _ = t;
    }

    #[test]
    fn pop_head_invalidates_then_repairs_chain() {
        let pm = pet_matrix();
        let mut q = queue();
        q.admit(task(0, 1, 10_000));
        q.admit(task(1, 1, 10_000));
        let head = q.pop_head_for_start().unwrap();
        assert_eq!(head.id, TaskId(0));
        assert_eq!(q.waiting_len(), 1);
        let (pmfs, _) = q.chain_snapshot(&pm);
        assert_eq!(pmfs.len(), 2);
        assert_eq!(pmfs[1], Pmf::point_mass(3));
    }

    #[test]
    fn pop_head_refuses_while_busy() {
        let mut q = queue();
        q.set_running(task(9, 1, 10_000), SimTime(0));
        q.admit(task(0, 1, 10_000));
        assert!(q.pop_head_for_start().is_none());
    }

    #[test]
    fn generation_bumps_on_start_and_cancel() {
        let mut q = queue();
        let g1 = q.set_running(task(0, 1, 10_000), SimTime(0));
        q.complete_running();
        let g2 = q.set_running(task(1, 1, 10_000), SimTime(10));
        assert!(g2 > g1);
        let rt = q.cancel_running();
        assert_eq!(rt.task.id, TaskId(1));
        assert!(q.generation() > g2);
    }

    #[test]
    fn reactive_drops_remove_expired_tasks() {
        let pm = pet_matrix();
        let mut q = queue();
        q.admit(task(0, 1, 100));
        q.admit(task(1, 1, 900));
        let dropped = q.drop_missed_deadlines(SimTime(500));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].id, TaskId(0));
        assert_eq!(q.waiting_len(), 1);
        assert_eq!(q.chain_snapshot(&pm).0.len(), 2);
    }

    #[test]
    fn remove_waiting_repairs_suffix_only() {
        let pm = pet_matrix();
        let mut q = queue();
        q.admit(task(0, 0, 10_000));
        q.admit(task(1, 1, 10_000));
        q.admit(task(2, 1, 10_000));
        let removed = q.remove_waiting(&[TaskId(1)]);
        assert_eq!(removed.len(), 1);
        assert_eq!(q.waiting_len(), 2);
        // Chain is now PET(t0) ∗ PET(t2) = {2,4}·δ(3) → {5:0.5, 7:0.5}.
        let (pmfs, _) = q.chain_snapshot(&pm);
        assert_eq!(pmfs.len(), 3);
        assert!(
            (pmfs[2].prob_at(5) - 0.5).abs() < 1e-12
                && (pmfs[2].prob_at(7) - 0.5).abs() < 1e-12
        );
    }

    #[test]
    fn remove_waiting_batch_uses_sorted_lookup() {
        let pm = pet_matrix();
        let mut q = queue();
        for i in 0..4 {
            q.admit(task(i, 1, 10_000));
        }
        // Unsorted id batch, with one id that is not present.
        let removed =
            q.remove_waiting(&[TaskId(3), TaskId(0), TaskId(99), TaskId(2)]);
        let ids: Vec<TaskId> = removed.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![TaskId(0), TaskId(2), TaskId(3)]);
        assert_eq!(q.waiting_len(), 1);
        assert_eq!(q.waiting().next().unwrap().id, TaskId(1));
        let (pmfs, _) = q.chain_snapshot(&pm);
        assert_eq!(pmfs[1], Pmf::point_mass(3));
    }

    #[test]
    fn coalesced_mutations_match_fresh_rebuild() {
        let pm = pet_matrix();
        let mut q = queue();
        for i in 0..4 {
            q.admit(task(i, (i % 2) as u16, 10_000));
        }
        // Several structural changes with no query in between: pop the
        // head, drop one mid-queue task, admit a replacement.
        let _ = q.pop_head_for_start().unwrap();
        q.remove_waiting(&[TaskId(2)]);
        q.admit(task(9, 0, 10_000));
        // One lazy repair must now equal a from-scratch rebuild exactly.
        let incremental = q.chain_snapshot(&pm);
        let mut fresh = queue();
        for t in q.waiting() {
            fresh.admit(*t);
        }
        assert_eq!(incremental, fresh.chain_snapshot(&pm));
    }

    #[test]
    fn plan_drops_recomputes_chances_behind_drops() {
        let pm = pet_matrix();
        let mut q = queue();
        // Two type-1 tasks (δ(3) each) then a type-0 task.
        q.admit(task(0, 1, 10_000));
        q.admit(task(1, 1, 10_000));
        // Task 2's deadline bin: base 0 + 3 + 3 + {2:.5,4:.5} ⇒ bins 8/10.
        // With deadline at bin 8 (tick 900) chance is 0.5.
        q.admit(task(2, 0, 900));
        // Decide: drop task 0 only; task 2's chance must then *improve*
        // to bins 5/7 ⇒ certain (deadline bin 8).
        let mut seen = Vec::new();
        let drops =
            q.plan_drops(pm.bin_spec(), &pm, SimTime(0), |task, chance| {
                seen.push((task.id, chance));
                task.id == TaskId(0)
            });
        assert_eq!(drops, vec![TaskId(0)]);
        assert_eq!(seen.len(), 3);
        // Without drops task 2's chance would be 0.5; after dropping
        // task 0 the scan must report the improved 1.0.
        let last = seen.last().unwrap();
        assert_eq!(last.0, TaskId(2));
        assert!((last.1 - 1.0).abs() < 1e-12, "chance {}", last.1);
    }

    #[test]
    fn plan_drops_allows_reentrant_chance_queries() {
        // A pruner's decide callback may ask read-only estimate queries
        // against the same queue mid-walk (e.g. "would a fresh task
        // still fit?"); the walk must neither panic nor let the nested
        // query clobber its base distribution.
        let pm = pet_matrix();
        let mut q = queue();
        q.admit(task(0, 1, 10_000));
        q.admit(task(1, 1, 10_000));
        q.admit(task(2, 0, 900)); // chance 0.5 behind two δ(3) tasks
        let spec = pm.bin_spec();
        let mut seen = Vec::new();
        let drops = q.plan_drops(spec, &pm, SimTime(0), |task, chance| {
            let probe =
                Task::new(99, TaskTypeId(0), SimTime(0), SimTime(10_000));
            let nested = q.chance_if_appended(spec, &pm, SimTime(0), &probe);
            assert!((0.0..=1.0).contains(&nested), "nested {nested}");
            seen.push((task.id, chance));
            task.id == TaskId(0)
        });
        assert_eq!(drops, vec![TaskId(0)]);
        // Same chances as the non-reentrant walk: dropping task 0 lifts
        // task 2 from 0.5 to certain (see plan_drops_recomputes_...).
        let last = seen.last().unwrap();
        assert_eq!(last.0, TaskId(2));
        assert!((last.1 - 1.0).abs() < 1e-12, "chance {}", last.1);
    }

    #[test]
    fn plan_drops_uses_cached_prefixes_when_nothing_drops() {
        let pm = pet_matrix();
        let mut q = queue();
        q.admit(task(0, 1, 350)); // bin 3 vs deadline bin 2 → 0
        q.admit(task(1, 1, 10_000));
        let mut chances = Vec::new();
        let drops = q.plan_drops(pm.bin_spec(), &pm, SimTime(0), |_, c| {
            chances.push(c);
            false
        });
        assert!(drops.is_empty());
        assert!(chances[0].abs() < 1e-12);
        assert!((chances[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_ready_accounts_for_running_and_waiting() {
        let pm = pet_matrix();
        let mut q = queue();
        // Idle: ready = now.
        assert_eq!(q.expected_ready_ticks(&pm, SimTime(500)), 500.0);
        // Running type-1 (E = (3+0.5)·100 = 350 ticks) started at 0.
        q.set_running(task(0, 1, 10_000), SimTime(0));
        assert_eq!(q.expected_ready_ticks(&pm, SimTime(100)), 350.0);
        // Overdue running task: floor at now + 1.
        assert_eq!(q.expected_ready_ticks(&pm, SimTime(400)), 401.0);
        // Plus a waiting type-0 (E = (3+0.5)·100 = 350).
        q.admit(task(1, 0, 10_000));
        assert_eq!(q.expected_ready_ticks(&pm, SimTime(100)), 700.0);
    }

    #[test]
    fn drain_returns_everything() {
        let pm = pet_matrix();
        let mut q = queue();
        q.set_running(task(0, 1, 10_000), SimTime(0));
        q.admit(task(1, 1, 10_000));
        q.admit(task(2, 0, 10_000));
        let all = q.drain_all();
        assert_eq!(all.len(), 3);
        assert_eq!(q.waiting_len(), 0);
        assert!(!q.is_busy());
        // The chain is reset to the empty-queue state.
        assert_eq!(q.chain_snapshot(&pm).0, vec![Pmf::point_mass(0)]);
    }

    #[test]
    fn snapshot_restore_roundtrips_and_rebuilds_the_chain() {
        let pm = pet_matrix();
        let mut q = queue();
        q.set_running(task(0, 1, 10_000), SimTime(0));
        q.admit(task(1, 1, 10_000));
        q.admit(task(2, 0, 900));
        let snap = q.snapshot();
        assert_eq!(snap.component(), Some("machine-queue"));
        let mut fresh = queue();
        fresh.restore(&snap).expect("intact snapshot restores");
        assert_eq!(fresh.generation(), q.generation());
        assert_eq!(fresh.waiting_len(), 2);
        assert!(fresh.is_busy());
        // The rebuilt-lazily chain must equal the live one exactly.
        assert_eq!(fresh.chain_snapshot(&pm), q.chain_snapshot(&pm));
    }

    #[test]
    fn snapshot_restore_rejects_an_over_capacity_waiting_list() {
        let cluster = Cluster::one_per_type(1);
        let m = cluster.machine(taskprune_model::MachineId(0));
        let mut big = MachineQueue::new(m, 8, 256);
        for i in 0..6 {
            big.admit(task(i, 1, 10_000));
        }
        let snap = big.snapshot();
        let mut small = MachineQueue::new(m, 4, 256);
        let err = small.restore(&snap).expect_err("must not overfill");
        assert!(
            matches!(err, SnapshotError::ShapeMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn chance_of_success_matches_full_convolution() {
        // Randomised agreement check against the explicit Eq. 1 path.
        let base =
            Pmf::from_points(&[(10, 0.3), (12, 0.45), (15, 0.25)]).unwrap();
        let chain = Pmf::from_points(&[(0, 0.2), (3, 0.5), (7, 0.3)]).unwrap();
        let pet = Pmf::from_points(&[(1, 0.6), (5, 0.4)]).unwrap();
        let explicit = base.convolve(&chain).convolve(&pet);
        let chain_cdf = chain.to_cdf();
        for deadline in 8..30 {
            let fast = chance_of_success(&base, &chain_cdf, &pet, deadline);
            let slow = explicit.success_probability(deadline);
            assert!(
                (fast - slow).abs() < 1e-12,
                "deadline {deadline}: {fast} vs {slow}"
            );
        }
    }
}
