//! The parallel federated driver: K shards on K threads,
//! deterministically.
//!
//! [`crate::FederatedEngine`] drives all N shards of a [`Gateway`] on
//! one thread through a single merged event heap. But the shards are
//! *independent state machines*: a shard's mapping events depend only
//! on its own clock, its own completions/wakeups, and the arrivals
//! routed to it — never on another shard's state. The one federation
//! point that does need a consistent global view is **routing**.
//! [`ParallelFederatedEngine`] exploits exactly that decomposition:
//!
//! * the **coordinator** (the calling thread) routes arrivals in
//!   global arrival order — identical id compaction, `latest` map and
//!   [`FederationStats`] arrival record as the serial driver;
//! * each **shard lane** owns the per-shard driver state the serial
//!   engine kept globally (completion/wakeup heap, ground-truth RNG,
//!   pending-event and wakeup-pending flags, and a mailbox of routed
//!   arrivals) and advances on a worker of a hand-rolled work-stealing
//!   pool (`vendor/rayon`);
//! * the deterministic [`FederationStats`] fan-in is unchanged: the
//!   coordinator merges results in fixed shard order after every lane
//!   has drained.
//!
//! # Two schedules, one ordering
//!
//! With a policy that declares [`crate::RoutePolicy::is_stateless`]
//! (round-robin), routing needs no shard state at all: the coordinator
//! routes the *entire* stream into per-shard mailboxes up front, and
//! every lane then replays its private merge of mailbox arrivals and
//! heap events from start to finish with **zero cross-shard barriers**
//! — embarrassingly parallel wall-clock scaling.
//!
//! With a state-dependent policy (least-queued, best-chance), routing
//! arrival *i* must observe every shard exactly as the serial driver
//! would have: all events before `tᵢ` (and completions at `tᵢ`)
//! applied. The driver runs in **lockstep epochs**: before each
//! arrival, all lanes advance in parallel up to that arrival's
//! watermark, then the coordinator routes on fresh views and runs the
//! routed shard's mapping event. The arrival chain is inherently
//! serial under such a policy (each routing decision depends on the
//! previous arrival's mapping), so only the completion processing
//! between arrivals parallelises — which is exactly the available
//! parallelism, no more.
//!
//! # Bit-identity argument (the headline guarantee)
//!
//! `tests/parallel_equivalence.rs` pins serialized outputs; the
//! reasoning for *why* it holds at any thread count:
//!
//! 1. The serial driver's global event order `(time, class, shard,
//!    id)` restricted to one shard is `(time, class, id)` — exactly
//!    each lane's private [`EventQueue`] order merged with its mailbox
//!    under the same completions-before-arrivals-before-wakeups rule.
//! 2. Clock advances for *other* shards' events are unobservable: a
//!    shard's behaviour depends on its clock only at its own events,
//!    and both drivers advance it to the same instants there. Each
//!    arrival carries its serial-driver processing time (`target`)
//!    into the mailbox, so even out-of-order deliveries replay.
//! 3. Ground-truth durations are sampled from per-shard RNG streams in
//!    per-shard start order — the same sequence either way.
//! 4. Wakeup scheduling: the serial driver checks every shard after
//!    every event, but a shard's wakeup condition (no pending events,
//!    non-empty batch queue) only changes at its *own* events, so the
//!    wakeup is always scheduled either at the stream-exhaustion
//!    instant `T_last` or immediately after one of the shard's own
//!    events — both of which the lane replays with the same `now`.
//! 5. `finish` advances every shard to the federation-wide end time
//!    (the maximum lane clock), matching the serial driver's habit of
//!    advancing all shards to every event time.
//!
//! Parallelism is therefore purely a wall-clock change; the serialized
//! [`FederationStats`] — traces included — is bit-identical.

use crate::event::{Event, EventKind, EventQueue};
use crate::gateway::{FederationStats, Gateway};
use crate::sink::{NullSink, Sink};
use crate::snapshot::Snapshot;
use crate::SchedulerCore;
use std::collections::VecDeque;
use taskprune_model::{PetMatrix, SimTime, Task};
use taskprune_prob::rng::Xoshiro256PlusPlus;

/// One routed arrival in a shard's mailbox.
#[derive(Debug, Clone, Copy)]
struct Mail {
    /// The task, already relabelled with its shard-internal id.
    task: Task,
    /// The clock value the serial driver would process it at: the
    /// running maximum of arrival times (equal to `task.arrival` for
    /// the documented non-decreasing streams, later for stragglers).
    target: SimTime,
}

/// The per-shard driver state the serial [`crate::FederatedEngine`]
/// keeps globally, privatised so a worker thread can advance the shard
/// without touching anything shared.
struct ShardLane {
    /// This shard's pending completions/wakeups, in the serial
    /// driver's order restricted to the shard.
    events: EventQueue,
    /// Ground-truth duration sampling stream (same seed derivation as
    /// the serial driver: shard 0 keeps the base seed).
    rng: Xoshiro256PlusPlus,
    /// Heap-event count — the wakeup guard's "no event will ever fire
    /// again" condition.
    pending: usize,
    wakeup_pending: bool,
    /// Routed arrivals awaiting delivery (stateless-policy schedule).
    mailbox: VecDeque<Mail>,
}

impl ShardLane {
    fn new(seed: u64) -> Self {
        Self {
            events: EventQueue::new(),
            rng: Xoshiro256PlusPlus::new(seed),
            pending: 0,
            wakeup_pending: false,
            mailbox: VecDeque::new(),
        }
    }

    /// Turns the shard's pending starts into completion events,
    /// sampling actual durations from this lane's ground-truth stream
    /// — the per-shard half of the serial driver's `dispatch_starts`.
    fn dispatch_starts<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
    ) {
        let now = core.now();
        for start in core.drain_starts() {
            let duration = truth.sample_duration(
                start.machine.type_id,
                start.task.type_id,
                &mut self.rng,
            );
            self.events.push(Event {
                time: now + duration,
                kind: EventKind::Completion {
                    machine: start.machine.id,
                    task: start.task.id,
                },
            });
            self.pending += 1;
        }
    }

    /// Whether a heap event is due strictly before an arrival at
    /// `cutoff` (completions at the cutoff instant fire first, per the
    /// event-ordering contract).
    fn has_due(&self, cutoff: SimTime) -> bool {
        self.events.peek().is_some_and(|e| {
            e.time < cutoff
                || (e.time == cutoff
                    && matches!(e.kind, EventKind::Completion { .. }))
        })
    }

    /// Processes every completion due before an arrival at `cutoff`,
    /// then advances the shard clock to `target` (the arrival's serial
    /// processing instant) so a subsequent routing view or
    /// `push_arrival` observes the same `now` the serial driver would.
    fn advance_events<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
        cutoff: SimTime,
        target: SimTime,
    ) {
        while self.has_due(cutoff) {
            let event = self.events.pop().expect("has_due peeked");
            self.pending -= 1;
            core.advance_to(event.time);
            match event.kind {
                EventKind::Completion { machine, task } => {
                    if !core.complete(machine, task) {
                        continue; // stale after a cancellation
                    }
                }
                // Wakeups are only ever scheduled once the arrival
                // stream is exhausted (`drain`), never before.
                _ => unreachable!("only completions precede the drain"),
            }
            self.dispatch_starts(core, truth);
            core.drain_decisions();
        }
        if target > core.now() {
            core.advance_to(target);
        }
    }

    /// Delivers one mailbox arrival: due completions first, then the
    /// shard's mapping event at the arrival's serial instant.
    fn deliver<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
        mail: Mail,
    ) {
        self.advance_events(core, truth, mail.task.arrival, mail.target);
        core.push_arrival(mail.task);
        self.dispatch_starts(core, truth);
        core.drain_decisions();
    }

    /// The serial driver's per-shard wakeup safety net: when no event
    /// will ever fire again on this shard but its batch queue still
    /// holds work, schedule a synthetic mapping event just past the
    /// earliest pending deadline (clamped to `now`, the serial
    /// driver's clock at the moment it would run this check).
    fn maybe_schedule_wakeup<S: Sink>(
        &mut self,
        core: &SchedulerCore<'_, S>,
        now: SimTime,
    ) {
        if self.wakeup_pending || self.pending > 0 {
            return;
        }
        let Some(earliest) = core.earliest_pending_deadline() else {
            return;
        };
        self.events.push(Event {
            time: SimTime(earliest.ticks().max(now.ticks()) + 1),
            kind: EventKind::Wakeup,
        });
        self.pending += 1;
        self.wakeup_pending = true;
    }

    /// Runs the shard to completion after the last global arrival
    /// (processed at `t_last`): the first wakeup check fires at
    /// `t_last` — the serial driver's stream-exhaustion instant — then
    /// the remaining events drain with a check after each.
    fn drain<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
        t_last: SimTime,
    ) {
        self.maybe_schedule_wakeup(core, t_last);
        while let Some(event) = self.events.pop() {
            self.pending -= 1;
            core.advance_to(event.time);
            match event.kind {
                EventKind::Completion { machine, task } => {
                    if !core.complete(machine, task) {
                        continue; // stale after a cancellation
                    }
                }
                EventKind::Wakeup => {
                    self.wakeup_pending = false;
                    core.wakeup();
                }
                EventKind::Arrival { .. } => {
                    unreachable!("arrivals are mailbox-fed, never enqueued")
                }
            }
            self.dispatch_starts(core, truth);
            core.drain_decisions();
            self.maybe_schedule_wakeup(core, core.now());
        }
    }

    /// The whole-shard schedule of the stateless-routing path: replay
    /// the private mailbox/heap merge from start to finish, then
    /// drain. Runs as one pool job — no barriers.
    fn run_shard<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
        t_last: Option<SimTime>,
    ) {
        while let Some(mail) = self.mailbox.pop_front() {
            self.deliver(core, truth, mail);
        }
        let Some(t_last) = t_last else {
            return; // no arrivals anywhere: nothing can have happened
        };
        // Remaining completions up to the stream-exhaustion instant
        // fire under arrival-phase rules (no wakeup checks yet) …
        self.advance_events(core, truth, t_last, t_last);
        // … then the drain regime begins, exactly at T_last.
        self.drain(core, truth, t_last);
    }
}

/// The parallel federated discrete-event driver. Construct via
/// [`crate::GatewayBuilder::build_parallel`]; behaviourally a drop-in
/// for [`crate::FederatedEngine::run_stream`] — same inputs, same
/// deterministic [`FederationStats`], bit-identical at every thread
/// count — with wall-clock scaling across shards. See the [module
/// docs](self) for the schedule and the bit-identity argument.
pub struct ParallelFederatedEngine<'a, S: Sink = NullSink> {
    gateway: Gateway<'a, S>,
    truth: &'a PetMatrix,
    lanes: Vec<ShardLane>,
    pool: rayon::ThreadPool,
    threads: usize,
    /// Running maximum of ingested arrival times — the serial
    /// processing instant of the latest arrival, carried across
    /// [`ParallelFederatedEngine::ingest_prefix`] calls.
    watermark: Option<SimTime>,
    /// Pre-routing copies of every ingested arrival (original external
    /// ids), kept when resharding needs to re-split the stream.
    arrival_log: Option<Vec<Task>>,
}

impl<'a, S: Sink> ParallelFederatedEngine<'a, S> {
    /// Wraps a built gateway. Crate-internal;
    /// [`crate::GatewayBuilder::build_parallel`] is the public
    /// entrance. `threads = None` honours `TASKPRUNE_THREADS` (else
    /// all hardware threads).
    pub(crate) fn from_gateway(
        gateway: Gateway<'a, S>,
        truth: &'a PetMatrix,
        threads: Option<usize>,
    ) -> Self {
        let lanes = gateway
            .shards()
            .iter()
            .map(|s| ShardLane::new(s.config().seed))
            .collect();
        let threads = threads
            .unwrap_or_else(|| rayon::ThreadPool::global().num_threads())
            .max(1);
        Self {
            gateway,
            truth,
            lanes,
            pool: rayon::ThreadPool::new(threads),
            threads,
            watermark: None,
            arrival_log: None,
        }
    }

    /// Number of shards being driven.
    pub fn n_shards(&self) -> usize {
        self.gateway.n_shards()
    }

    /// Total executor threads (workers + the coordinating caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Consumes an arrival stream ordered by non-decreasing
    /// `task.arrival` — external ids may be sparse, out of order or
    /// duplicated — routes every task in global arrival order, runs
    /// the shards in parallel, and drains everything after the last
    /// arrival. Output is bit-identical to
    /// [`crate::FederatedEngine::run_stream`] on the same inputs.
    pub fn run_stream<I>(self, arrivals: I) -> FederationStats
    where
        I: IntoIterator<Item = Task>,
    {
        self.finish_stream(arrivals)
    }

    /// Routes and executes a prefix of the arrival stream, leaving the
    /// engine paused at the prefix watermark: every prefix arrival has
    /// been routed (id compaction, arrival record, policy state) and
    /// delivered to its shard, and no post-stream drain has begun.
    /// Pair with [`ParallelFederatedEngine::snapshot_gateway`] to
    /// checkpoint the paused federation, then
    /// [`ParallelFederatedEngine::finish_stream`] to resume — or drop
    /// the engine and re-split the recorded
    /// [`ParallelFederatedEngine::arrival_log`] across a different
    /// shard count (live resharding).
    pub fn ingest_prefix<I>(&mut self, arrivals: I)
    where
        I: IntoIterator<Item = Task>,
    {
        self.ingest(arrivals);
        if self.stateless_schedule() {
            // The stateless schedule normally defers all shard work to
            // the finale; deliver the routed prefix now so the pause
            // point observes shards advanced to the watermark. The
            // per-shard operation sequence is exactly the one
            // `run_shard` would have replayed, so a later
            // `finish_stream` stays bit-identical.
            self.deliver_mailboxes();
        }
    }

    /// Ingests the remaining arrivals and runs the federation to
    /// completion — the second half of a run paused by
    /// [`ParallelFederatedEngine::ingest_prefix`]. Calling it with the
    /// whole stream (no prior prefix) is exactly
    /// [`ParallelFederatedEngine::run_stream`].
    pub fn finish_stream<I>(mut self, arrivals: I) -> FederationStats
    where
        I: IntoIterator<Item = Task>,
    {
        self.ingest(arrivals);
        let t_last = self.watermark;
        // Parallel finale: every lane runs/drains independently. On
        // the stateless path this is the *entire* remaining simulation;
        // on the lockstep path only the post-arrival drain remains.
        {
            let truth = self.truth;
            let lanes = &mut self.lanes;
            let shards = self.gateway.shards_mut();
            self.pool.scope(|s| {
                for (lane, core) in lanes.iter_mut().zip(shards.iter_mut()) {
                    s.spawn(move || lane.run_shard(core, truth, t_last));
                }
            });
        }
        self.finish()
    }

    /// Starts recording every ingested arrival (pre-routing, original
    /// external ids) so a paused run can be re-split across a different
    /// shard count. Idempotent; enable before the first ingest.
    pub fn enable_arrival_log(&mut self) {
        self.arrival_log.get_or_insert_with(Vec::new);
    }

    /// The recorded arrivals in ingest order. Empty unless
    /// [`ParallelFederatedEngine::enable_arrival_log`] was called.
    pub fn arrival_log(&self) -> &[Task] {
        self.arrival_log.as_deref().unwrap_or(&[])
    }

    /// Captures the routing layer — shard cores, id compaction,
    /// arrival records and policy state — as a sealed, versioned
    /// [`Snapshot`]. Meaningful at an
    /// [`ParallelFederatedEngine::ingest_prefix`] pause point.
    pub fn snapshot_gateway(&self) -> Snapshot {
        self.gateway.snapshot()
    }

    /// Whether the zero-barrier mailbox schedule applies.
    fn stateless_schedule(&self) -> bool {
        self.gateway.policy_is_stateless() || self.gateway.n_shards() == 1
    }

    /// Routes a batch of arrivals under whichever schedule the policy
    /// admits, updating the watermark and the arrival log.
    fn ingest<I>(&mut self, arrivals: I)
    where
        I: IntoIterator<Item = Task>,
    {
        if self.stateless_schedule() {
            self.route_ingest(arrivals);
        } else {
            self.lockstep_ingest(arrivals);
        }
    }

    /// Stateless-policy schedule: route the stream into per-shard
    /// mailboxes on the coordinator (identical routing bookkeeping to
    /// the serial driver); shard execution is deferred.
    fn route_ingest<I>(&mut self, arrivals: I)
    where
        I: IntoIterator<Item = Task>,
    {
        for task in arrivals {
            let target =
                self.watermark.map_or(task.arrival, |w| w.max(task.arrival));
            self.watermark = Some(target);
            if let Some(log) = self.arrival_log.as_mut() {
                log.push(task);
            }
            let (shard, relabelled) = self.gateway.route_only(task);
            self.lanes[shard].mailbox.push_back(Mail {
                task: relabelled,
                target,
            });
        }
    }

    /// Drains every shard's mailbox in parallel — the delivery half of
    /// the stateless schedule, pulled forward by `ingest_prefix`.
    fn deliver_mailboxes(&mut self) {
        let truth = self.truth;
        let lanes = &mut self.lanes;
        let shards = self.gateway.shards_mut();
        self.pool.scope(|s| {
            for (lane, core) in lanes.iter_mut().zip(shards.iter_mut()) {
                if !lane.mailbox.is_empty() {
                    s.spawn(move || {
                        while let Some(mail) = lane.mailbox.pop_front() {
                            lane.deliver(core, truth, mail);
                        }
                    });
                }
            }
        });
    }

    /// State-dependent-policy schedule: one epoch per arrival. All
    /// lanes advance in parallel to the arrival's watermark, then the
    /// coordinator routes on views every bit as fresh as the serial
    /// driver's and runs the routed shard's mapping event inline (that
    /// chain is serial by data dependency — each routing decision
    /// observes the previous arrival's mapping).
    fn lockstep_ingest<I>(&mut self, arrivals: I)
    where
        I: IntoIterator<Item = Task>,
    {
        let truth = self.truth;
        for task in arrivals {
            let cutoff = task.arrival;
            let target = self.watermark.map_or(cutoff, |w| w.max(cutoff));
            self.watermark = Some(target);
            if let Some(log) = self.arrival_log.as_mut() {
                log.push(task);
            }
            {
                let lanes = &mut self.lanes;
                let shards = self.gateway.shards_mut();
                // A same-instant burst usually has nothing due between
                // its arrivals; don't pay for a scope (allocation +
                // completion latch) when no lane will spawn.
                if lanes.iter().any(|lane| lane.has_due(cutoff)) {
                    self.pool.scope(|s| {
                        for (lane, core) in
                            lanes.iter_mut().zip(shards.iter_mut())
                        {
                            if lane.has_due(cutoff) {
                                s.spawn(move || {
                                    lane.advance_events(
                                        core, truth, cutoff, target,
                                    );
                                });
                            } else if target > core.now() {
                                // No shard work this epoch: the clock
                                // tick is too cheap to ship out.
                                core.advance_to(target);
                            }
                        }
                    });
                } else {
                    for core in shards.iter_mut() {
                        if target > core.now() {
                            core.advance_to(target);
                        }
                    }
                }
            }
            let (shard, _) = self.gateway.push_arrival(task);
            let core = &mut self.gateway.shards_mut()[shard];
            self.lanes[shard].dispatch_starts(core, truth);
            core.drain_decisions();
        }
    }

    /// Deterministic fan-in: advance every shard to the federation-wide
    /// end time (the serial driver's shared final clock) and collect
    /// the outcome record in fixed shard order.
    fn finish(mut self) -> FederationStats {
        let t_end = self
            .gateway
            .shards()
            .iter()
            .map(SchedulerCore::now)
            .max()
            .unwrap_or(SimTime::ZERO);
        for core in self.gateway.shards_mut() {
            if t_end > core.now() {
                core.advance_to(t_end);
            }
        }
        self.gateway.finish()
    }
}

impl<S: Sink> std::fmt::Debug for ParallelFederatedEngine<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelFederatedEngine")
            .field("gateway", &self.gateway)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::gateway::GatewayBuilder;
    use crate::route::{LeastQueuedRoute, RoundRobinRoute};
    use crate::traits::{Assignment, BatchMapper, MappingStrategy, NoPruning};
    use crate::view::SystemView;
    use taskprune_model::{
        BinSpec, Cluster, MachineId, TaskOutcome, TaskTypeId,
    };
    use taskprune_prob::Pmf;

    fn det_pet() -> PetMatrix {
        PetMatrix::new(BinSpec::new(100), 1, 1, vec![Pmf::point_mass(2)])
    }

    struct ToZero;
    impl BatchMapper for ToZero {
        fn name(&self) -> &str {
            "to-zero"
        }
        fn select(
            &mut self,
            view: &SystemView<'_>,
            candidates: &[Task],
        ) -> Vec<Assignment> {
            candidates
                .iter()
                .take(view.free_slots(MachineId(0)))
                .map(|t| Assignment {
                    task: t.id,
                    machine: MachineId(0),
                })
                .collect()
        }
    }

    fn tasks(n: u64, every: u64) -> Vec<Task> {
        (0..n)
            .map(|i| {
                let arr = i * every;
                Task::new(
                    i,
                    TaskTypeId(0),
                    SimTime(arr),
                    SimTime(arr + 100_000),
                )
            })
            .collect()
    }

    fn builder<'a>(
        pet: &'a PetMatrix,
        cluster: &Cluster,
        shards: usize,
    ) -> GatewayBuilder<'a, NullSink> {
        GatewayBuilder::new(cluster, pet)
            .config(SimConfig::batch(1))
            .shards(shards)
            .strategy_with(|_| MappingStrategy::Batch(Box::new(ToZero)))
            .pruner_with(|_| Box::new(NoPruning))
    }

    fn run_parallel(
        shards: usize,
        threads: usize,
        stateless: bool,
        workload: &[Task],
    ) -> FederationStats {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let mut b = builder(&pet, &cluster, shards).threads(threads);
        if !stateless {
            b = b.policy(LeastQueuedRoute::new());
        } else {
            b = b.policy(RoundRobinRoute::new());
        }
        b.build_parallel()
            .expect("valid configuration")
            .run_stream(workload.iter().copied())
    }

    #[test]
    fn empty_stream_finishes_cleanly() {
        let stats = run_parallel(3, 2, true, &[]);
        assert_eq!(stats.n_tasks(), 0);
        assert_eq!(stats.end_time(), SimTime::ZERO);
    }

    #[test]
    fn both_schedules_complete_everything() {
        let workload = tasks(60, 40);
        for stateless in [true, false] {
            let stats = run_parallel(4, 3, stateless, &workload);
            assert_eq!(stats.n_tasks(), 60, "stateless={stateless}");
            assert_eq!(stats.unreported(), 0, "stateless={stateless}");
            assert_eq!(
                stats.count(TaskOutcome::CompletedOnTime),
                60,
                "stateless={stateless}"
            );
        }
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        // The crate-local smoke version of the root equivalence suite.
        let workload = tasks(80, 25);
        for stateless in [true, false] {
            let reference = run_parallel(4, 1, stateless, &workload);
            for threads in [2, 4] {
                let other = run_parallel(4, threads, stateless, &workload);
                assert_eq!(
                    serde_json::to_string(&reference).unwrap(),
                    serde_json::to_string(&other).unwrap(),
                    "stateless={stateless} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn prefix_ingest_then_finish_matches_one_shot() {
        let workload = tasks(50, 30);
        for stateless in [true, false] {
            let reference = run_parallel(3, 2, stateless, &workload);
            let pet = det_pet();
            let cluster = Cluster::one_per_type(1);
            let mut b = builder(&pet, &cluster, 3).threads(2);
            if stateless {
                b = b.policy(RoundRobinRoute::new());
            } else {
                b = b.policy(LeastQueuedRoute::new());
            }
            let mut engine = b.build_parallel().expect("valid configuration");
            engine.enable_arrival_log();
            engine.ingest_prefix(workload[..20].iter().copied());
            assert_eq!(engine.arrival_log().len(), 20);
            engine
                .snapshot_gateway()
                .verify()
                .expect("paused-federation snapshot verifies");
            let stats = engine.finish_stream(workload[20..].iter().copied());
            assert_eq!(
                serde_json::to_string(&reference).unwrap(),
                serde_json::to_string(&stats).unwrap(),
                "stateless={stateless}"
            );
        }
    }

    #[test]
    fn threads_knob_is_reported() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let engine = builder(&pet, &cluster, 2)
            .threads(7)
            .build_parallel()
            .expect("valid configuration");
        assert_eq!(engine.threads(), 7);
        assert_eq!(engine.n_shards(), 2);
    }
}
