//! The parallel federated driver: K shards on K threads,
//! deterministically.
//!
//! [`crate::FederatedEngine`] drives all N shards of a [`Gateway`] on
//! one thread through a single merged event heap. But the shards are
//! *independent state machines*: a shard's mapping events depend only
//! on its own clock, its own completions/wakeups, and the arrivals
//! routed to it — never on another shard's state. The one federation
//! point that does need a consistent global view is **routing**.
//! [`ParallelFederatedEngine`] exploits exactly that decomposition:
//!
//! * the **coordinator** (the calling thread) routes arrivals in
//!   global arrival order — identical id compaction, `latest` map and
//!   [`FederationStats`] arrival record as the serial driver;
//! * each **shard lane** owns the per-shard driver state the serial
//!   engine kept globally (completion/wakeup heap, ground-truth RNG,
//!   pending-event and wakeup-pending flags, and a mailbox of routed
//!   arrivals) and advances on a worker of a hand-rolled work-stealing
//!   pool (`vendor/rayon`);
//! * the deterministic [`FederationStats`] fan-in is unchanged: the
//!   coordinator merges results in fixed shard order after every lane
//!   has drained.
//!
//! # Three schedules, one ordering
//!
//! With a policy that declares [`crate::RoutePolicy::is_stateless`]
//! (round-robin), routing needs no shard state at all: the coordinator
//! routes the *entire* stream into per-shard mailboxes up front, and
//! every lane then replays its private merge of mailbox arrivals and
//! heap events from start to finish with **zero cross-shard barriers**
//! — embarrassingly parallel wall-clock scaling.
//!
//! With a state-dependent policy (least-queued, best-chance), routing
//! arrival *i* must observe every shard exactly as the serial driver
//! would have: all events before `tᵢ` (and completions at `tᵢ`)
//! applied. The driver runs in **lockstep epochs**: before each
//! arrival, all lanes advance in parallel up to that arrival's
//! watermark, then the coordinator routes on fresh views and runs the
//! routed shard's mapping event. The arrival chain is inherently
//! serial under such a policy (each routing decision depends on the
//! previous arrival's mapping), so only the completion processing
//! between arrivals parallelises — which is exactly the available
//! parallelism, no more.
//!
//! [`crate::Consistency::BoundedStale`] (and federation stealing)
//! unlocks a third, **relaxed** schedule between those two: stateful
//! policies route on the gateway's epoch-stamped stale view table, so
//! arrivals flow into mailboxes barrier-free like the stateless
//! schedule, and the lanes only synchronise at the *sync points* every
//! `k + 1` arrivals — where all mailboxes drain, the steal pass
//! rebalances batch-queue tails, and the view table is republished.
//! The serial driver runs the identical sync schedule at the identical
//! arrival ordinals, so the relaxed runs are still byte-identical at
//! every thread count (`tests/relaxed_equivalence.rs`).
//!
//! # Bit-identity argument (the headline guarantee)
//!
//! `tests/parallel_equivalence.rs` pins serialized outputs; the
//! reasoning for *why* it holds at any thread count:
//!
//! 1. The serial driver's global event order `(time, class, shard,
//!    id)` restricted to one shard is `(time, class, id)` — exactly
//!    each lane's private [`EventQueue`] order merged with its mailbox
//!    under the same completions-before-arrivals-before-wakeups rule.
//! 2. Clock advances for *other* shards' events are unobservable: a
//!    shard's behaviour depends on its clock only at its own events,
//!    and both drivers advance it to the same instants there. Each
//!    arrival carries its serial-driver processing time (`target`)
//!    into the mailbox, so even out-of-order deliveries replay.
//! 3. Ground-truth durations are sampled from per-shard RNG streams in
//!    per-shard start order — the same sequence either way.
//! 4. Wakeup scheduling: the serial driver checks every shard after
//!    every event, but a shard's wakeup condition (no pending events,
//!    non-empty batch queue) only changes at its *own* events, so the
//!    wakeup is always scheduled either at the stream-exhaustion
//!    instant `T_last` or immediately after one of the shard's own
//!    events — both of which the lane replays with the same `now`.
//! 5. `finish` advances every shard to the federation-wide end time
//!    (the maximum lane clock), matching the serial driver's habit of
//!    advancing all shards to every event time.
//!
//! Parallelism is therefore purely a wall-clock change; the serialized
//! [`FederationStats`] — traces included — is bit-identical.

use crate::event::{Event, EventKind, EventQueue};
use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultSite};
use crate::gateway::{FederationStats, Gateway};
use crate::journal::{JournalOp, ShardJournal};
use crate::reuse::Admit;
use crate::sink::{NullSink, Sink};
use crate::snapshot::Snapshot;
use crate::supervisor::{
    backoff_at, RecoveryActionKind, RecoveryLog, RecoveryPolicy,
};
use crate::SchedulerCore;
use std::collections::VecDeque;
use taskprune_model::{MachineId, PetMatrix, SimTime, Task, TaskId};
use taskprune_prob::rng::Xoshiro256PlusPlus;

/// One routed arrival in a shard's mailbox.
#[derive(Debug, Clone, Copy)]
struct Mail {
    /// The task, already relabelled with its shard-internal id.
    task: Task,
    /// The clock value the serial driver would process it at: the
    /// running maximum of arrival times (equal to `task.arrival` for
    /// the documented non-decreasing streams, later for stragglers).
    target: SimTime,
    /// `Some((primary, merged))` when the coordinator's reuse gate
    /// absorbed this task onto an in-flight primary: the lane delivers
    /// it through the piggyback path instead of a mapping event.
    reuse: Option<(TaskId, bool)>,
}

/// The lane-local half of the self-healing supervisor (see
/// [`crate::ParallelSupervisor`]): each lane carries its own journal,
/// checkpoint, retry budget, fault schedule and recovery log, so every
/// fault is detected and healed *on the worker thread that owns the
/// shard* — no cross-lane coordination, no barriers, no locks.
///
/// Semantics mirror the serial [`crate::Supervisor`] per shard:
///
/// * completions are journaled before the fault consult, so a lost or
///   delayed delivery can be redelivered from the durable record at
///   the fault instant (exact heal — zero trace in simulation state);
/// * a crash wipes the core, then bounded retries rebuild it from the
///   lane checkpoint plus journal replay;
/// * an exhausted budget fail-stops the lane: one free salvage restore
///   (a read of durable storage, not a retry) rebuilds the pre-crash
///   history so nothing already completed is lost, then the lane is
///   quarantined — subsequent deliveries are recorded but never
///   started, heap events vanish with the hardware, and everything
///   still pending surfaces as `Unfinished` at the drain.
///
/// The one structural difference from the serial supervisor: there is
/// no cross-shard backlog re-route (lanes cannot reach each other
/// mid-run) and no watermark health checks (lanes never pause); the
/// coordinator remaps *future* arrivals around a quarantined lane on
/// the lockstep path, and auto-checkpoints run on a per-lane arrival
/// cadence instead of a global watermark.
struct LaneGuard {
    policy: RecoveryPolicy,
    shard: usize,
    /// The durable restore point — refreshed on the checkpoint cadence.
    checkpoint: Snapshot,
    /// Operations applied since `checkpoint` (cleared when it moves).
    journal: ShardJournal,
    /// This shard's slice of the armed [`FaultPlan`].
    faults: Vec<FaultEvent>,
    retries_left: u32,
    arrivals_seen: u64,
    completions_seen: u64,
    checkpoints_seen: u64,
    recoveries_seen: u64,
    quarantined: bool,
    log: RecoveryLog,
}

impl LaneGuard {
    fn new(policy: RecoveryPolicy, shard: usize, checkpoint: Snapshot) -> Self {
        Self {
            policy,
            shard,
            checkpoint,
            journal: ShardJournal::new(),
            faults: Vec::new(),
            retries_left: policy.retry_budget,
            arrivals_seen: 0,
            completions_seen: 0,
            checkpoints_seen: 0,
            recoveries_seen: 0,
            quarantined: false,
            log: RecoveryLog::default(),
        }
    }

    /// The armed fault striking the `nth` operation at `site`, if any.
    fn fault_at(&self, site: FaultSite, nth: u64) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|e| e.kind.site() == site && e.nth == nth)
            .map(|e| e.kind)
    }

    /// Journals one completion delivery and consults the fault
    /// schedule. Returns whether the completion should be applied to
    /// the core (`false` = the delivery is lost; the journal record
    /// keeps it recoverable by a later replay, and the stuck task
    /// surfaces as `Unfinished` if the budget never allows one).
    fn on_completion(
        &mut self,
        time: SimTime,
        machine: MachineId,
        task: TaskId,
    ) -> bool {
        // Journal before the fault consult, exactly like the serial
        // driver: the transport loses the delivery *after* the durable
        // record exists, which is what makes redelivery possible.
        self.journal
            .record(time, JournalOp::Completion { machine, task });
        self.completions_seen += 1;
        match self.fault_at(FaultSite::Completion, self.completions_seen) {
            Some(
                kind @ (FaultKind::LostCompletion
                | FaultKind::DelayedCompletion),
            ) => {
                self.log.push(
                    time,
                    self.shard,
                    RecoveryActionKind::FaultDetected { fault: kind },
                );
                if self.retries_left == 0 {
                    return false; // stays lost: budget exhausted
                }
                self.retries_left -= 1;
                let backoff = backoff_at(self.policy.backoff_base, 1);
                self.log.push(
                    time,
                    self.shard,
                    RecoveryActionKind::RetryScheduled {
                        attempt: 1,
                        backoff,
                        at: SimTime(time.ticks().saturating_add(backoff)),
                    },
                );
                self.log.push(
                    time,
                    self.shard,
                    RecoveryActionKind::Redelivered,
                );
                true // redelivered from the journal record, same instant
            }
            Some(FaultKind::DuplicateCompletion) => {
                // The duplicated copy is rejected by the staleness
                // dedupe; the first copy applies and nothing needs
                // healing — log the suppression only.
                self.log.push(
                    time,
                    self.shard,
                    RecoveryActionKind::DuplicateSuppressed,
                );
                true
            }
            _ => true,
        }
    }

    /// Journals one routed arrival; returns whether the shard crashes
    /// right after its mapping round commits.
    fn on_arrival(&mut self, time: SimTime, task: Task) -> bool {
        self.journal.record(time, JournalOp::Arrival(task));
        self.arrivals_seen += 1;
        self.fault_at(FaultSite::Arrival, self.arrivals_seen)
            .is_some()
    }

    /// Journals one absorbed arrival (reuse piggyback); returns whether
    /// the shard crashes right after the absorption commits. Counts
    /// against the same arrival-site fault coordinates as a routed
    /// arrival — the serial driver consults its injector once per
    /// delivered arrival either way.
    fn on_piggyback(
        &mut self,
        time: SimTime,
        primary: TaskId,
        task: Task,
        merged: bool,
    ) -> bool {
        self.journal.record(
            time,
            JournalOp::Piggyback {
                primary,
                task,
                merged,
            },
        );
        self.arrivals_seen += 1;
        self.fault_at(FaultSite::Arrival, self.arrivals_seen)
            .is_some()
    }

    /// The crash path: wipe, then bounded retries of checkpoint +
    /// journal replay; on an exhausted budget, one free salvage
    /// restore and fail-stop (quarantine).
    fn settle_crash<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        now: SimTime,
    ) {
        self.log.push(
            now,
            self.shard,
            RecoveryActionKind::FaultDetected {
                fault: FaultKind::ShardCrash,
            },
        );
        core.wipe();
        let mut attempt = 0u32;
        while self.retries_left > 0 {
            attempt += 1;
            self.retries_left -= 1;
            let backoff = backoff_at(self.policy.backoff_base, attempt);
            self.log.push(
                now,
                self.shard,
                RecoveryActionKind::RetryScheduled {
                    attempt,
                    backoff,
                    at: SimTime(now.ticks().saturating_add(backoff)),
                },
            );
            self.recoveries_seen += 1;
            if self
                .fault_at(FaultSite::Recovery, self.recoveries_seen)
                .is_some()
            {
                self.log.push(
                    now,
                    self.shard,
                    RecoveryActionKind::RecoveryFailed { attempt },
                );
                continue;
            }
            if self.restore(core, now) {
                self.log.push(
                    now,
                    self.shard,
                    RecoveryActionKind::RecoveryReplayed {
                        journal_ops: self.journal.len() as u64,
                    },
                );
                return;
            }
            self.log.push(
                now,
                self.shard,
                RecoveryActionKind::RecoveryFailed { attempt },
            );
        }
        // Budget exhausted: the shard stays down. Rebuild its state
        // once from durable storage — not to revive it, but so the
        // history up to the crash (completed tasks, outcome records)
        // survives into the final stats — then fail-stop. No backlog
        // re-route: lanes cannot reach each other mid-run, so the
        // still-queued work lands as `Unfinished` instead.
        let _ = self.restore(core, now);
        self.quarantined = true;
        self.log.push(
            now,
            self.shard,
            RecoveryActionKind::Quarantined { rerouted: 0 },
        );
    }

    /// Checkpoint restore + journal replay + clock re-advance. Returns
    /// whether the core was rebuilt.
    fn restore<S: Sink>(
        &self,
        core: &mut SchedulerCore<'_, S>,
        now: SimTime,
    ) -> bool {
        if core.restore(&self.checkpoint).is_err() {
            return false;
        }
        self.journal.replay(core);
        if now > core.now() {
            core.advance_to(now);
        }
        true
    }

    /// Auto-checkpoint on the per-lane arrival cadence, retrying
    /// transient storage faults within the budget. Skipping on
    /// exhaustion is safe: the journal keeps growing, so recovery
    /// stays possible from the previous checkpoint.
    fn maybe_checkpoint<S: Sink>(&mut self, core: &SchedulerCore<'_, S>) {
        let interval = self.policy.checkpoint_interval.max(1);
        if !self.arrivals_seen.is_multiple_of(interval) {
            return;
        }
        let now = core.now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.checkpoints_seen += 1;
            if self
                .fault_at(FaultSite::Checkpoint, self.checkpoints_seen)
                .is_some()
            {
                self.log.push(
                    now,
                    self.shard,
                    RecoveryActionKind::CheckpointFailed { attempt },
                );
                if self.retries_left > 0 {
                    self.retries_left -= 1;
                    continue;
                }
                return;
            }
            self.checkpoint = core.snapshot();
            self.journal.clear();
            self.log.push(
                now,
                self.shard,
                RecoveryActionKind::CheckpointTaken {
                    watermark: self.arrivals_seen,
                },
            );
            return;
        }
    }
}

/// The per-shard driver state the serial [`crate::FederatedEngine`]
/// keeps globally, privatised so a worker thread can advance the shard
/// without touching anything shared.
struct ShardLane {
    /// This shard's pending completions/wakeups, in the serial
    /// driver's order restricted to the shard.
    events: EventQueue,
    /// Ground-truth duration sampling stream (same seed derivation as
    /// the serial driver: shard 0 keeps the base seed).
    rng: Xoshiro256PlusPlus,
    /// Heap-event count — the wakeup guard's "no event will ever fire
    /// again" condition.
    pending: usize,
    wakeup_pending: bool,
    /// Routed arrivals awaiting delivery (stateless-policy schedule).
    mailbox: VecDeque<Mail>,
    /// Lane-local supervision, when the engine is wrapped in a
    /// [`crate::ParallelSupervisor`]. `None` costs nothing on the
    /// unsupervised hot path.
    guard: Option<LaneGuard>,
}

impl ShardLane {
    fn new(seed: u64) -> Self {
        Self {
            events: EventQueue::new(),
            rng: Xoshiro256PlusPlus::new(seed),
            pending: 0,
            wakeup_pending: false,
            mailbox: VecDeque::new(),
            guard: None,
        }
    }

    /// Whether this lane has fail-stopped (budget-exhausted crash).
    fn is_quarantined(&self) -> bool {
        self.guard.as_ref().is_some_and(|g| g.quarantined)
    }

    /// Drops every pending heap event — a quarantined lane's hardware
    /// is gone, so in-flight completions and wakeups vanish unseen.
    fn discard_events(&mut self) {
        self.events = EventQueue::new();
        self.pending = 0;
        self.wakeup_pending = false;
    }

    /// Turns the shard's pending starts into completion events,
    /// sampling actual durations from this lane's ground-truth stream
    /// — the per-shard half of the serial driver's `dispatch_starts`.
    fn dispatch_starts<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
    ) {
        let now = core.now();
        for start in core.drain_starts() {
            let duration = truth.sample_duration(
                start.machine.type_id,
                start.task.type_id,
                &mut self.rng,
            );
            self.events.push(Event {
                time: now + duration,
                kind: EventKind::Completion {
                    machine: start.machine.id,
                    task: start.task.id,
                },
            });
            self.pending += 1;
        }
    }

    /// Whether a heap event is due strictly before an arrival at
    /// `cutoff` (completions at the cutoff instant fire first, per the
    /// event-ordering contract).
    fn has_due(&self, cutoff: SimTime) -> bool {
        self.events.peek().is_some_and(|e| {
            e.time < cutoff
                || (e.time == cutoff
                    && matches!(e.kind, EventKind::Completion { .. }))
        })
    }

    /// Processes every completion due before an arrival at `cutoff`,
    /// then advances the shard clock to `target` (the arrival's serial
    /// processing instant) so a subsequent routing view or
    /// `push_arrival` observes the same `now` the serial driver would.
    fn advance_events<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
        cutoff: SimTime,
        target: SimTime,
    ) {
        if self.is_quarantined() {
            while self.has_due(cutoff) {
                self.events.pop();
                self.pending -= 1;
            }
            if target > core.now() {
                core.advance_to(target);
            }
            return;
        }
        while self.has_due(cutoff) {
            let event = self.events.pop().expect("has_due peeked");
            self.pending -= 1;
            core.advance_to(event.time);
            match event.kind {
                EventKind::Completion { machine, task } => {
                    let apply = match self.guard.as_mut() {
                        Some(g) => g.on_completion(event.time, machine, task),
                        None => true,
                    };
                    if !apply || !core.complete(machine, task) {
                        continue; // lost delivery, or stale after a
                                  // cancellation
                    }
                }
                // Wakeups are only ever scheduled once the arrival
                // stream is exhausted (`drain`), never before.
                _ => unreachable!("only completions precede the drain"),
            }
            self.dispatch_starts(core, truth);
            core.drain_decisions();
        }
        if target > core.now() {
            core.advance_to(target);
        }
    }

    /// Delivers one mailbox arrival: due completions first, then the
    /// shard's mapping event at the arrival's serial instant. When a
    /// [`LaneGuard`] is installed this is also the fault frontier:
    /// the arrival is journaled, the crash schedule consulted after
    /// the mapping round commits, and the auto-checkpoint cadence
    /// advanced.
    fn deliver<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
        mail: Mail,
    ) {
        self.advance_events(core, truth, mail.task.arrival, mail.target);
        if self.is_quarantined() {
            // Fail-stopped shard: record the arrival so its outcome is
            // accounted (`Unfinished` at the drain — no machine will
            // ever start it), but dispatch nothing.
            match mail.reuse {
                Some((primary, merged)) => {
                    core.apply_piggyback(primary, mail.task, merged);
                }
                None => core.push_arrival(mail.task),
            }
            let _ = core.drain_starts();
            core.drain_decisions();
            return;
        }
        let crashed = match self.guard.as_mut() {
            Some(g) => match mail.reuse {
                Some((primary, merged)) => {
                    g.on_piggyback(mail.target, primary, mail.task, merged)
                }
                None => g.on_arrival(mail.target, mail.task),
            },
            None => false,
        };
        match mail.reuse {
            Some((primary, merged)) => {
                core.apply_piggyback(primary, mail.task, merged);
            }
            None => core.push_arrival(mail.task),
        }
        self.dispatch_starts(core, truth);
        core.drain_decisions();
        if crashed {
            // The crash strikes after the arrival's mapping round fully
            // committed: the surviving heap already holds the round's
            // consequences, which is exactly the failure model the
            // checkpoint + journal replay rebuilds against.
            let now = core.now();
            let g = self.guard.as_mut().expect("crash implies a guard");
            g.settle_crash(core, now);
            if g.quarantined {
                self.discard_events();
                return;
            }
        }
        if let Some(g) = self.guard.as_mut() {
            g.maybe_checkpoint(core);
        }
    }

    /// The serial driver's per-shard wakeup safety net: when no event
    /// will ever fire again on this shard but its batch queue still
    /// holds work, schedule a synthetic mapping event just past the
    /// earliest pending deadline (clamped to `now`, the serial
    /// driver's clock at the moment it would run this check).
    fn maybe_schedule_wakeup<S: Sink>(
        &mut self,
        core: &SchedulerCore<'_, S>,
        now: SimTime,
    ) {
        if self.wakeup_pending || self.pending > 0 {
            return;
        }
        let Some(earliest) = core.earliest_pending_deadline() else {
            return;
        };
        self.events.push(Event {
            time: SimTime(earliest.ticks().max(now.ticks()) + 1),
            kind: EventKind::Wakeup,
        });
        self.pending += 1;
        self.wakeup_pending = true;
    }

    /// Runs the shard to completion after the last global arrival
    /// (processed at `t_last`): the first wakeup check fires at
    /// `t_last` — the serial driver's stream-exhaustion instant — then
    /// the remaining events drain with a check after each.
    fn drain<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
        t_last: SimTime,
    ) {
        if self.is_quarantined() {
            // Heap events die with the hardware; whatever the batch
            // and machine queues still hold surfaces as `Unfinished`
            // when the core finishes.
            self.discard_events();
            return;
        }
        self.maybe_schedule_wakeup(core, t_last);
        while let Some(event) = self.events.pop() {
            self.pending -= 1;
            core.advance_to(event.time);
            match event.kind {
                EventKind::Completion { machine, task } => {
                    let apply = match self.guard.as_mut() {
                        Some(g) => g.on_completion(event.time, machine, task),
                        None => true,
                    };
                    if !apply || !core.complete(machine, task) {
                        continue; // lost delivery, or stale after a
                                  // cancellation
                    }
                }
                EventKind::Wakeup => {
                    if let Some(g) = self.guard.as_mut() {
                        g.journal.record(event.time, JournalOp::Wakeup);
                    }
                    self.wakeup_pending = false;
                    core.wakeup();
                }
                EventKind::Arrival { .. } => {
                    unreachable!("arrivals are mailbox-fed, never enqueued")
                }
            }
            self.dispatch_starts(core, truth);
            core.drain_decisions();
            self.maybe_schedule_wakeup(core, core.now());
        }
    }

    /// The whole-shard schedule of the stateless-routing path: replay
    /// the private mailbox/heap merge from start to finish, then
    /// drain. Runs as one pool job — no barriers.
    fn run_shard<S: Sink>(
        &mut self,
        core: &mut SchedulerCore<'_, S>,
        truth: &PetMatrix,
        t_last: Option<SimTime>,
    ) {
        while let Some(mail) = self.mailbox.pop_front() {
            self.deliver(core, truth, mail);
        }
        let Some(t_last) = t_last else {
            return; // no arrivals anywhere: nothing can have happened
        };
        // Remaining completions up to the stream-exhaustion instant
        // fire under arrival-phase rules (no wakeup checks yet) …
        self.advance_events(core, truth, t_last, t_last);
        // … then the drain regime begins, exactly at T_last.
        self.drain(core, truth, t_last);
    }
}

/// The parallel federated discrete-event driver. Construct via
/// [`crate::GatewayBuilder::build_parallel`]; behaviourally a drop-in
/// for [`crate::FederatedEngine::run_stream`] — same inputs, same
/// deterministic [`FederationStats`], bit-identical at every thread
/// count — with wall-clock scaling across shards. See the [module
/// docs](self) for the schedule and the bit-identity argument.
pub struct ParallelFederatedEngine<'a, S: Sink = NullSink> {
    gateway: Gateway<'a, S>,
    truth: &'a PetMatrix,
    lanes: Vec<ShardLane>,
    pool: rayon::ThreadPool,
    threads: usize,
    /// Running maximum of ingested arrival times — the serial
    /// processing instant of the latest arrival, carried across
    /// [`ParallelFederatedEngine::ingest_prefix`] calls.
    watermark: Option<SimTime>,
    /// Pre-routing copies of every ingested arrival (original external
    /// ids), kept when resharding needs to re-split the stream.
    arrival_log: Option<Vec<Task>>,
}

impl<'a, S: Sink> ParallelFederatedEngine<'a, S> {
    /// Wraps a built gateway. Crate-internal;
    /// [`crate::GatewayBuilder::build_parallel`] is the public
    /// entrance. `threads = None` honours `TASKPRUNE_THREADS` (else
    /// all hardware threads).
    pub(crate) fn from_gateway(
        gateway: Gateway<'a, S>,
        truth: &'a PetMatrix,
        threads: Option<usize>,
    ) -> Self {
        let lanes = gateway
            .shards()
            .iter()
            .map(|s| ShardLane::new(s.config().seed))
            .collect();
        let threads = threads
            .unwrap_or_else(|| rayon::ThreadPool::global().num_threads())
            .max(1);
        Self {
            gateway,
            truth,
            lanes,
            pool: rayon::ThreadPool::new(threads),
            threads,
            watermark: None,
            arrival_log: None,
        }
    }

    /// Number of shards being driven.
    pub fn n_shards(&self) -> usize {
        self.gateway.n_shards()
    }

    /// Total executor threads (workers + the coordinating caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Consumes an arrival stream ordered by non-decreasing
    /// `task.arrival` — external ids may be sparse, out of order or
    /// duplicated — routes every task in global arrival order, runs
    /// the shards in parallel, and drains everything after the last
    /// arrival. Output is bit-identical to
    /// [`crate::FederatedEngine::run_stream`] on the same inputs.
    pub fn run_stream<I>(self, arrivals: I) -> FederationStats
    where
        I: IntoIterator<Item = Task>,
    {
        self.finish_stream(arrivals)
    }

    /// Routes and executes a prefix of the arrival stream, leaving the
    /// engine paused at the prefix watermark: every prefix arrival has
    /// been routed (id compaction, arrival record, policy state) and
    /// delivered to its shard, and no post-stream drain has begun.
    /// Pair with [`ParallelFederatedEngine::snapshot_gateway`] to
    /// checkpoint the paused federation, then
    /// [`ParallelFederatedEngine::finish_stream`] to resume — or drop
    /// the engine and re-split the recorded
    /// [`ParallelFederatedEngine::arrival_log`] across a different
    /// shard count (live resharding).
    pub fn ingest_prefix<I>(&mut self, arrivals: I)
    where
        I: IntoIterator<Item = Task>,
    {
        self.ingest(arrivals);
        if self.stateless_schedule() || self.gateway.sync_enabled() {
            // The mailbox schedules (stateless and relaxed) normally
            // defer shard work to the finale or the next sync point;
            // deliver the routed prefix now so the pause point observes
            // shards advanced to the watermark. The per-shard operation
            // sequence is exactly the one `run_shard` (or the next
            // barrier) would have replayed, so a later `finish_stream`
            // stays bit-identical.
            self.deliver_mailboxes();
        }
    }

    /// Ingests the remaining arrivals and runs the federation to
    /// completion — the second half of a run paused by
    /// [`ParallelFederatedEngine::ingest_prefix`]. Calling it with the
    /// whole stream (no prior prefix) is exactly
    /// [`ParallelFederatedEngine::run_stream`].
    pub fn finish_stream<I>(mut self, arrivals: I) -> FederationStats
    where
        I: IntoIterator<Item = Task>,
    {
        self.ingest(arrivals);
        let t_last = self.watermark;
        // Parallel finale: every lane runs/drains independently. On
        // the stateless path this is the *entire* remaining simulation;
        // on the lockstep path only the post-arrival drain remains.
        {
            let truth = self.truth;
            let lanes = &mut self.lanes;
            let shards = self.gateway.shards_mut();
            self.pool.scope(|s| {
                for (lane, core) in lanes.iter_mut().zip(shards.iter_mut()) {
                    s.spawn(move || lane.run_shard(core, truth, t_last));
                }
            });
        }
        self.sync_quarantine_flags();
        self.finish()
    }

    /// Starts recording every ingested arrival (pre-routing, original
    /// external ids) so a paused run can be re-split across a different
    /// shard count. Idempotent; enable before the first ingest.
    pub fn enable_arrival_log(&mut self) {
        self.arrival_log.get_or_insert_with(Vec::new);
    }

    /// The recorded arrivals in ingest order. Empty unless
    /// [`ParallelFederatedEngine::enable_arrival_log`] was called.
    pub fn arrival_log(&self) -> &[Task] {
        self.arrival_log.as_deref().unwrap_or(&[])
    }

    /// Captures the routing layer — shard cores, id compaction,
    /// arrival records and policy state — as a sealed, versioned
    /// [`Snapshot`]. Meaningful at an
    /// [`ParallelFederatedEngine::ingest_prefix`] pause point.
    pub fn snapshot_gateway(&self) -> Snapshot {
        self.gateway.snapshot()
    }

    /// Installs a [`LaneGuard`] on every lane: journaling on, an
    /// initial checkpoint captured, the retry budget charged. Called by
    /// [`crate::ParallelSupervisor::new`]; arm faults afterwards so the
    /// bootstrap captures are not themselves fault targets.
    pub(crate) fn supervise(&mut self, policy: RecoveryPolicy) {
        for (i, (lane, core)) in self
            .lanes
            .iter_mut()
            .zip(self.gateway.shards().iter())
            .enumerate()
        {
            lane.guard = Some(LaneGuard::new(policy, i, core.snapshot()));
        }
    }

    /// Arms deterministic fault injection lane-locally: each guard
    /// receives its own shard's slice of the plan. Requires
    /// [`ParallelFederatedEngine::supervise`] first (guards hold the
    /// schedules); slices for unsupervised lanes are dropped.
    pub(crate) fn arm_lane_faults(&mut self, plan: &FaultPlan) {
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            if let Some(g) = lane.guard.as_mut() {
                g.faults = plan.for_shard(i);
            }
        }
    }

    /// Whether the gateway carries an overload ladder (tenancy with a
    /// [`crate::LadderConfig`]).
    pub(crate) fn ladder_enabled(&self) -> bool {
        self.gateway.ladder_enabled()
    }

    /// Arrivals admitted past the tenant table so far — the ladder's
    /// sensing watermark (shed tasks never count).
    pub(crate) fn arrivals_admitted(&self) -> u64 {
        self.gateway.arrivals_admitted()
    }

    /// Summed batch-queue depth across healthy shards — the same
    /// pressure signal the serial driver senses, read at a quiescent
    /// ingest pause where every lane is current.
    pub(crate) fn overload_pressure(&self) -> usize {
        self.gateway
            .shards()
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.gateway.is_quarantined(*i))
            .map(|(_, s)| s.pending_batch_len())
            .sum()
    }

    /// Feeds one pressure sample to the overload ladder; mirrors
    /// [`crate::FederatedEngine::overload_tick`] — on a transition the
    /// new rung reaches every healthy shard's pruner bias and each
    /// supervised lane's journal, stamped at the ingest watermark (the
    /// serial driver's clock at the same ordinal).
    pub(crate) fn overload_tick(
        &mut self,
        pressure: usize,
    ) -> Option<(u8, u8)> {
        let (from, to) = self.gateway.overload_tick(pressure)?;
        let time = self.watermark.unwrap_or(SimTime::ZERO);
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            if self.gateway.is_quarantined(i) {
                continue;
            }
            if let Some(g) = lane.guard.as_mut() {
                g.journal.record(time, JournalOp::SlaRung { rung: to });
            }
        }
        for i in 0..self.gateway.n_shards() {
            if self.gateway.is_quarantined(i) {
                continue;
            }
            self.gateway.shards_mut()[i].set_sla_rung(to);
        }
        Some((from, to))
    }

    /// The serial processing instant of the latest ingested arrival
    /// (the supervisor's timestamp for quiescent-pause actions).
    pub(crate) fn watermark_time(&self) -> SimTime {
        self.watermark.unwrap_or(SimTime::ZERO)
    }

    /// Records a supervisor action against `shard`'s lane log (merged
    /// into [`FederationStats::recovery_log`] at the drain). No-op on
    /// unsupervised lanes.
    pub(crate) fn push_recovery_action(
        &mut self,
        time: SimTime,
        shard: usize,
        kind: RecoveryActionKind,
    ) {
        if let Some(g) = self.lanes[shard].guard.as_mut() {
            g.log.push(time, shard, kind);
        }
    }

    /// Publishes lane fail-stops into the gateway's routing layer so
    /// subsequent ingests remap new arrivals around dead shards.
    fn sync_quarantine_flags(&mut self) {
        for i in 0..self.lanes.len() {
            if self.lanes[i].is_quarantined() {
                self.gateway.set_quarantined(i);
            }
        }
    }

    /// Whether the zero-barrier mailbox schedule applies. Stealing
    /// disqualifies it: steal points need every lane current, so the
    /// relaxed schedule (periodic barriers) runs instead.
    fn stateless_schedule(&self) -> bool {
        (self.gateway.policy_is_stateless() || self.gateway.n_shards() == 1)
            && !self.gateway.sync_enabled()
    }

    /// Routes a batch of arrivals under whichever schedule the policy
    /// admits, updating the watermark and the arrival log.
    fn ingest<I>(&mut self, arrivals: I)
    where
        I: IntoIterator<Item = Task>,
    {
        if self.stateless_schedule() {
            self.route_ingest(arrivals);
        } else if self.gateway.sync_enabled() {
            self.relaxed_ingest(arrivals);
        } else {
            self.lockstep_ingest(arrivals);
        }
    }

    /// Stateless-policy schedule: route the stream into per-shard
    /// mailboxes on the coordinator (identical routing bookkeeping to
    /// the serial driver); shard execution is deferred.
    fn route_ingest<I>(&mut self, arrivals: I)
    where
        I: IntoIterator<Item = Task>,
    {
        for mut task in arrivals {
            // Tenant admission precedes every coordinate update
            // (watermark, arrival log, mailboxes): a shed task is
            // invisible, exactly as in the serial driver — same
            // verdict from the same arrival-visible data in the same
            // global order.
            if self.gateway.pre_admit(&mut task).is_some() {
                continue;
            }
            let target =
                self.watermark.map_or(task.arrival, |w| w.max(task.arrival));
            self.watermark = Some(target);
            if let Some(log) = self.arrival_log.as_mut() {
                log.push(task);
            }
            match self.gateway.admit_route(task) {
                Admit::Fresh { shard, task } => {
                    self.lanes[shard].mailbox.push_back(Mail {
                        task,
                        target,
                        reuse: None,
                    });
                }
                Admit::Absorb {
                    shard,
                    primary,
                    task,
                    merged,
                } => {
                    self.lanes[shard].mailbox.push_back(Mail {
                        task,
                        target,
                        reuse: Some((primary, merged)),
                    });
                }
            }
        }
    }

    /// Drains every shard's mailbox in parallel — the delivery half of
    /// the stateless schedule, pulled forward by `ingest_prefix`.
    fn deliver_mailboxes(&mut self) {
        let truth = self.truth;
        let lanes = &mut self.lanes;
        let shards = self.gateway.shards_mut();
        self.pool.scope(|s| {
            for (lane, core) in lanes.iter_mut().zip(shards.iter_mut()) {
                if !lane.mailbox.is_empty() {
                    s.spawn(move || {
                        while let Some(mail) = lane.mailbox.pop_front() {
                            lane.deliver(core, truth, mail);
                        }
                    });
                }
            }
        });
        self.sync_quarantine_flags();
    }

    /// Relaxed-consistency schedule ([`crate::Consistency`] /
    /// stealing): arrivals route into mailboxes exactly like the
    /// stateless schedule — stateful policies read the gateway's
    /// epoch-stamped stale view table instead of live shards — and the
    /// only barriers are the **sync points** every `k + 1` arrivals,
    /// where all lanes drain their mailboxes and come fully current
    /// before the coordinator runs the steal pass and republishes the
    /// view table. Between sync points there are zero cross-shard
    /// barriers; at a sync point both drivers expose byte-identical
    /// shard state at the same arrival ordinal (every completion due
    /// before the sync instant applied, clocks at the arrival's serial
    /// processing time), which is the relaxed equivalence contract
    /// `tests/relaxed_equivalence.rs` pins.
    fn relaxed_ingest<I>(&mut self, arrivals: I)
    where
        I: IntoIterator<Item = Task>,
    {
        for mut task in arrivals {
            // Shed before any coordinate moves — in particular before
            // the sync-ordinal check: a shed task must not trigger (or
            // delay) a sync point, or the steal schedule would observe
            // another tenant's burst.
            if self.gateway.pre_admit(&mut task).is_some() {
                continue;
            }
            let cutoff = task.arrival;
            let target = self.watermark.map_or(cutoff, |w| w.max(cutoff));
            self.watermark = Some(target);
            if let Some(log) = self.arrival_log.as_mut() {
                log.push(task);
            }
            if self.gateway.sync_due() {
                self.sync_lanes(cutoff, target);
                self.run_sync_point(target);
            }
            match self.gateway.admit_route(task) {
                Admit::Fresh { shard, task } => {
                    self.lanes[shard].mailbox.push_back(Mail {
                        task,
                        target,
                        reuse: None,
                    });
                }
                Admit::Absorb {
                    shard,
                    primary,
                    task,
                    merged,
                } => {
                    self.lanes[shard].mailbox.push_back(Mail {
                        task,
                        target,
                        reuse: Some((primary, merged)),
                    });
                }
            }
        }
    }

    /// The sync-point barrier: every lane drains its mailbox and
    /// processes all completions due before `cutoff`, finishing with
    /// its clock at `target` — the exact state the serial driver holds
    /// when it reaches the same arrival ordinal.
    fn sync_lanes(&mut self, cutoff: SimTime, target: SimTime) {
        let truth = self.truth;
        let lanes = &mut self.lanes;
        let shards = self.gateway.shards_mut();
        if lanes
            .iter()
            .any(|l| !l.mailbox.is_empty() || l.has_due(cutoff))
        {
            self.pool.scope(|s| {
                for (lane, core) in lanes.iter_mut().zip(shards.iter_mut()) {
                    if !lane.mailbox.is_empty() || lane.has_due(cutoff) {
                        s.spawn(move || {
                            while let Some(mail) = lane.mailbox.pop_front() {
                                lane.deliver(core, truth, mail);
                            }
                            lane.advance_events(core, truth, cutoff, target);
                        });
                    } else if target > core.now() {
                        core.advance_to(target);
                    }
                }
            });
        } else {
            for core in shards.iter_mut() {
                if target > core.now() {
                    core.advance_to(target);
                }
            }
        }
        self.sync_quarantine_flags();
    }

    /// Runs the coordinator half of a sync point — steal pass plus view
    /// refresh — then journals the transfers into the lane guards and
    /// dispatches the thieves' freshly mapped starts. Steals are
    /// coordinator-side operations: they advance **no** lane fault
    /// coordinate (arrival/completion counts), so a fault plan strikes
    /// the same operations with or without stealing.
    fn run_sync_point(&mut self, target: SimTime) {
        let records = self.gateway.sync_point();
        if records.is_empty() {
            return;
        }
        for record in &records {
            for &(donor_internal, adopted) in &record.moved {
                if let Some(g) = self.lanes[record.from].guard.as_mut() {
                    g.journal.record(
                        target,
                        JournalOp::Steal {
                            task: donor_internal,
                        },
                    );
                }
                if let Some(g) = self.lanes[record.to].guard.as_mut() {
                    g.journal
                        .record(target, JournalOp::Adopt { task: adopted });
                }
            }
        }
        let truth = self.truth;
        let lanes = &mut self.lanes;
        let shards = self.gateway.shards_mut();
        for (lane, core) in lanes.iter_mut().zip(shards.iter_mut()) {
            lane.dispatch_starts(core, truth);
            core.drain_decisions();
        }
    }

    /// State-dependent-policy schedule: one epoch per arrival. All
    /// lanes advance in parallel to the arrival's watermark, then the
    /// coordinator routes on views every bit as fresh as the serial
    /// driver's and runs the routed shard's mapping event inline (that
    /// chain is serial by data dependency — each routing decision
    /// observes the previous arrival's mapping).
    fn lockstep_ingest<I>(&mut self, arrivals: I)
    where
        I: IntoIterator<Item = Task>,
    {
        let truth = self.truth;
        for mut task in arrivals {
            if self.gateway.pre_admit(&mut task).is_some() {
                continue;
            }
            let cutoff = task.arrival;
            let target = self.watermark.map_or(cutoff, |w| w.max(cutoff));
            self.watermark = Some(target);
            if let Some(log) = self.arrival_log.as_mut() {
                log.push(task);
            }
            {
                let lanes = &mut self.lanes;
                let shards = self.gateway.shards_mut();
                // A same-instant burst usually has nothing due between
                // its arrivals; don't pay for a scope (allocation +
                // completion latch) when no lane will spawn.
                if lanes.iter().any(|lane| lane.has_due(cutoff)) {
                    self.pool.scope(|s| {
                        for (lane, core) in
                            lanes.iter_mut().zip(shards.iter_mut())
                        {
                            if lane.has_due(cutoff) {
                                s.spawn(move || {
                                    lane.advance_events(
                                        core, truth, cutoff, target,
                                    );
                                });
                            } else if target > core.now() {
                                // No shard work this epoch: the clock
                                // tick is too cheap to ship out.
                                core.advance_to(target);
                            }
                        }
                    });
                } else {
                    for core in shards.iter_mut() {
                        if target > core.now() {
                            core.advance_to(target);
                        }
                    }
                }
            }
            // The routing + mapping chain is the serial driver's,
            // split so the lane guard (when installed) can journal the
            // relabelled arrival and consult the crash schedule after
            // the mapping round commits — the same fault frontier the
            // mailbox path uses.
            let (shard, reuse, relabelled) =
                match self.gateway.admit_route(task) {
                    Admit::Fresh { shard, task } => (shard, None, task),
                    Admit::Absorb {
                        shard,
                        primary,
                        task,
                        merged,
                    } => (shard, Some((primary, merged)), task),
                };
            if self.lanes[shard].is_quarantined() {
                // Only reachable when *every* shard is quarantined
                // (route_only remaps around dead shards otherwise):
                // record the arrival, start nothing.
                let core = &mut self.gateway.shards_mut()[shard];
                match reuse {
                    Some((primary, merged)) => {
                        core.apply_piggyback(primary, relabelled, merged);
                    }
                    None => core.push_arrival(relabelled),
                }
                let _ = core.drain_starts();
                core.drain_decisions();
                continue;
            }
            let crashed = match self.lanes[shard].guard.as_mut() {
                Some(g) => match reuse {
                    Some((primary, merged)) => {
                        g.on_piggyback(target, primary, relabelled, merged)
                    }
                    None => g.on_arrival(target, relabelled),
                },
                None => false,
            };
            {
                let core = &mut self.gateway.shards_mut()[shard];
                match reuse {
                    Some((primary, merged)) => {
                        core.apply_piggyback(primary, relabelled, merged);
                    }
                    None => core.push_arrival(relabelled),
                }
                self.lanes[shard].dispatch_starts(core, truth);
                core.drain_decisions();
            }
            if crashed {
                let core = &mut self.gateway.shards_mut()[shard];
                let now = core.now();
                let g = self.lanes[shard]
                    .guard
                    .as_mut()
                    .expect("crash implies a guard");
                g.settle_crash(core, now);
                if g.quarantined {
                    self.lanes[shard].discard_events();
                    self.gateway.set_quarantined(shard);
                    continue;
                }
            }
            if let Some(g) = self.lanes[shard].guard.as_mut() {
                g.maybe_checkpoint(&self.gateway.shards()[shard]);
            }
        }
    }

    /// Deterministic fan-in: advance every shard to the federation-wide
    /// end time (the serial driver's shared final clock) and collect
    /// the outcome record in fixed shard order — with the lane guards'
    /// recovery logs merged (shard-index order) into the stats.
    fn finish(mut self) -> FederationStats {
        let mut recovery = RecoveryLog::default();
        for lane in &mut self.lanes {
            if let Some(g) = lane.guard.as_mut() {
                recovery.extend(std::mem::take(&mut g.log));
            }
        }
        let t_end = self
            .gateway
            .shards()
            .iter()
            .map(SchedulerCore::now)
            .max()
            .unwrap_or(SimTime::ZERO);
        for core in self.gateway.shards_mut() {
            if t_end > core.now() {
                core.advance_to(t_end);
            }
        }
        let mut stats = self.gateway.finish();
        stats.recovery = recovery;
        stats
    }
}

impl<S: Sink> std::fmt::Debug for ParallelFederatedEngine<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelFederatedEngine")
            .field("gateway", &self.gateway)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::gateway::GatewayBuilder;
    use crate::route::{LeastQueuedRoute, RoundRobinRoute};
    use crate::traits::{Assignment, BatchMapper, MappingStrategy, NoPruning};
    use crate::view::SystemView;
    use taskprune_model::{
        BinSpec, Cluster, MachineId, TaskOutcome, TaskTypeId,
    };
    use taskprune_prob::Pmf;

    fn det_pet() -> PetMatrix {
        PetMatrix::new(BinSpec::new(100), 1, 1, vec![Pmf::point_mass(2)])
    }

    struct ToZero;
    impl BatchMapper for ToZero {
        fn name(&self) -> &str {
            "to-zero"
        }
        fn select(
            &mut self,
            view: &SystemView<'_>,
            candidates: &[Task],
        ) -> Vec<Assignment> {
            candidates
                .iter()
                .take(view.free_slots(MachineId(0)))
                .map(|t| Assignment {
                    task: t.id,
                    machine: MachineId(0),
                })
                .collect()
        }
    }

    fn tasks(n: u64, every: u64) -> Vec<Task> {
        (0..n)
            .map(|i| {
                let arr = i * every;
                Task::new(
                    i,
                    TaskTypeId(0),
                    SimTime(arr),
                    SimTime(arr + 100_000),
                )
            })
            .collect()
    }

    fn builder<'a>(
        pet: &'a PetMatrix,
        cluster: &Cluster,
        shards: usize,
    ) -> GatewayBuilder<'a, NullSink> {
        GatewayBuilder::new(cluster, pet)
            .config(SimConfig::batch(1))
            .shards(shards)
            .strategy_with(|_| MappingStrategy::Batch(Box::new(ToZero)))
            .pruner_with(|_| Box::new(NoPruning))
    }

    fn run_parallel(
        shards: usize,
        threads: usize,
        stateless: bool,
        workload: &[Task],
    ) -> FederationStats {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let mut b = builder(&pet, &cluster, shards).threads(threads);
        if !stateless {
            b = b.policy(LeastQueuedRoute::new());
        } else {
            b = b.policy(RoundRobinRoute::new());
        }
        b.build_parallel()
            .expect("valid configuration")
            .run_stream(workload.iter().copied())
    }

    #[test]
    fn empty_stream_finishes_cleanly() {
        let stats = run_parallel(3, 2, true, &[]);
        assert_eq!(stats.n_tasks(), 0);
        assert_eq!(stats.end_time(), SimTime::ZERO);
    }

    #[test]
    fn both_schedules_complete_everything() {
        let workload = tasks(60, 40);
        for stateless in [true, false] {
            let stats = run_parallel(4, 3, stateless, &workload);
            assert_eq!(stats.n_tasks(), 60, "stateless={stateless}");
            assert_eq!(stats.unreported(), 0, "stateless={stateless}");
            assert_eq!(
                stats.count(TaskOutcome::CompletedOnTime),
                60,
                "stateless={stateless}"
            );
        }
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        // The crate-local smoke version of the root equivalence suite.
        let workload = tasks(80, 25);
        for stateless in [true, false] {
            let reference = run_parallel(4, 1, stateless, &workload);
            for threads in [2, 4] {
                let other = run_parallel(4, threads, stateless, &workload);
                assert_eq!(
                    serde_json::to_string(&reference).unwrap(),
                    serde_json::to_string(&other).unwrap(),
                    "stateless={stateless} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn prefix_ingest_then_finish_matches_one_shot() {
        let workload = tasks(50, 30);
        for stateless in [true, false] {
            let reference = run_parallel(3, 2, stateless, &workload);
            let pet = det_pet();
            let cluster = Cluster::one_per_type(1);
            let mut b = builder(&pet, &cluster, 3).threads(2);
            if stateless {
                b = b.policy(RoundRobinRoute::new());
            } else {
                b = b.policy(LeastQueuedRoute::new());
            }
            let mut engine = b.build_parallel().expect("valid configuration");
            engine.enable_arrival_log();
            engine.ingest_prefix(workload[..20].iter().copied());
            assert_eq!(engine.arrival_log().len(), 20);
            engine
                .snapshot_gateway()
                .verify()
                .expect("paused-federation snapshot verifies");
            let stats = engine.finish_stream(workload[20..].iter().copied());
            assert_eq!(
                serde_json::to_string(&reference).unwrap(),
                serde_json::to_string(&stats).unwrap(),
                "stateless={stateless}"
            );
        }
    }

    #[test]
    fn threads_knob_is_reported() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let engine = builder(&pet, &cluster, 2)
            .threads(7)
            .build_parallel()
            .expect("valid configuration");
        assert_eq!(engine.threads(), 7);
        assert_eq!(engine.n_shards(), 2);
    }
}
