//! The streaming scheduler core: mapping decisions without a clock
//! driver.
//!
//! [`SchedulerCore`] is the paper's resource allocator (Fig. 1) as a
//! *clock-free state machine*. It owns the machine queues, the batch
//! queue, the mapping heuristic and the pruning policy, but it never
//! schedules an event and never samples an execution time. Callers feed
//! it reality:
//!
//! * [`advance_to`](SchedulerCore::advance_to) moves the core's notion
//!   of "now" forward;
//! * [`push_arrival`](SchedulerCore::push_arrival) ingests one task —
//!   live traffic, a recorded trace, or the §V-B generator all feed this
//!   same path;
//! * [`complete`](SchedulerCore::complete) reports that a machine
//!   finished its running task;
//! * [`wakeup`](SchedulerCore::wakeup) fires a synthetic mapping event
//!   (the deferral-starvation safety net).
//!
//! Each of these runs one *mapping event* (the paper's Fig. 5
//! procedure) and records its outcomes as typed [`Decision`]s, drained
//! with [`drain_decisions`](SchedulerCore::drain_decisions). Tasks the
//! core wants executed surface as [`Start`] records via
//! [`drain_starts`](SchedulerCore::drain_starts); the caller decides
//! when those executions finish and reports back via `complete` — in a
//! simulation that means sampling a ground-truth duration, in a live
//! deployment it means waiting for the worker.
//!
//! [`crate::Engine`] is the bundled discrete-event driver over this
//! core; [`crate::SchedulerBuilder`] constructs either.
//!
//! # Allocation discipline
//!
//! A steady-state mapping event performs no heap allocation in the
//! core: the reactive-drop list, the candidate list, the proposal list,
//! the deferred-id set, the drop work-lists, the event report and the
//! decision/start buffers are all reused arenas, and [`SystemView`]
//! construction is three borrows on the stack. (The estimator side has
//! been allocation-free since the convolution arena; see
//! [`crate::queue`].)

use crate::config::{AllocationMode, SimConfig};
use crate::queue::MachineQueue;
use crate::reuse::{ReuseLedger, ReuseStats};
use crate::sink::{NullSink, Sink};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::stats::SimStats;
use crate::trace::{QueueSnapshot, TraceEvent};
use crate::traits::{Assignment, EventReport, MappingStrategy, Pruner};
use crate::view::SystemView;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashSet;
use taskprune_model::{
    Machine, MachineId, PetMatrix, SimTime, Task, TaskId, TaskOutcome,
};

/// One scheduling decision the core took during a mapping event.
///
/// Decisions are the core's *output stream*: every mapping event appends
/// the decisions it took, and the caller drains them with
/// [`SchedulerCore::drain_decisions`]. They mirror the paper's Fig. 5
/// procedure — reactive drops (Step 1), proactive probabilistic drops
/// (Steps 3–6), assignments and deferrals (Steps 7–11) — plus the two
/// immediate-mode outcomes (rejection, optional late cancellation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The task was committed to a machine queue (Step 11).
    Assign {
        /// The mapped task.
        task: TaskId,
        /// The machine queue it joined.
        machine: MachineId,
    },
    /// The pruner vetoed a proposed mapping; the task stays in the batch
    /// queue until the next mapping event (Step 10).
    DeferToBatch {
        /// The deferred task.
        task: TaskId,
    },
    /// The task's deadline passed while it was pending, so it was
    /// dropped reactively (Step 1; applied by every configuration).
    DropReactive {
        /// The dropped task.
        task: TaskId,
    },
    /// The pruner dropped the task from a machine queue because its
    /// chance of success fell below the threshold (Steps 4–6).
    DropProbabilistic {
        /// The dropped task.
        task: TaskId,
    },
    /// Immediate mode only: the task arrived while every machine queue
    /// was full and there is no batch queue to hold it (Fig. 1a).
    Reject {
        /// The rejected task.
        task: TaskId,
    },
    /// The optional `cancel_running_late` policy cancelled a task whose
    /// deadline passed mid-execution.
    CancelRunning {
        /// The cancelled task.
        task: TaskId,
    },
}

impl Decision {
    /// The task this decision is about.
    pub fn task(&self) -> TaskId {
        match *self {
            Decision::Assign { task, .. }
            | Decision::DeferToBatch { task }
            | Decision::DropReactive { task }
            | Decision::DropProbabilistic { task }
            | Decision::Reject { task }
            | Decision::CancelRunning { task } => task,
        }
    }
}

/// A task the core wants executed: the FCFS head of a machine that just
/// went idle. The core has already marked the machine busy; the caller
/// owes it a matching [`SchedulerCore::complete`] once the execution
/// finishes (however the caller learns that — sampling in a simulation,
/// a worker callback in a live system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Start {
    /// The machine that begins executing (id + type for duration
    /// lookup).
    pub machine: Machine,
    /// The task it executes.
    pub task: Task,
}

/// The clock-free scheduling state machine. See the [module
/// docs](self) for the contract; construct via
/// [`crate::SchedulerBuilder::build_core`].
pub struct SchedulerCore<'a, S: Sink = NullSink> {
    cfg: SimConfig,
    /// The matrix every *estimate* uses: the scheduler's belief about
    /// execution times.
    pet: &'a PetMatrix,
    strategy: MappingStrategy,
    pruner: Box<dyn Pruner>,
    queues: Vec<MachineQueue>,
    /// Batch-mode arrival queue, in arrival order.
    arrival_queue: Vec<Task>,
    now: SimTime,
    stats: SimStats,
    sink: S,
    /// Decisions taken since the last drain.
    decisions: Vec<Decision>,
    /// Spare buffer swapped with `decisions` on drain (zero-alloc
    /// draining).
    decisions_spare: Vec<Decision>,
    /// Starts issued since the last drain, in machine-index order per
    /// phase.
    starts: Vec<Start>,
    /// Spare buffer swapped with `starts` on drain.
    starts_spare: Vec<Start>,
    /// Reused per-event report fed to the pruner (Accounting input).
    report: EventReport,
    /// Reused per-round buffer for the batch mapping loop's candidates.
    candidate_buf: Vec<Task>,
    /// Reused per-round buffer for the heuristic's proposals.
    proposal_buf: Vec<Assignment>,
    /// Reused per-event set of task ids the pruner deferred.
    deferred_buf: HashSet<TaskId>,
    /// Reused per-event buffer for the pruner's proactive drops.
    drop_buf: Vec<(MachineId, TaskId)>,
    /// Reused per-machine id list sliced out of `drop_buf`.
    drop_ids_buf: Vec<TaskId>,
    /// Function-reuse follower ledger: followers parked on in-flight
    /// primaries, resolved by the primary's single terminal outcome
    /// (see [`crate::reuse`]). Inactive (and cost-free) unless the
    /// gateway enables reuse.
    reuse: ReuseLedger,
    /// The overload-ladder rung this core prunes under: `None` when
    /// tenancy is off (the historical float path, untouched),
    /// `Some(r)` when a [`crate::TenancyPolicy`] is installed. The
    /// rung selects the per-SLA-class chance bias
    /// ([`crate::tenant::sla_chance_bias`]) applied before the
    /// pruner's deferral test — BestEffort prunes first, Premium last.
    sla_rung: Option<u8>,
}

impl<'a, S: Sink> SchedulerCore<'a, S> {
    /// Builds the core. Crate-internal: [`crate::SchedulerBuilder`] is
    /// the validated public constructor.
    pub(crate) fn from_parts(
        cfg: SimConfig,
        machines: &[Machine],
        pet: &'a PetMatrix,
        strategy: MappingStrategy,
        pruner: Box<dyn Pruner>,
        sink: S,
    ) -> Self {
        let capacity = cfg.effective_capacity();
        let queues = machines
            .iter()
            .map(|&m| MachineQueue::new(m, capacity, cfg.horizon_bins))
            .collect();
        Self {
            cfg,
            pet,
            strategy,
            pruner,
            queues,
            arrival_queue: Vec::new(),
            now: SimTime::ZERO,
            stats: SimStats::new(0, pet.n_task_types()),
            sink,
            decisions: Vec::new(),
            decisions_spare: Vec::new(),
            starts: Vec::new(),
            starts_spare: Vec::new(),
            report: EventReport::default(),
            candidate_buf: Vec::new(),
            proposal_buf: Vec::new(),
            deferred_buf: HashSet::new(),
            drop_buf: Vec::new(),
            drop_ids_buf: Vec::new(),
            reuse: ReuseLedger::new(),
            sla_rung: None,
        }
    }

    /// Replaces the sink, preserving all scheduling state. Used by the
    /// builder to switch the observability type parameter.
    pub(crate) fn with_sink<T: Sink>(self, sink: T) -> SchedulerCore<'a, T> {
        SchedulerCore {
            cfg: self.cfg,
            pet: self.pet,
            strategy: self.strategy,
            pruner: self.pruner,
            queues: self.queues,
            arrival_queue: self.arrival_queue,
            now: self.now,
            stats: self.stats,
            sink,
            decisions: self.decisions,
            decisions_spare: self.decisions_spare,
            starts: self.starts,
            starts_spare: self.starts_spare,
            report: self.report,
            candidate_buf: self.candidate_buf,
            proposal_buf: self.proposal_buf,
            deferred_buf: self.deferred_buf,
            drop_buf: self.drop_buf,
            drop_ids_buf: self.drop_ids_buf,
            reuse: self.reuse,
            sla_rung: self.sla_rung,
        }
    }

    // ------------------------------------------------------------------
    // The streaming API.
    // ------------------------------------------------------------------

    /// Moves the core's clock forward to `t`. Time never runs backwards;
    /// callers advance to an instant before reporting what happened at
    /// that instant.
    ///
    /// # Panics
    /// If `t` is before the current clock — in release builds too: a
    /// silently rewound clock would corrupt every subsequent deadline
    /// check and trace timestamp, which is far worse than failing
    /// loudly (the check is one predictable branch per event).
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "time ran backwards: advance_to({t:?}) with now = {:?}",
            self.now
        );
        self.now = t;
    }

    /// Ingests one arriving task and runs its mapping event at the
    /// current clock. The task's `arrival` must not lie in the future
    /// (advance the clock first); a task delivered late simply arrives
    /// now.
    ///
    /// # Panics
    /// When the task id is too sparse for the dense outcome tables —
    /// [`SchedulerCore::try_push_arrival`] is the recoverable variant.
    pub fn push_arrival(&mut self, task: Task) {
        self.try_push_arrival(task)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`SchedulerCore::push_arrival`]: a task whose id the
    /// dense outcome tables cannot absorb (see
    /// [`crate::stats::StatsError`]) is rejected *before* touching any
    /// scheduling state, so the caller can drop or re-label it and keep
    /// streaming.
    pub fn try_push_arrival(
        &mut self,
        task: Task,
    ) -> Result<(), crate::stats::StatsError> {
        debug_assert!(
            task.arrival <= self.now,
            "arrival {:?} is in the future; call advance_to first",
            task.arrival
        );
        self.stats.try_record_arrival(&task)?;
        self.begin_report();
        self.sink
            .record(self.now, TraceEvent::Arrived { task: task.id });
        self.mapping_event(Some(task));
        Ok(())
    }

    /// Reports that `machine` finished executing `task` at the current
    /// clock, then runs the completion's mapping event.
    ///
    /// Returns `false` (and does nothing) when the machine is not
    /// currently running that task — the stale-completion case after a
    /// cancellation, which event-driven callers hit when a completion
    /// they scheduled was overtaken.
    pub fn complete(&mut self, machine: MachineId, task: TaskId) -> bool {
        let q = &mut self.queues[machine.0 as usize];
        if q.running().map(|rt| rt.task.id) != Some(task) {
            return false; // stale: the start this completion belonged to
                          // was cancelled
        }
        let rt = q.complete_running();
        let on_time = self.now <= rt.task.deadline;
        let exec_ticks = (self.now - rt.start).ticks();
        self.begin_report();
        self.stats.record_outcome(
            &rt.task,
            if on_time {
                TaskOutcome::CompletedOnTime
            } else {
                TaskOutcome::CompletedLate
            },
        );
        self.stats.record_execution(exec_ticks, on_time);
        self.report.completed.push((rt.task, on_time));
        self.sink.record(
            self.now,
            TraceEvent::Completed {
                task: rt.task.id,
                on_time,
            },
        );
        self.reuse.record_exec(rt.task.id, exec_ticks);
        self.fan_out_completion(rt.task.id, exec_ticks);
        self.mapping_event(None);
        true
    }

    /// Delivers the single result of a completed primary to every
    /// follower parked on it, each judged against its **own** deadline.
    /// Followers consumed no machine time: each credits the primary's
    /// measured execution to the cycles-saved counter instead.
    fn fan_out_completion(&mut self, primary: TaskId, exec_ticks: u64) {
        let Some(followers) = self.reuse.take_followers(primary) else {
            return;
        };
        for f in followers {
            let on_time = self.now <= f.deadline;
            self.stats.record_outcome(
                &f,
                if on_time {
                    TaskOutcome::CompletedOnTime
                } else {
                    TaskOutcome::CompletedLate
                },
            );
            self.reuse.add_saved(exec_ticks);
            self.sink.record(
                self.now,
                TraceEvent::Completed {
                    task: f.id,
                    on_time,
                },
            );
        }
    }

    /// Fate-sharing on primary failure: followers of a primary that
    /// never produces a result inherit its terminal outcome (they were
    /// never queued anywhere, so nothing else can resolve them).
    fn fan_out_failure(&mut self, primary: TaskId, outcome: TaskOutcome) {
        let Some(followers) = self.reuse.take_followers(primary) else {
            return;
        };
        for f in followers {
            self.stats.record_outcome(&f, outcome);
            let ev = match outcome {
                TaskOutcome::DroppedReactive => {
                    Some(TraceEvent::DroppedReactive { task: f.id })
                }
                TaskOutcome::DroppedProactive => {
                    Some(TraceEvent::DroppedProactive { task: f.id })
                }
                TaskOutcome::CancelledRunning => {
                    Some(TraceEvent::Cancelled { task: f.id })
                }
                TaskOutcome::Rejected => {
                    Some(TraceEvent::Rejected { task: f.id })
                }
                _ => None,
            };
            if let Some(ev) = ev {
                self.sink.record(self.now, ev);
            }
        }
    }

    /// Absorbs one follower onto `primary` (both ids shard-internal),
    /// the core half of a gateway reuse admission. Resolution depends
    /// only on state this core rebuilt deterministically:
    ///
    /// * primary already completed → the follower resolves instantly
    ///   against its own deadline and credits the recorded execution
    ///   time as saved cycles;
    /// * primary already failed → the follower cannot share a result
    ///   that never existed, so it falls back to a normal arrival on
    ///   this shard (deterministic: the outcome table is identical at
    ///   this point on every replica);
    /// * primary in flight → the follower parks in the ledger until
    ///   the primary's terminal outcome fans out.
    pub(crate) fn apply_piggyback(
        &mut self,
        primary: TaskId,
        task: Task,
        merged: bool,
    ) {
        debug_assert!(
            task.arrival <= self.now,
            "piggyback arrival {:?} is in the future; advance first",
            task.arrival
        );
        debug_assert!(
            self.reuse.is_active(),
            "piggyback delivered to a core whose reuse ledger is off",
        );
        match self.stats.outcome(primary) {
            Some(TaskOutcome::CompletedOnTime | TaskOutcome::CompletedLate) => {
                self.stats.record_arrival(&task);
                self.reuse.note_hit(merged);
                let on_time = self.now <= task.deadline;
                self.stats.record_outcome(
                    &task,
                    if on_time {
                        TaskOutcome::CompletedOnTime
                    } else {
                        TaskOutcome::CompletedLate
                    },
                );
                let saved = self.reuse.exec_ticks(primary);
                self.reuse.add_saved(saved);
                self.sink
                    .record(self.now, TraceEvent::Arrived { task: task.id });
                self.sink.record(
                    self.now,
                    TraceEvent::Completed {
                        task: task.id,
                        on_time,
                    },
                );
            }
            Some(_) => {
                // The primary failed before this follower arrived:
                // nothing to share — run the follower for real.
                self.push_arrival(task);
            }
            None => {
                self.stats.record_arrival(&task);
                self.reuse.note_hit(merged);
                self.reuse.add_follower(primary, task);
                self.sink
                    .record(self.now, TraceEvent::Arrived { task: task.id });
            }
        }
    }

    /// Enables (or disables) the reuse ledger; set by the gateway
    /// builder when a [`crate::ReusePolicy`] other than `Off` is
    /// configured.
    pub(crate) fn set_reuse_active(&mut self, active: bool) {
        self.reuse.set_active(active);
    }

    /// This core's accumulated reuse counters (all zero when reuse is
    /// off).
    pub(crate) fn reuse_stats(&self) -> ReuseStats {
        *self.reuse.stats()
    }

    /// Activates SLA-aware pruning at rung 0; set by the gateway
    /// builder when a [`crate::TenancyPolicy`] is installed. Without
    /// this the core never touches the chance value the pruner sees.
    pub(crate) fn set_sla_active(&mut self, active: bool) {
        self.sla_rung = if active { Some(0) } else { None };
    }

    /// Moves this core to an overload-ladder rung (live transition or
    /// [`crate::JournalOp::SlaRung`] replay). No-op tightening: the
    /// bias is a pure function of (class, rung), so stepping back down
    /// restores the previous pruning behaviour exactly.
    pub(crate) fn set_sla_rung(&mut self, rung: u8) {
        if self.sla_rung.is_some() {
            self.sla_rung = Some(rung);
        }
    }

    /// Runs a synthetic mapping event at the current clock: nothing
    /// arrived and nothing completed, but pending work should be
    /// reconsidered (deferred tasks retried or reactively dropped).
    pub fn wakeup(&mut self) {
        self.begin_report();
        self.mapping_event(None);
    }

    /// Returns every decision taken since the last drain, oldest first,
    /// and clears the internal buffer (a buffer swap — no allocation).
    pub fn drain_decisions(&mut self) -> &[Decision] {
        std::mem::swap(&mut self.decisions, &mut self.decisions_spare);
        self.decisions.clear();
        &self.decisions_spare
    }

    /// Returns every execution start issued since the last drain, oldest
    /// first, and clears the internal buffer. Each start owes the core a
    /// [`SchedulerCore::complete`] call.
    pub fn drain_starts(&mut self) -> &[Start] {
        std::mem::swap(&mut self.starts, &mut self.starts_spare);
        self.starts.clear();
        &self.starts_spare
    }

    /// Finishes the run: every task still pending (batch queue or
    /// machine queues) is recorded as [`TaskOutcome::Unfinished`], and
    /// the outcome record — including the sink's trace, if it keeps one
    /// — is returned.
    pub fn finish(mut self) -> SimStats {
        let leftovers: Vec<Task> = self
            .queues
            .iter_mut()
            .flat_map(|q| q.drain_all())
            .chain(self.arrival_queue.drain(..))
            .collect();
        for t in leftovers {
            self.stats.record_outcome(&t, TaskOutcome::Unfinished);
            self.fan_out_failure(t.id, TaskOutcome::Unfinished);
        }
        // Safety net: followers whose primary never reached a terminal
        // outcome on this core (canonical order — see the ledger).
        for f in self.reuse.drain_remaining() {
            self.stats.record_outcome(&f, TaskOutcome::Unfinished);
        }
        self.stats.end_time = self.now;
        self.stats.trace = self.sink.into_trace();
        self.stats
    }

    // ------------------------------------------------------------------
    // Introspection for drivers and live callers.
    // ------------------------------------------------------------------

    /// The core's current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The static configuration the core was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The belief PET matrix all estimates use.
    pub fn pet(&self) -> &'a PetMatrix {
        self.pet
    }

    /// Number of machines in the cluster.
    pub fn n_machines(&self) -> usize {
        self.queues.len()
    }

    /// Number of tasks waiting in the batch queue.
    pub fn pending_batch_len(&self) -> usize {
        self.arrival_queue.len()
    }

    /// The soonest deadline among batch-queue tasks, if any — drivers
    /// schedule the wakeup safety net just past it when no other event
    /// will ever fire.
    pub fn earliest_pending_deadline(&self) -> Option<SimTime> {
        self.arrival_queue.iter().map(|t| t.deadline).min()
    }

    /// The accumulated outcome record (read-only while running;
    /// [`SchedulerCore::finish`] returns it by value).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Removes and returns every task still waiting in the batch queue
    /// (arrival order, shard-internal ids). The tasks have *arrived* —
    /// their arrival records stay in the stats — but no mapping
    /// decision has committed them to a machine yet, so stealing them
    /// here is legal: this is how a federation supervisor re-routes a
    /// quarantined shard's backlog to healthy shards (the drained
    /// instances end as [`TaskOutcome::Unfinished`] on this core unless
    /// something resolves them elsewhere).
    pub fn drain_batch_queue(&mut self) -> Vec<Task> {
        std::mem::take(&mut self.arrival_queue)
    }

    /// Closes the book on a task this shard will never run. A drained
    /// (stolen) batch-queue task keeps its arrival record here but is
    /// no longer in any queue, so [`SchedulerCore::finish`] would miss
    /// it and leave the shard with `unreported() > 0`. The supervisor
    /// calls this per stolen task; the re-routed instance on the
    /// receiving shard carries the live outcome (and, being the later
    /// arrival record, shadows this one in federation-level lookups).
    pub(crate) fn record_unfinished(&mut self, task: &Task) {
        self.stats.record_outcome(task, TaskOutcome::Unfinished);
        self.fan_out_failure(task.id, TaskOutcome::Unfinished);
    }

    /// Splits off and returns the *tail* `n` tasks of the batch queue —
    /// the newest arrivals, the ones with no machine-queue commitment
    /// and the least sunk routing context. The federation's steal pass
    /// moves them to an idle shard; like
    /// [`SchedulerCore::drain_batch_queue`] this is legal w.r.t. the
    /// paper's model because batch-queue tasks are uncommitted by
    /// construction. No mapping event fires (the donor just got
    /// shorter, never longer), and the donor's fault/journal
    /// coordinates do not move.
    pub fn donate_batch_tail(&mut self, n: usize) -> Vec<Task> {
        let keep = self.arrival_queue.len().saturating_sub(n);
        self.arrival_queue.split_off(keep)
    }

    /// Adopts batch-queue tasks stolen from another shard, already
    /// relabelled to this shard's internal dense id space. Each task
    /// goes through the ordinary arrival path (a mapping event per
    /// task), exactly as [`crate::JournalOp::Adopt`] replays it.
    pub fn adopt_stolen(&mut self, tasks: Vec<Task>) {
        for task in tasks {
            self.push_arrival(task);
        }
    }

    /// Replay half of a steal on the *donor*: removes the task with
    /// the given shard-internal id from the batch queue (if present)
    /// and closes its book as [`TaskOutcome::Unfinished`], mirroring
    /// what the live steal pass did. Used by
    /// [`crate::ShardJournal::replay`] for [`crate::JournalOp::Steal`].
    pub(crate) fn apply_steal(&mut self, task: TaskId) {
        if let Some(pos) = self.arrival_queue.iter().position(|t| t.id == task)
        {
            let stolen = self.arrival_queue.remove(pos);
            self.record_unfinished(&stolen);
        }
    }

    /// Clones the machine queues (with their chain caches) — the raw
    /// material of a bounded-staleness view table entry.
    pub(crate) fn clone_queues(&self) -> Vec<MachineQueue> {
        self.queues.clone()
    }

    /// Simulated crash: forgets the recoverable in-memory scheduling
    /// state — batch queue, machine queues (running and waiting tasks
    /// vanish with the RAM that held them), outcome record, clock,
    /// pending decision/start buffers. Everything a
    /// [`SchedulerCore::restore`] would overwrite is dropped; a
    /// subsequent restore + journal replay rebuilds the shard exactly
    /// (`FederatedEngine::recover_shard`). Plug-in state is left
    /// untouched only because recovery must overwrite it anyway — an
    /// unrecovered wiped core is *degraded*, not usable.
    pub(crate) fn wipe(&mut self) {
        self.arrival_queue.clear();
        for q in &mut self.queues {
            q.drain_all();
        }
        self.stats = SimStats::new(0, self.pet.n_task_types());
        self.now = SimTime::ZERO;
        self.decisions.clear();
        self.decisions_spare.clear();
        self.starts.clear();
        self.starts_spare.clear();
        self.reuse.clear();
    }

    /// Degraded-mode load shedding: multiplies the pruner's aggression
    /// up (see [`crate::Pruner::tighten_threshold`]). Called by the
    /// supervisor on healthy shards when a quarantined shard's load is
    /// re-routed onto them.
    pub(crate) fn tighten_pruner(&mut self, factor: f64) {
        self.pruner.tighten_threshold(factor);
    }

    /// A read-only view of the current system state — what mappers and
    /// pruners see.
    pub fn view(&self) -> SystemView<'_> {
        SystemView::new(self.now, &self.queues, self.pet)
    }

    // ------------------------------------------------------------------
    // Checkpointing.
    // ------------------------------------------------------------------

    /// Captures the core's complete durable state into a sealed,
    /// versioned [`Snapshot`]: clock, batch queue, every machine
    /// queue, the outcome record, and the plug-in state of the
    /// strategy, pruner and sink. Static configuration (the
    /// [`SimConfig`], cluster and PET matrix) is not serialized — a
    /// restore target must be built identically. Scratch arenas,
    /// drained-decision buffers and the Eq. 1 chain caches are
    /// rebuilt, not serialized.
    pub fn snapshot(&self) -> Snapshot {
        let queues: Vec<Value> =
            self.queues.iter().map(|q| q.state_value()).collect();
        Snapshot::seal(
            "scheduler-core",
            Value::Object(vec![
                ("now".to_owned(), self.now.to_value()),
                ("arrival_queue".to_owned(), self.arrival_queue.to_value()),
                ("queues".to_owned(), Value::Array(queues)),
                ("stats".to_owned(), self.stats.to_value()),
                ("strategy".to_owned(), self.strategy.snapshot_state()),
                ("pruner".to_owned(), self.pruner.snapshot_state()),
                ("sink".to_owned(), self.sink.snapshot_state()),
                ("reuse".to_owned(), self.reuse.state_value()),
                ("sla_rung".to_owned(), self.sla_rung.to_value()),
            ]),
        )
    }

    /// Restores state captured by [`SchedulerCore::snapshot`] into
    /// this core, after verifying the envelope (version + state hash).
    /// The core must have been built with the same configuration,
    /// cluster, PET matrix and plug-in types as the one that took the
    /// snapshot. Pending decision/start buffers are cleared — a
    /// restored core starts from a drained state, exactly as the
    /// snapshotting core was at its checkpoint.
    ///
    /// # Errors
    /// Any [`SnapshotError`]; on error the core's state is
    /// unspecified and the core should be discarded.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let payload = snap.verify()?.clone();
        let now = SimTime::from_value(payload.get_field("now")?)?;
        let arrival_queue =
            Vec::<Task>::from_value(payload.get_field("arrival_queue")?)?;
        let stats = SimStats::from_value(payload.get_field("stats")?)?;
        let Value::Array(queue_states) = payload.get_field("queues")? else {
            return Err(SnapshotError::ShapeMismatch {
                what: "`queues` payload is not an array",
            });
        };
        if queue_states.len() != self.queues.len() {
            return Err(SnapshotError::ShapeMismatch {
                what: "snapshot machine count differs from this cluster",
            });
        }
        for (q, state) in self.queues.iter_mut().zip(queue_states) {
            q.restore_value(state)?;
        }
        self.strategy
            .restore_state(payload.get_field("strategy")?)?;
        self.pruner.restore_state(payload.get_field("pruner")?)?;
        self.sink.restore_state(payload.get_field("sink")?)?;
        match payload.get_opt("reuse") {
            Some(state) => self.reuse.restore_value(state)?,
            // Pre-reuse snapshot: nothing was parked.
            None => self.reuse.clear(),
        }
        // Pre-tenancy snapshot: SLA-aware pruning was off.
        self.sla_rung = match payload.get_opt("sla_rung") {
            Some(state) => Option::<u8>::from_value(state)?,
            None => None,
        };
        self.now = now;
        self.arrival_queue = arrival_queue;
        self.stats = stats;
        self.decisions.clear();
        self.decisions_spare.clear();
        self.starts.clear();
        self.starts_spare.clear();
        self.begin_report();
        Ok(())
    }

    // ------------------------------------------------------------------
    // The mapping event (Fig. 5).
    // ------------------------------------------------------------------

    /// Resets the reused event report for a new mapping event.
    fn begin_report(&mut self) {
        self.report.now = self.now;
        self.report.completed.clear();
        self.report.dropped_reactive.clear();
        self.report.cancelled.clear();
    }

    /// One mapping event: the Fig. 5 procedure. `arriving` is the task
    /// whose arrival triggered the event, if any.
    fn mapping_event(&mut self, arriving: Option<Task>) {
        self.stats.mapping_events += 1;
        if self.sink.snapshot_due(self.stats.mapping_events) {
            let snapshot = QueueSnapshot {
                at: self.now,
                batch_queue_len: self.arrival_queue.len(),
                waiting_total: self
                    .queues
                    .iter()
                    .map(|q| q.waiting_len())
                    .sum(),
                busy_machines: self
                    .queues
                    .iter()
                    .filter(|q| q.is_busy())
                    .count(),
            };
            self.sink.record_snapshot(snapshot);
        }

        // The arriving task joins the batch queue before any decision
        // (in immediate mode it is held aside for direct placement).
        let immediate_arrival = match self.cfg.mode {
            AllocationMode::Batch => {
                if let Some(t) = arriving {
                    self.arrival_queue.push(t);
                }
                None
            }
            AllocationMode::Immediate => arriving,
        };

        // Optional policy: cancel running tasks that are already late.
        if self.cfg.cancel_running_late {
            for i in 0..self.queues.len() {
                let late = self.queues[i]
                    .running()
                    .is_some_and(|rt| rt.task.is_past_deadline(self.now));
                if late {
                    let rt = self.queues[i].cancel_running();
                    self.stats.record_outcome(
                        &rt.task,
                        TaskOutcome::CancelledRunning,
                    );
                    self.stats
                        .record_execution((self.now - rt.start).ticks(), false);
                    self.report.cancelled.push(rt.task);
                    self.decisions
                        .push(Decision::CancelRunning { task: rt.task.id });
                    self.sink.record(
                        self.now,
                        TraceEvent::Cancelled { task: rt.task.id },
                    );
                    self.fan_out_failure(
                        rt.task.id,
                        TaskOutcome::CancelledRunning,
                    );
                }
            }
        }

        // Step 1: reactive drops of deadline-missed pending tasks.
        let now = self.now;
        let report = &mut self.report;
        self.arrival_queue.retain(|t| {
            if t.is_past_deadline(now) {
                report.dropped_reactive.push(*t);
                false
            } else {
                true
            }
        });
        for q in &mut self.queues {
            report.dropped_reactive.extend(q.drop_missed_deadlines(now));
        }
        for i in 0..self.report.dropped_reactive.len() {
            let t = self.report.dropped_reactive[i];
            self.stats.record_outcome(&t, TaskOutcome::DroppedReactive);
            self.decisions.push(Decision::DropReactive { task: t.id });
            self.sink
                .record(self.now, TraceEvent::DroppedReactive { task: t.id });
            self.fan_out_failure(t.id, TaskOutcome::DroppedReactive);
        }

        // Freed machines pick up their queue heads immediately (physical
        // FCFS behaviour; also frees waiting slots for this event's
        // mapping phase).
        self.start_ready_machines();

        // Step 2: feed Accounting / Toggle / Fairness.
        self.pruner.begin_event(&self.report);

        // Steps 3–6: proactive dropping from machine queues.
        let mut drops = std::mem::take(&mut self.drop_buf);
        drops.clear();
        {
            let view = SystemView::new(self.now, &self.queues, self.pet);
            self.pruner.select_drops_into(&view, &mut drops);
        }
        if !drops.is_empty() {
            // Stable-sort by machine so each queue gets one batched
            // removal, preserving the pruner's per-machine drop order.
            drops.sort_by_key(|&(machine, _)| machine);
            let mut ids = std::mem::take(&mut self.drop_ids_buf);
            let mut i = 0;
            while i < drops.len() {
                let machine = drops[i].0;
                ids.clear();
                while i < drops.len() && drops[i].0 == machine {
                    ids.push(drops[i].1);
                    i += 1;
                }
                let removed =
                    self.queues[machine.0 as usize].remove_waiting(&ids);
                for t in removed {
                    self.stats
                        .record_outcome(&t, TaskOutcome::DroppedProactive);
                    self.decisions
                        .push(Decision::DropProbabilistic { task: t.id });
                    self.sink.record(
                        self.now,
                        TraceEvent::DroppedProactive { task: t.id },
                    );
                    self.fan_out_failure(t.id, TaskOutcome::DroppedProactive);
                }
            }
            self.drop_ids_buf = ids;
        }
        self.drop_buf = drops;

        // Steps 7–11: the mapping loop.
        match self.cfg.mode {
            AllocationMode::Immediate => {
                if let Some(task) = immediate_arrival {
                    self.place_immediately(task);
                }
            }
            AllocationMode::Batch => self.batch_mapping_loop(),
        }

        // Machines that were idle with an empty queue may have just
        // received work.
        self.start_ready_machines();
    }

    /// Immediate-mode placement (Fig. 1a): the mapper picks a machine;
    /// if that queue is full the first machine with a free slot takes
    /// the task instead, and if every queue is full the task is rejected
    /// — there is no arrival queue to hold it.
    fn place_immediately(&mut self, task: Task) {
        if self.queues.iter().all(|q| q.free_slots() == 0) {
            self.stats.record_outcome(&task, TaskOutcome::Rejected);
            self.decisions.push(Decision::Reject { task: task.id });
            self.sink
                .record(self.now, TraceEvent::Rejected { task: task.id });
            self.fan_out_failure(task.id, TaskOutcome::Rejected);
            return;
        }
        let chosen = {
            let view = SystemView::new(self.now, &self.queues, self.pet);
            match &mut self.strategy {
                MappingStrategy::Immediate(m) => m.place(&view, &task),
                MappingStrategy::Batch(_) => {
                    panic!("immediate mode requires an immediate-mode mapper")
                }
            }
        };
        let machine = if self.queues[chosen.0 as usize].free_slots() > 0 {
            chosen
        } else {
            let fallback = self
                .queues
                .iter()
                .position(|q| q.free_slots() > 0)
                .expect("checked above that a free slot exists");
            MachineId(fallback as u16)
        };
        self.queues[machine.0 as usize].admit(task);
        self.decisions.push(Decision::Assign {
            task: task.id,
            machine,
        });
        self.sink.record(
            self.now,
            TraceEvent::Mapped {
                task: task.id,
                machine,
            },
        );
    }

    /// The Step 7 while-loop: heuristic proposes, pruner vetoes,
    /// survivors dispatch, repeat until no progress is possible.
    fn batch_mapping_loop(&mut self) {
        let mapper = match &mut self.strategy {
            MappingStrategy::Batch(m) => m,
            MappingStrategy::Immediate(_) => {
                panic!("batch mode requires a batch-mode mapper")
            }
        };
        let mut deferred = std::mem::take(&mut self.deferred_buf);
        deferred.clear();
        let mut candidates = std::mem::take(&mut self.candidate_buf);
        let mut proposals = std::mem::take(&mut self.proposal_buf);
        loop {
            if self.queues.iter().all(|q| q.free_slots() == 0) {
                break;
            }
            candidates.clear();
            candidates.extend(
                self.arrival_queue
                    .iter()
                    .filter(|t| !deferred.contains(&t.id))
                    .copied(),
            );
            if candidates.is_empty() {
                break;
            }
            proposals.clear();
            {
                let view = SystemView::new(self.now, &self.queues, self.pet);
                mapper.select_into(&view, &candidates, &mut proposals);
            }
            if proposals.is_empty() {
                break;
            }
            let mut progressed = false;
            for pi in 0..proposals.len() {
                let assignment = proposals[pi];
                if deferred.contains(&assignment.task) {
                    continue;
                }
                let machine_idx = assignment.machine.0 as usize;
                if self.queues[machine_idx].free_slots() == 0 {
                    continue; // stale proposal for a queue filled earlier
                }
                let Some(pos) = self
                    .arrival_queue
                    .iter()
                    .position(|t| t.id == assignment.task)
                else {
                    continue;
                };
                let task = self.arrival_queue[pos];
                let chance = {
                    let view =
                        SystemView::new(self.now, &self.queues, self.pet);
                    view.chance_if_appended(assignment.machine, &task)
                };
                // SLA-class pruning offset: shift the chance the pruner
                // judges by the (class, ladder-rung) bias so BestEffort
                // prunes first and Premium last. The bias is exactly
                // 0.0 for Standard below rung 2, and the shift is
                // skipped entirely then, keeping the tenancy-off (and
                // calm all-Standard) float paths bit-identical.
                let chance = match self.sla_rung {
                    Some(rung) => {
                        let bias =
                            crate::tenant::sla_chance_bias(task.value, rung);
                        if bias != 0.0 {
                            (chance + bias).clamp(0.0, 1.0)
                        } else {
                            chance
                        }
                    }
                    None => chance,
                };
                if self.pruner.should_defer(&task, chance) {
                    deferred.insert(task.id);
                    self.stats.deferrals += 1;
                    self.decisions
                        .push(Decision::DeferToBatch { task: task.id });
                    self.sink.record(
                        self.now,
                        TraceEvent::Deferred { task: task.id },
                    );
                    progressed = true; // candidate set shrank
                } else {
                    self.arrival_queue.remove(pos);
                    self.queues[machine_idx].admit(task);
                    self.decisions.push(Decision::Assign {
                        task: task.id,
                        machine: assignment.machine,
                    });
                    self.sink.record(
                        self.now,
                        TraceEvent::Mapped {
                            task: task.id,
                            machine: assignment.machine,
                        },
                    );
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        self.deferred_buf = deferred;
        self.candidate_buf = candidates;
        self.proposal_buf = proposals;
    }

    /// Starts the queue head on every idle machine (non-preemptive FCFS)
    /// and records a [`Start`] for the caller, in machine-index order.
    fn start_ready_machines(&mut self) {
        for i in 0..self.queues.len() {
            let q = &mut self.queues[i];
            if q.is_busy() {
                continue;
            }
            if let Some(task) = q.pop_head_for_start() {
                q.set_running(task, self.now);
                let machine = q.machine();
                self.starts.push(Start { machine, task });
                self.sink.record(
                    self.now,
                    TraceEvent::Started {
                        task: task.id,
                        machine: machine.id,
                    },
                );
            }
        }
    }
}

impl<S: Sink> std::fmt::Debug for SchedulerCore<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerCore")
            .field("now", &self.now)
            .field("mode", &self.cfg.mode)
            .field("heuristic", &self.strategy.name())
            .field("pruner", &self.pruner.name())
            .field("machines", &self.queues.len())
            .field("pending_batch", &self.arrival_queue.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::SchedulerBuilder;
    use crate::traits::{BatchMapper, NoPruning};
    use taskprune_model::{BinSpec, Cluster, TaskTypeId};
    use taskprune_prob::Pmf;

    fn det_pet() -> PetMatrix {
        PetMatrix::new(BinSpec::new(100), 1, 1, vec![Pmf::point_mass(2)])
    }

    struct ToZero;
    impl BatchMapper for ToZero {
        fn name(&self) -> &str {
            "to-zero"
        }
        fn select(
            &mut self,
            view: &SystemView<'_>,
            candidates: &[Task],
        ) -> Vec<Assignment> {
            candidates
                .iter()
                .take(view.free_slots(MachineId(0)))
                .map(|t| Assignment {
                    task: t.id,
                    machine: MachineId(0),
                })
                .collect()
        }
    }

    fn core<'a>(
        pet: &'a PetMatrix,
        cluster: &Cluster,
    ) -> SchedulerCore<'a, NullSink> {
        SchedulerBuilder::new(cluster, pet)
            .config(SimConfig::batch(1))
            .strategy(MappingStrategy::Batch(Box::new(ToZero)))
            .pruner(NoPruning)
            .build_core()
            .expect("valid configuration")
    }

    #[test]
    fn push_arrival_assigns_and_starts() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let mut c = core(&pet, &cluster);
        let t = Task::new(0, TaskTypeId(0), SimTime(0), SimTime(100_000));
        c.push_arrival(t);
        let decisions = c.drain_decisions().to_vec();
        assert_eq!(
            decisions,
            vec![Decision::Assign {
                task: TaskId(0),
                machine: MachineId(0)
            }]
        );
        let starts = c.drain_starts();
        assert_eq!(starts.len(), 1);
        assert_eq!(starts[0].task.id, TaskId(0));
        // Buffers drained: nothing left.
        assert!(c.drain_decisions().is_empty());
        assert!(c.drain_starts().is_empty());
    }

    #[test]
    fn complete_reports_outcome_and_is_stale_safe() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let mut c = core(&pet, &cluster);
        let t = Task::new(0, TaskTypeId(0), SimTime(0), SimTime(1_000));
        c.push_arrival(t);
        let start = c.drain_starts()[0];
        // A completion for a task the machine is not running is stale.
        assert!(!c.complete(start.machine.id, TaskId(77)));
        c.advance_to(SimTime(250));
        assert!(c.complete(start.machine.id, TaskId(0)));
        // Completing again is stale (machine idle).
        assert!(!c.complete(start.machine.id, TaskId(0)));
        let stats = c.finish();
        assert_eq!(
            stats.outcome(TaskId(0)),
            Some(TaskOutcome::CompletedOnTime)
        );
        assert_eq!(stats.unreported(), 0);
    }

    #[test]
    fn late_arrival_is_dropped_reactively() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let mut c = core(&pet, &cluster);
        c.advance_to(SimTime(5_000));
        // Deadline already passed when the task finally arrives.
        let t = Task::new(0, TaskTypeId(0), SimTime(4_000), SimTime(4_500));
        c.push_arrival(t);
        assert_eq!(
            c.drain_decisions(),
            &[Decision::DropReactive { task: TaskId(0) }]
        );
        let stats = c.finish();
        assert_eq!(
            stats.outcome(TaskId(0)),
            Some(TaskOutcome::DroppedReactive)
        );
    }

    #[test]
    fn finish_marks_pending_work_unfinished() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let mut c = core(&pet, &cluster);
        for i in 0..3 {
            let t = Task::new(i, TaskTypeId(0), SimTime(0), SimTime(100_000));
            c.push_arrival(t);
        }
        assert_eq!(c.pending_batch_len(), 0); // capacity 4: all queued
        let stats = c.finish();
        // One running + two waiting, none completed.
        assert_eq!(stats.count(TaskOutcome::Unfinished), 3);
    }

    #[test]
    fn decision_task_accessor_covers_all_variants() {
        let id = TaskId(7);
        let all = [
            Decision::Assign {
                task: id,
                machine: MachineId(0),
            },
            Decision::DeferToBatch { task: id },
            Decision::DropReactive { task: id },
            Decision::DropProbabilistic { task: id },
            Decision::Reject { task: id },
            Decision::CancelRunning { task: id },
        ];
        assert!(all.iter().all(|d| d.task() == id));
    }

    #[test]
    fn wakeup_retries_pending_batch_tasks() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let mut c = core(&pet, &cluster);
        // Fill waiting slots (4) + 1 running + 2 stuck in batch queue.
        for i in 0..7 {
            let t = Task::new(i, TaskTypeId(0), SimTime(0), SimTime(400));
            c.push_arrival(t);
        }
        assert_eq!(c.pending_batch_len(), 2);
        assert_eq!(c.earliest_pending_deadline(), Some(SimTime(400)));
        c.drain_decisions();
        c.advance_to(SimTime(500));
        c.wakeup();
        // Both batch-queue stragglers expired at the wakeup.
        let reactive = c
            .drain_decisions()
            .iter()
            .filter(|d| matches!(d, Decision::DropReactive { .. }))
            .count();
        assert!(reactive >= 2, "stragglers dropped, got {reactive}");
    }
}
