//! Deterministic fault injection for the federation drivers.
//!
//! A [`FaultPlan`] is a *schedule* of typed faults pinned to
//! driver-independent coordinates: "the 3rd completion delivered to
//! shard 1 is lost", "shard 0 crashes after ingesting its 40th routed
//! arrival", "shard 2's next checkpoint attempt fails transiently".
//! Coordinates count **per-shard operations**, which both the serial
//! [`crate::FederatedEngine`] and the parallel
//! [`crate::ParallelFederatedEngine`] replay in the same per-shard
//! order (the bit-identity contract pinned by
//! `tests/parallel_equivalence.rs`) — so one plan injects the same
//! faults into either driver.
//!
//! Plans are built explicitly ([`FaultPlan::new`]) or generated from a
//! seed ([`FaultPlan::generate`]) on a dedicated
//! [`Xoshiro256PlusPlus`] stream that is **never** the simulation's
//! ground-truth RNG: arming a plan does not perturb a single sampled
//! duration, and every fault schedule is replayable from
//! `(seed, spec)` alone.
//!
//! What each fault *means* (and why recovery can win) is documented on
//! [`FaultKind`]; the [`crate::Supervisor`] is the component that
//! detects and heals them.

use serde::{Deserialize, Error, Serialize, Value};
use taskprune_prob::rng::Xoshiro256PlusPlus;

/// The fault taxonomy: what breaks, at one scheduled coordinate.
///
/// | kind | models | healed by |
/// |------|--------|-----------|
/// | [`FaultKind::ShardCrash`] | a shard process dying: its in-memory core state is wiped | checkpoint restore + journal replay |
/// | [`FaultKind::LostCompletion`] | a completion notification dropped in transit | redelivery from the coordinator's journal record |
/// | [`FaultKind::DuplicateCompletion`] | a completion notification delivered twice | the staleness dedupe rejects the second copy |
/// | [`FaultKind::DelayedCompletion`] | a completion notification arriving late | redelivery (the sim-time delay is recorded, never simulated — see the backoff note on [`crate::RecoveryPolicy`]) |
/// | [`FaultKind::CheckpointFailure`] | a transient storage error while checkpointing | retry; skipping is safe (the journal keeps growing) |
/// | [`FaultKind::RecoveryFailure`] | a transient failure of the recovery path itself | retry of `recover_shard` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Wipe the shard's in-memory scheduler state right after it
    /// ingests its `nth` routed arrival.
    ShardCrash,
    /// The `nth` completion delivery to the shard never arrives.
    LostCompletion,
    /// The `nth` completion delivery to the shard arrives twice.
    DuplicateCompletion,
    /// The `nth` completion delivery to the shard is late by `delay`
    /// ticks.
    DelayedCompletion,
    /// The shard's `nth` checkpoint attempt fails transiently.
    CheckpointFailure,
    /// The shard's `nth` recovery attempt fails transiently.
    RecoveryFailure,
}

/// Which per-shard operation counter a fault's coordinate indexes.
/// Two faults on the same `(shard, site, nth)` coordinate would race;
/// [`FaultPlan::new`] keeps only the first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum FaultSite {
    /// Routed arrivals ingested by the shard.
    Arrival,
    /// Completion events delivered to the shard.
    Completion,
    /// Checkpoint attempts on the shard.
    Checkpoint,
    /// Recovery attempts on the shard.
    Recovery,
}

impl FaultKind {
    pub(crate) fn site(self) -> FaultSite {
        match self {
            FaultKind::ShardCrash => FaultSite::Arrival,
            FaultKind::LostCompletion
            | FaultKind::DuplicateCompletion
            | FaultKind::DelayedCompletion => FaultSite::Completion,
            FaultKind::CheckpointFailure => FaultSite::Checkpoint,
            FaultKind::RecoveryFailure => FaultSite::Recovery,
        }
    }
}

/// One scheduled fault: a [`FaultKind`] pinned to a per-shard
/// operation coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The shard the fault strikes.
    pub shard: usize,
    /// What breaks.
    pub kind: FaultKind,
    /// 1-based ordinal of the targeted operation on `shard`: the nth
    /// routed arrival (crashes), nth completion delivery (delivery
    /// faults), or nth checkpoint/recovery attempt (transient
    /// failures).
    pub nth: u64,
    /// Extra latency in ticks for [`FaultKind::DelayedCompletion`]
    /// (bookkeeping only; recorded in the recovery log). Zero for
    /// every other kind.
    pub delay: u64,
}

/// Shape parameters for [`FaultPlan::generate`]: how many faults of
/// each kind to scatter across how many shards and operation ordinals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Number of shards faults may target.
    pub shards: usize,
    /// Operation ordinals are drawn from `1..=span` — roughly the
    /// per-shard operation count of the run under test.
    pub span: u64,
    /// Number of [`FaultKind::ShardCrash`] events.
    pub crashes: usize,
    /// Number of [`FaultKind::LostCompletion`] events.
    pub lost_completions: usize,
    /// Number of [`FaultKind::DuplicateCompletion`] events.
    pub duplicate_completions: usize,
    /// Number of [`FaultKind::DelayedCompletion`] events.
    pub delayed_completions: usize,
    /// Number of [`FaultKind::CheckpointFailure`] events.
    pub checkpoint_failures: usize,
    /// Number of [`FaultKind::RecoveryFailure`] events.
    pub recovery_failures: usize,
}

impl FaultSpec {
    /// A spec with no faults — set the counts you want.
    pub fn quiet(shards: usize, span: u64) -> Self {
        Self {
            shards,
            span: span.max(1),
            crashes: 0,
            lost_completions: 0,
            duplicate_completions: 0,
            delayed_completions: 0,
            checkpoint_failures: 0,
            recovery_failures: 0,
        }
    }

    /// A bit of everything: one crash plus two of each delivery fault
    /// and one transient failure of each infrastructure op — the
    /// default "storm" the fault-matrix CI job and the benchmark use.
    pub fn storm(shards: usize, span: u64) -> Self {
        Self {
            crashes: 1,
            lost_completions: 2,
            duplicate_completions: 2,
            delayed_completions: 2,
            checkpoint_failures: 1,
            recovery_failures: 1,
            ..Self::quiet(shards, span)
        }
    }
}

/// A deterministic, replayable schedule of [`FaultEvent`]s.
///
/// The plan is normalized at construction: events are sorted by
/// `(shard, site, nth)` and coordinates are unique (first one wins),
/// so a plan's identity — and therefore the entire fault schedule — is
/// exactly its event list, independent of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Normalizes an explicit event list into a plan.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.shard, e.kind.site(), e.nth));
        events.dedup_by_key(|e| (e.shard, e.kind.site(), e.nth));
        Self { events }
    }

    /// Generates a plan from `seed` on a dedicated
    /// [`Xoshiro256PlusPlus`] stream (never the simulation's truth
    /// RNG). The same `(seed, spec)` always yields the same plan;
    /// colliding coordinates are dropped by normalization, so the
    /// resulting [`FaultPlan::len`] may be slightly below the spec's
    /// totals.
    pub fn generate(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let shards = spec.shards.max(1) as u64;
        let span = spec.span.max(1);
        let mut events = Vec::new();
        let mut scatter = |kind: FaultKind, count: usize| {
            for _ in 0..count {
                let shard = (rng.next() % shards) as usize;
                let nth = 1 + rng.next() % span;
                let delay = match kind {
                    FaultKind::DelayedCompletion => 1 + rng.next() % 256,
                    _ => 0,
                };
                events.push(FaultEvent {
                    shard,
                    kind,
                    nth,
                    delay,
                });
            }
        };
        scatter(FaultKind::ShardCrash, spec.crashes);
        scatter(FaultKind::LostCompletion, spec.lost_completions);
        scatter(FaultKind::DuplicateCompletion, spec.duplicate_completions);
        scatter(FaultKind::DelayedCompletion, spec.delayed_completions);
        scatter(FaultKind::CheckpointFailure, spec.checkpoint_failures);
        scatter(FaultKind::RecoveryFailure, spec.recovery_failures);
        Self::new(events)
    }

    /// The normalized schedule.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sub-plan targeting one shard (the parallel driver hands
    /// each lane its own slice).
    pub(crate) fn for_shard(&self, shard: usize) -> Vec<FaultEvent> {
        self.events
            .iter()
            .filter(|e| e.shard == shard)
            .copied()
            .collect()
    }
}

/// Runtime fault-plan cursor: counts each shard's operations as a
/// driver replays them and answers "does a fault strike *this* one?".
/// The counters are part of the coordinator's restartable state (see
/// `FederatedEngine::snapshot_coordinator`), so a federation restored
/// from disk resumes the *remaining* fault schedule exactly.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    arrivals_seen: Vec<u64>,
    completions_seen: Vec<u64>,
    checkpoints_seen: Vec<u64>,
    recoveries_seen: Vec<u64>,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan, n_shards: usize) -> Self {
        Self {
            plan,
            arrivals_seen: vec![0; n_shards],
            completions_seen: vec![0; n_shards],
            checkpoints_seen: vec![0; n_shards],
            recoveries_seen: vec![0; n_shards],
        }
    }

    fn lookup(
        &self,
        shard: usize,
        site: FaultSite,
        nth: u64,
    ) -> Option<FaultEvent> {
        // Plans are tiny (a handful of events); a linear scan beats
        // any index.
        self.plan
            .events
            .iter()
            .find(|e| e.shard == shard && e.kind.site() == site && e.nth == nth)
            .copied()
    }

    /// Counts one completion delivery to `shard`; returns the fault
    /// striking it, if any.
    pub(crate) fn on_completion_delivery(
        &mut self,
        shard: usize,
    ) -> Option<FaultEvent> {
        self.completions_seen[shard] += 1;
        self.lookup(shard, FaultSite::Completion, self.completions_seen[shard])
    }

    /// Counts one routed arrival ingested by `shard`; returns whether
    /// the shard crashes right after it.
    pub(crate) fn on_arrival_delivered(&mut self, shard: usize) -> bool {
        self.arrivals_seen[shard] += 1;
        self.lookup(shard, FaultSite::Arrival, self.arrivals_seen[shard])
            .is_some()
    }

    /// Counts one checkpoint attempt on `shard`; returns whether it
    /// fails transiently.
    pub(crate) fn on_checkpoint_attempt(&mut self, shard: usize) -> bool {
        self.checkpoints_seen[shard] += 1;
        self.lookup(shard, FaultSite::Checkpoint, self.checkpoints_seen[shard])
            .is_some()
    }

    /// Counts one recovery attempt on `shard`; returns whether it
    /// fails transiently.
    pub(crate) fn on_recovery_attempt(&mut self, shard: usize) -> bool {
        self.recoveries_seen[shard] += 1;
        self.lookup(shard, FaultSite::Recovery, self.recoveries_seen[shard])
            .is_some()
    }

    pub(crate) fn to_value(&self) -> Value {
        Value::Object(vec![
            ("plan".to_owned(), self.plan.to_value()),
            ("arrivals_seen".to_owned(), self.arrivals_seen.to_value()),
            (
                "completions_seen".to_owned(),
                self.completions_seen.to_value(),
            ),
            (
                "checkpoints_seen".to_owned(),
                self.checkpoints_seen.to_value(),
            ),
            (
                "recoveries_seen".to_owned(),
                self.recoveries_seen.to_value(),
            ),
        ])
    }

    pub(crate) fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Self {
            plan: FaultPlan::from_value(v.get_field("plan")?)?,
            arrivals_seen: Vec::<u64>::from_value(
                v.get_field("arrivals_seen")?,
            )?,
            completions_seen: Vec::<u64>::from_value(
                v.get_field("completions_seen")?,
            )?,
            checkpoints_seen: Vec::<u64>::from_value(
                v.get_field("checkpoints_seen")?,
            )?,
            recoveries_seen: Vec::<u64>::from_value(
                v.get_field("recoveries_seen")?,
            )?,
        })
    }
}

/// A deterministic single-tenant arrival storm — the admission-layer
/// counterpart of [`FaultPlan`].
///
/// Where a fault plan breaks *infrastructure* at scheduled
/// coordinates, a `TenantBurst` floods the gateway with one tenant's
/// submissions: `count` tasks whose external ids all fall in the
/// burst tenant's lane (`id % lanes == tenant`) and are guaranteed
/// disjoint from ordinary stream ids (which stay far below the burst
/// id base). Arrival instants are `start + k·every` plus a
/// per-task jitter drawn from a dedicated [`Xoshiro256PlusPlus`]
/// stream (never the simulation's truth RNG) and strictly less than
/// `every`, so the generated sequence is non-decreasing and the whole
/// storm is replayable from the struct's fields alone.
///
/// [`TenantBurst::splice`] merges the storm into a base stream by
/// arrival time (base tasks first on ties), producing the exact
/// interleaving both federated drivers would see from a live
/// misbehaving tenant. `tests/tenant_isolation.rs` drives a
/// zero-quota lane with one of these and pins that every *other*
/// lane's serialized per-tenant stats are bit-identical to the
/// burst-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantBurst {
    /// The lane the storm submits to (`0..lanes`).
    pub tenant: u64,
    /// The federation's [`crate::TenancyPolicy`] lane count (external
    /// id modulus).
    pub lanes: u64,
    /// Arrival instant of the first burst task, in ticks.
    pub start: u64,
    /// Number of burst tasks.
    pub count: u64,
    /// Nominal inter-arrival gap in ticks; per-task jitter stays
    /// strictly below it (a gap of 0 fires the whole burst at
    /// `start`).
    pub every: u64,
    /// Task type of every burst task.
    pub type_id: u16,
    /// Deadline slack granted to each burst task, in ticks past its
    /// arrival.
    pub deadline_slack: u64,
    /// Seed of the dedicated jitter stream.
    pub seed: u64,
}

impl TenantBurst {
    /// External ids start at `BASE · lanes + tenant` — far above any
    /// realistic base-stream id, so splicing can never collide.
    const ID_BASE: u64 = 1 << 40;

    /// The storm's tasks in arrival order (non-decreasing by
    /// construction). Every id satisfies `id % lanes == tenant`.
    pub fn generate(&self) -> Vec<taskprune_model::Task> {
        use taskprune_model::{SimTime, Task, TaskTypeId};
        let lanes = self.lanes.max(1);
        let tenant = self.tenant % lanes;
        let mut rng = Xoshiro256PlusPlus::new(self.seed);
        (0..self.count)
            .map(|k| {
                let jitter = match self.every {
                    0 => 0,
                    e => rng.next() % e,
                };
                let arrival = self.start + k * self.every + jitter;
                Task::new(
                    (Self::ID_BASE + k) * lanes + tenant,
                    TaskTypeId(self.type_id),
                    SimTime(arrival),
                    SimTime(arrival + self.deadline_slack),
                )
            })
            .collect()
    }

    /// Stable merge of the storm into `stream` by arrival time, base
    /// tasks first on ties — the interleaving a live gateway would
    /// ingest. `stream` must itself be non-decreasing by arrival (the
    /// drivers' documented stream contract).
    pub fn splice(
        &self,
        stream: &[taskprune_model::Task],
    ) -> Vec<taskprune_model::Task> {
        let burst = self.generate();
        let mut merged = Vec::with_capacity(stream.len() + burst.len());
        let (mut i, mut j) = (0, 0);
        while i < stream.len() && j < burst.len() {
            if stream[i].arrival <= burst[j].arrival {
                merged.push(stream[i]);
                i += 1;
            } else {
                merged.push(burst[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&stream[i..]);
        merged.extend_from_slice(&burst[j..]);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_normalized() {
        let spec = FaultSpec::storm(3, 100);
        let a = FaultPlan::generate(7, &spec);
        let b = FaultPlan::generate(7, &spec);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Normalized: sorted, unique coordinates.
        for w in a.events().windows(2) {
            let ka = (w[0].shard, w[0].kind.site(), w[0].nth);
            let kb = (w[1].shard, w[1].kind.site(), w[1].nth);
            assert!(ka < kb, "unsorted or colliding coordinates: {w:?}");
        }
        // A different seed reshuffles the schedule.
        assert_ne!(a, FaultPlan::generate(8, &spec));
    }

    #[test]
    fn colliding_coordinates_keep_the_first_event() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                shard: 0,
                kind: FaultKind::LostCompletion,
                nth: 3,
                delay: 0,
            },
            FaultEvent {
                shard: 0,
                kind: FaultKind::DuplicateCompletion,
                nth: 3,
                delay: 0,
            },
        ]);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.events()[0].kind, FaultKind::LostCompletion);
    }

    #[test]
    fn injector_fires_each_fault_exactly_once() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                shard: 1,
                kind: FaultKind::ShardCrash,
                nth: 2,
                delay: 0,
            },
            FaultEvent {
                shard: 0,
                kind: FaultKind::LostCompletion,
                nth: 1,
                delay: 0,
            },
        ]);
        let mut inj = FaultInjector::new(plan, 2);
        assert!(inj.on_completion_delivery(0).is_some());
        assert!(inj.on_completion_delivery(0).is_none());
        assert!(!inj.on_arrival_delivered(1));
        assert!(inj.on_arrival_delivered(1));
        assert!(!inj.on_arrival_delivered(1));
        assert!(!inj.on_checkpoint_attempt(0));
        assert!(!inj.on_recovery_attempt(0));
    }

    #[test]
    fn tenant_burst_is_deterministic_lane_pure_and_ordered() {
        use taskprune_model::{SimTime, Task, TaskTypeId};
        let burst = TenantBurst {
            tenant: 2,
            lanes: 3,
            start: 100,
            count: 50,
            every: 7,
            type_id: 1,
            deadline_slack: 500,
            seed: 9,
        };
        let storm = burst.generate();
        assert_eq!(storm, burst.generate());
        assert_eq!(storm.len(), 50);
        for t in &storm {
            assert_eq!(t.id.0 % 3, 2, "burst id escaped its lane");
            assert_eq!(t.type_id, TaskTypeId(1));
            assert_eq!(t.deadline.ticks() - t.arrival.ticks(), 500);
        }
        for w in storm.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "burst went backwards");
        }
        // Splice: stable by arrival, base-stream first on ties, no
        // id collisions with a realistic base stream.
        let base: Vec<Task> = (0..20)
            .map(|i| {
                Task::new(
                    i,
                    TaskTypeId(0),
                    SimTime(90 + i * 10),
                    SimTime(90 + i * 10 + 400),
                )
            })
            .collect();
        let merged = burst.splice(&base);
        assert_eq!(merged.len(), 70);
        for w in merged.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "splice went backwards");
        }
        let tie = merged
            .iter()
            .position(|t| t.arrival == storm[0].arrival)
            .expect("tie instant present");
        // Base ids stay small; burst ids huge — both survive intact.
        assert_eq!(
            merged
                .iter()
                .filter(|t| t.id.0 < TenantBurst::ID_BASE)
                .count(),
            20
        );
        let _ = tie;
    }

    #[test]
    fn plan_and_injector_round_trip_through_values() {
        let plan = FaultPlan::generate(42, &FaultSpec::storm(4, 64));
        let wire = plan.to_value();
        assert_eq!(FaultPlan::from_value(&wire).expect("decodes"), plan);
        let mut inj = FaultInjector::new(plan.clone(), 4);
        inj.on_completion_delivery(2);
        inj.on_arrival_delivered(1);
        let restored =
            FaultInjector::from_value(&inj.to_value()).expect("decodes");
        assert_eq!(restored.plan, plan);
        assert_eq!(restored.completions_seen, inj.completions_seen);
        assert_eq!(restored.arrivals_seen, inj.arrivals_seen);
    }
}
