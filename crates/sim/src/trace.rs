//! Execution tracing and system time-series.
//!
//! When enabled ([`crate::Engine::with_trace`]), the engine records every
//! task lifecycle transition plus a periodically sampled snapshot of the
//! system's queue state. Traces feed debugging, the example binaries'
//! surge plots, and post-hoc analysis of *why* a configuration won —
//! e.g. watching the batch queue drain when the Toggle engages.
//!
//! The log is bounded: beyond `capacity` lifecycle events the earliest
//! are discarded (a ring), so tracing a 25 K-task run cannot exhaust
//! memory by accident.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use taskprune_model::{MachineId, SimTime, TaskId};

/// One task-lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The task arrived at the resource allocator.
    Arrived {
        /// Task id.
        task: TaskId,
    },
    /// The task was committed to a machine queue.
    Mapped {
        /// Task id.
        task: TaskId,
        /// Destination machine.
        machine: MachineId,
    },
    /// The pruner vetoed a proposed mapping (Step 10).
    Deferred {
        /// Task id.
        task: TaskId,
    },
    /// The task began executing.
    Started {
        /// Task id.
        task: TaskId,
        /// Executing machine.
        machine: MachineId,
    },
    /// The task finished executing.
    Completed {
        /// Task id.
        task: TaskId,
        /// Whether it met its deadline.
        on_time: bool,
    },
    /// Reactive drop: the deadline passed while pending (Step 1).
    DroppedReactive {
        /// Task id.
        task: TaskId,
    },
    /// Proactive drop: pruned from a machine queue (Step 6).
    DroppedProactive {
        /// Task id.
        task: TaskId,
    },
    /// Cancelled mid-execution (optional policy).
    Cancelled {
        /// Task id.
        task: TaskId,
    },
    /// Rejected at arrival (immediate mode, all queues full).
    Rejected {
        /// Task id.
        task: TaskId,
    },
}

/// A sampled snapshot of system occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Tasks waiting in the batch/arrival queue.
    pub batch_queue_len: usize,
    /// Tasks waiting in machine queues (sum).
    pub waiting_total: usize,
    /// Machines currently executing a task.
    pub busy_machines: usize,
}

/// The bounded trace log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceLog {
    capacity: usize,
    /// Snapshot cadence: one [`QueueSnapshot`] every N mapping events.
    snapshot_every: u64,
    events: VecDeque<(SimTime, TraceEvent)>,
    snapshots: Vec<QueueSnapshot>,
    /// Lifecycle events discarded by the ring bound.
    pub dropped_events: u64,
}

impl TraceLog {
    /// Creates a log bounded to `capacity` lifecycle events, sampling a
    /// queue snapshot every `snapshot_every` mapping events.
    pub fn new(capacity: usize, snapshot_every: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            snapshot_every: snapshot_every.max(1),
            events: VecDeque::with_capacity(capacity.min(4_096)),
            snapshots: Vec::new(),
            dropped_events: 0,
        }
    }

    /// Default sizing: 64 K events, one snapshot per 16 mapping events.
    pub fn with_defaults() -> Self {
        Self::new(65_536, 16)
    }

    /// Appends a lifecycle event.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back((at, event));
    }

    /// Whether a snapshot is due at the given mapping-event ordinal.
    pub fn snapshot_due(&self, mapping_event: u64) -> bool {
        mapping_event.is_multiple_of(self.snapshot_every)
    }

    /// Appends a queue snapshot.
    pub fn record_snapshot(&mut self, snapshot: QueueSnapshot) {
        self.snapshots.push(snapshot);
    }

    /// Lifecycle events in order (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.events.iter()
    }

    /// Number of retained lifecycle events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sampled occupancy series.
    pub fn snapshots(&self) -> &[QueueSnapshot] {
        &self.snapshots
    }

    /// Full lifecycle of one task, in order.
    pub fn task_history(&self, task: TaskId) -> Vec<(SimTime, TraceEvent)> {
        self.events
            .iter()
            .filter(|(_, e)| {
                matches!(e,
                    TraceEvent::Arrived { task: t }
                    | TraceEvent::Mapped { task: t, .. }
                    | TraceEvent::Deferred { task: t }
                    | TraceEvent::Started { task: t, .. }
                    | TraceEvent::Completed { task: t, .. }
                    | TraceEvent::DroppedReactive { task: t }
                    | TraceEvent::DroppedProactive { task: t }
                    | TraceEvent::Cancelled { task: t }
                    | TraceEvent::Rejected { task: t }
                    if *t == task
                )
            })
            .copied()
            .collect()
    }

    /// Peak batch-queue length across snapshots (0 when none sampled).
    pub fn peak_batch_queue(&self) -> usize {
        self.snapshots
            .iter()
            .map(|s| s.batch_queue_len)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: u64) -> TraceEvent {
        TraceEvent::Arrived { task: TaskId(task) }
    }

    #[test]
    fn records_in_order() {
        let mut log = TraceLog::new(16, 1);
        log.record(SimTime(1), ev(0));
        log.record(SimTime(2), ev(1));
        let all: Vec<_> = log.events().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, SimTime(1));
        assert_eq!(all[1].0, SimTime(2));
        assert!(!log.is_empty());
    }

    #[test]
    fn ring_bound_discards_oldest() {
        let mut log = TraceLog::new(3, 1);
        for i in 0..5 {
            log.record(SimTime(i), ev(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped_events, 2);
        let first = log.events().next().unwrap();
        assert_eq!(first.0, SimTime(2));
    }

    #[test]
    fn snapshot_cadence() {
        let log = TraceLog::new(8, 4);
        assert!(log.snapshot_due(0));
        assert!(!log.snapshot_due(1));
        assert!(!log.snapshot_due(3));
        assert!(log.snapshot_due(4));
    }

    #[test]
    fn task_history_filters_by_id() {
        let mut log = TraceLog::new(32, 1);
        log.record(SimTime(1), TraceEvent::Arrived { task: TaskId(7) });
        log.record(SimTime(2), TraceEvent::Arrived { task: TaskId(8) });
        log.record(
            SimTime(3),
            TraceEvent::Mapped {
                task: TaskId(7),
                machine: MachineId(2),
            },
        );
        log.record(
            SimTime(9),
            TraceEvent::Completed {
                task: TaskId(7),
                on_time: true,
            },
        );
        let history = log.task_history(TaskId(7));
        assert_eq!(history.len(), 3);
        assert!(matches!(history[1].1, TraceEvent::Mapped { .. }));
        assert!(log.task_history(TaskId(99)).is_empty());
    }

    #[test]
    fn peak_batch_queue() {
        let mut log = TraceLog::new(8, 1);
        assert_eq!(log.peak_batch_queue(), 0);
        for (t, len) in [(1u64, 3usize), (2, 9), (3, 4)] {
            log.record_snapshot(QueueSnapshot {
                at: SimTime(t),
                batch_queue_len: len,
                waiting_total: 0,
                busy_machines: 0,
            });
        }
        assert_eq!(log.peak_batch_queue(), 9);
    }

    #[test]
    fn serde_roundtrip() {
        let mut log = TraceLog::new(4, 2);
        log.record(SimTime(5), ev(1));
        let json = serde_json::to_string(&log).unwrap();
        let back: TraceLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
    }
}
