//! Pluggable consumers of the scheduler's typed decision stream.
//!
//! [`SchedulerCore`](crate::SchedulerCore) records every mapping-event
//! outcome as a typed [`Decision`]; streaming callers drain them with
//! `drain_decisions`. The bundled [`Engine`](crate::Engine) driver used
//! to drain-and-discard that stream each event — live callers running
//! the engine had no way to subscribe. A [`Decisions`] consumer is the
//! fix, mirroring the [`Sink`](crate::Sink) design exactly: it is a
//! *type parameter* of the engine, the default [`NullDecisions`]
//! compiles the delivery loop away, and any other implementation
//! receives each decision the moment the event that produced it ends.
//!
//! `&mut D` also implements `Decisions`, so a caller can lend a
//! consumer to the engine and keep ownership for after the run:
//!
//! ```no_run
//! # use taskprune_sim::{SchedulerBuilder, DecisionCounter};
//! # let (cluster, pet, tasks): (_, _, Vec<taskprune_model::Task>) =
//! #     unimplemented!();
//! let mut counter = DecisionCounter::default();
//! let stats = SchedulerBuilder::new(&cluster, &pet)
//!     .decisions(&mut counter)
//!     .build()?
//!     .run(&tasks);
//! println!("{}", counter.summary());
//! # Ok::<(), taskprune_sim::ConfigError>(())
//! ```

use crate::core::Decision;
use taskprune_model::SimTime;

/// A consumer of the typed decision stream.
///
/// The only method has a no-op default, so implementations override
/// exactly what they need. Decisions arrive oldest-first, each stamped
/// with the simulated instant of the mapping event that took it.
pub trait Decisions {
    /// Observes one scheduling decision taken at simulated time `at`.
    fn on_decision(&mut self, at: SimTime, decision: Decision) {
        let _ = (at, decision);
    }
}

/// The default consumer: ignores everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullDecisions;

impl Decisions for NullDecisions {}

impl<D: Decisions + ?Sized> Decisions for &mut D {
    fn on_decision(&mut self, at: SimTime, decision: Decision) {
        (**self).on_decision(at, decision);
    }
}

/// Counts decisions per variant — the cheapest useful subscriber, and
/// the one `examples/live_ingest.rs` prints its summary through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCounter {
    /// Tasks committed to a machine queue.
    pub assigned: u64,
    /// Pruner vetoes sending a task back to the batch queue.
    pub deferred: u64,
    /// Deadline-missed pending tasks dropped reactively.
    pub dropped_reactive: u64,
    /// Tasks pruned probabilistically from machine queues.
    pub dropped_probabilistic: u64,
    /// Immediate-mode rejections (all queues full).
    pub rejected: u64,
    /// Late running tasks cancelled mid-execution.
    pub cancelled: u64,
}

impl DecisionCounter {
    /// Total decisions observed.
    pub fn total(&self) -> u64 {
        self.assigned
            + self.deferred
            + self.dropped_reactive
            + self.dropped_probabilistic
            + self.rejected
            + self.cancelled
    }

    /// One-line human summary of the observed stream.
    pub fn summary(&self) -> String {
        format!(
            "{} decisions: {} assigned, {} deferred, {} dropped reactive, \
             {} pruned, {} rejected, {} cancelled",
            self.total(),
            self.assigned,
            self.deferred,
            self.dropped_reactive,
            self.dropped_probabilistic,
            self.rejected,
            self.cancelled,
        )
    }
}

impl Decisions for DecisionCounter {
    fn on_decision(&mut self, _at: SimTime, decision: Decision) {
        match decision {
            Decision::Assign { .. } => self.assigned += 1,
            Decision::DeferToBatch { .. } => self.deferred += 1,
            Decision::DropReactive { .. } => self.dropped_reactive += 1,
            Decision::DropProbabilistic { .. } => {
                self.dropped_probabilistic += 1
            }
            Decision::Reject { .. } => self.rejected += 1,
            Decision::CancelRunning { .. } => self.cancelled += 1,
        }
    }
}

/// Records the full timestamped decision stream — the trace-everything
/// subscriber for tests and offline analysis.
#[derive(Debug, Clone, Default)]
pub struct DecisionLog {
    /// The observed stream, oldest first.
    pub entries: Vec<(SimTime, Decision)>,
}

impl Decisions for DecisionLog {
    fn on_decision(&mut self, at: SimTime, decision: Decision) {
        self.entries.push((at, decision));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_model::{MachineId, TaskId};

    fn one_of_each() -> [Decision; 6] {
        let task = TaskId(1);
        [
            Decision::Assign {
                task,
                machine: MachineId(0),
            },
            Decision::DeferToBatch { task },
            Decision::DropReactive { task },
            Decision::DropProbabilistic { task },
            Decision::Reject { task },
            Decision::CancelRunning { task },
        ]
    }

    #[test]
    fn counter_tracks_every_variant() {
        let mut c = DecisionCounter::default();
        for d in one_of_each() {
            c.on_decision(SimTime(5), d);
        }
        assert_eq!(c.total(), 6);
        assert_eq!((c.assigned, c.deferred, c.dropped_reactive), (1, 1, 1));
        assert_eq!(
            (c.dropped_probabilistic, c.rejected, c.cancelled),
            (1, 1, 1)
        );
        assert!(c.summary().starts_with("6 decisions"));
    }

    #[test]
    fn borrowed_consumer_delegates() {
        let mut c = DecisionCounter::default();
        {
            let mut borrowed: &mut DecisionCounter = &mut c;
            // Route through the `&mut D` blanket impl explicitly (plain
            // method syntax would auto-deref to the inherent impl).
            <&mut DecisionCounter as Decisions>::on_decision(
                &mut borrowed,
                SimTime(0),
                Decision::Assign {
                    task: TaskId(0),
                    machine: MachineId(0),
                },
            );
        }
        assert_eq!(c.assigned, 1);
    }

    #[test]
    fn log_keeps_order_and_timestamps() {
        let mut log = DecisionLog::default();
        log.on_decision(SimTime(1), Decision::Reject { task: TaskId(9) });
        log.on_decision(SimTime(2), Decision::DropReactive { task: TaskId(9) });
        assert_eq!(log.entries.len(), 2);
        assert_eq!(log.entries[0].0, SimTime(1));
        assert!(matches!(log.entries[1].1, Decision::DropReactive { .. }));
    }

    #[test]
    fn null_consumer_is_a_no_op() {
        let mut n = NullDecisions;
        n.on_decision(SimTime(0), Decision::Reject { task: TaskId(0) });
    }
}
