//! Plug-in points: mapping heuristics and pruning policies.
//!
//! The paper's architecture (Fig. 1c) keeps the mapping heuristic
//! untouched and attaches the pruning mechanism beside it. These traits
//! realise that: the engine orchestrates mapping events and consults
//!
//! * a [`BatchMapper`] or [`ImmediateMapper`] for *where* tasks go, and
//! * a [`Pruner`] for *whether* a task should be mapped at all (defer) or
//!   evicted from a machine queue (drop).

use crate::view::SystemView;
use taskprune_model::{MachineId, SimTime, Task, TaskId};

/// One task→machine mapping proposed by a batch heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The task to map.
    pub task: TaskId,
    /// The machine queue it should join.
    pub machine: MachineId,
}

/// A batch-mode mapping heuristic (MM, MSD, MMU, EDF, SJF, FCFS-RR).
///
/// Called repeatedly within a mapping event (the Step 7 loop of the
/// pruning procedure): each call sees the machine state *including* tasks
/// committed earlier in the same event, and the candidate list excludes
/// tasks the pruner has deferred.
///
/// `Send` because a [`crate::SchedulerCore`] owning the mapper is a
/// federation shard, and the parallel federated driver moves shards
/// onto worker threads (each shard stays single-threaded — no `Sync`).
pub trait BatchMapper: Send {
    /// Heuristic name for reports ("MM", "MSD", …).
    fn name(&self) -> &str;

    /// Proposes assignments for the current state. Proposals are applied
    /// in order; the engine re-validates each against remaining capacity.
    /// Returning an empty vector ends the event's mapping loop.
    fn select(
        &mut self,
        view: &SystemView<'_>,
        candidates: &[Task],
    ) -> Vec<Assignment>;

    /// Buffer-reusing variant of [`BatchMapper::select`]: appends the
    /// proposals to `out` (already cleared by the caller). The scheduler
    /// core calls *this* on the hot path with a reused buffer; the
    /// default delegates to `select`, so implementations override it
    /// only to eliminate the per-round allocation.
    fn select_into(
        &mut self,
        view: &SystemView<'_>,
        candidates: &[Task],
        out: &mut Vec<Assignment>,
    ) {
        out.extend(self.select(view, candidates));
    }

    /// Captures the heuristic's internal state for a federation
    /// snapshot. Stateless heuristics keep the default
    /// ([`serde::Value::Null`]); stateful ones (round-robin cursors,
    /// …) must override this *and* [`BatchMapper::restore_state`].
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores state captured by [`BatchMapper::snapshot_state`]. The
    /// default accepts only `Null` (the stateless capture).
    ///
    /// # Errors
    /// When `state` is not what this implementation's
    /// `snapshot_state` produces.
    fn restore_state(
        &mut self,
        state: &serde::Value,
    ) -> Result<(), serde::Error> {
        match state {
            serde::Value::Null => Ok(()),
            other => {
                Err(serde::Error::unexpected("null (stateless mapper)", other))
            }
        }
    }
}

/// An immediate-mode mapping heuristic (RR, MET, MCT, KPB): the arriving
/// task is placed the moment it arrives (Fig. 1a), machine queues are
/// unbounded and there is nothing to defer. `Send` for the same reason
/// as [`BatchMapper`].
pub trait ImmediateMapper: Send {
    /// Heuristic name for reports ("RR", "MCT", …).
    fn name(&self) -> &str;

    /// Chooses the machine for the arriving task.
    fn place(&mut self, view: &SystemView<'_>, task: &Task) -> MachineId;

    /// Captures the heuristic's internal state for a federation
    /// snapshot (see [`BatchMapper::snapshot_state`]).
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores state captured by
    /// [`ImmediateMapper::snapshot_state`]. The default accepts only
    /// `Null` (the stateless capture).
    ///
    /// # Errors
    /// When `state` is not what this implementation's
    /// `snapshot_state` produces.
    fn restore_state(
        &mut self,
        state: &serde::Value,
    ) -> Result<(), serde::Error> {
        match state {
            serde::Value::Null => Ok(()),
            other => {
                Err(serde::Error::unexpected("null (stateless mapper)", other))
            }
        }
    }
}

/// Either kind of mapper, as the engine stores it.
pub enum MappingStrategy {
    /// Immediate-mode resource allocation.
    Immediate(Box<dyn ImmediateMapper>),
    /// Batch-mode resource allocation.
    Batch(Box<dyn BatchMapper>),
}

impl MappingStrategy {
    /// The wrapped heuristic's name.
    pub fn name(&self) -> &str {
        match self {
            MappingStrategy::Immediate(m) => m.name(),
            MappingStrategy::Batch(m) => m.name(),
        }
    }

    /// Captures the wrapped heuristic's snapshot state.
    pub fn snapshot_state(&self) -> serde::Value {
        match self {
            MappingStrategy::Immediate(m) => m.snapshot_state(),
            MappingStrategy::Batch(m) => m.snapshot_state(),
        }
    }

    /// Restores the wrapped heuristic from a snapshot capture.
    ///
    /// # Errors
    /// When `state` does not match the wrapped heuristic's capture.
    pub fn restore_state(
        &mut self,
        state: &serde::Value,
    ) -> Result<(), serde::Error> {
        match self {
            MappingStrategy::Immediate(m) => m.restore_state(state),
            MappingStrategy::Batch(m) => m.restore_state(state),
        }
    }
}

/// What happened between the previous mapping event and this one; the
/// pruner's Accounting input (Fig. 4).
#[derive(Debug, Clone, Default)]
pub struct EventReport {
    /// Current simulation time.
    pub now: SimTime,
    /// Tasks that finished executing, with their on-time flag.
    pub completed: Vec<(Task, bool)>,
    /// Pending tasks reactively dropped at this event for missing their
    /// deadline (Step 1).
    pub dropped_reactive: Vec<Task>,
    /// Running tasks cancelled by the optional late-cancellation policy.
    pub cancelled: Vec<Task>,
}

impl EventReport {
    /// Number of deadline misses observed at this event — the signal the
    /// Toggle module thresholds on (§IV-C).
    pub fn deadline_misses(&self) -> usize {
        self.dropped_reactive.len()
            + self.cancelled.len()
            + self
                .completed
                .iter()
                .filter(|(_, on_time)| !on_time)
                .count()
    }
}

/// A pruning policy (the paper's contribution lives behind this trait in
/// the `taskprune` crate; [`NoPruning`] is the baseline). `Send` for
/// the same reason as [`BatchMapper`].
pub trait Pruner: Send {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Steps 1–2 bookkeeping: observe completions and reactive drops
    /// since the previous mapping event (feeds Accounting, Toggle and
    /// Fairness).
    fn begin_event(&mut self, report: &EventReport);

    /// Steps 3–6: choose machine-queue tasks to drop proactively.
    /// Returns `(machine, task)` pairs; the engine applies them.
    fn select_drops(
        &mut self,
        view: &SystemView<'_>,
    ) -> Vec<(MachineId, TaskId)>;

    /// Buffer-reusing variant of [`Pruner::select_drops`]: appends the
    /// drops to `out` (already cleared by the caller). The scheduler
    /// core calls *this* on the hot path with a reused buffer; the
    /// default delegates to `select_drops`, so implementations override
    /// it only to eliminate the per-event allocation.
    fn select_drops_into(
        &mut self,
        view: &SystemView<'_>,
        out: &mut Vec<(MachineId, TaskId)>,
    ) {
        out.extend(self.select_drops(view));
    }

    /// Step 10: veto a proposed mapping, deferring the task to the next
    /// mapping event. `chance` is the task's chance of success on the
    /// proposed machine (Eq. 2).
    fn should_defer(&mut self, task: &Task, chance: f64) -> bool;

    /// Degraded-mode load shedding: multiply the policy's pruning
    /// threshold by `factor` (> 1 prunes more aggressively), clamped
    /// to whatever range the policy considers valid. A federation
    /// supervisor calls this on healthy shards when a quarantined
    /// shard's backlog is re-routed onto them — pruning doubles as the
    /// paper's own load-shedding valve. The default is a no-op:
    /// thresholdless policies (like [`NoPruning`]) have nothing to
    /// tighten.
    fn tighten_threshold(&mut self, _factor: f64) {}

    /// Captures the policy's internal state (toggle engagement,
    /// fairness scores, accounting) for a federation snapshot (see
    /// [`BatchMapper::snapshot_state`]).
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores state captured by [`Pruner::snapshot_state`]. The
    /// default accepts only `Null` (the stateless capture).
    ///
    /// # Errors
    /// When `state` is not what this implementation's
    /// `snapshot_state` produces.
    fn restore_state(
        &mut self,
        state: &serde::Value,
    ) -> Result<(), serde::Error> {
        match state {
            serde::Value::Null => Ok(()),
            other => {
                Err(serde::Error::unexpected("null (stateless pruner)", other))
            }
        }
    }
}

/// The baseline policy: never drops, never defers. With it, the engine
/// behaves exactly like the unmodified resource allocator of Fig. 1a/1b.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPruning;

impl Pruner for NoPruning {
    fn name(&self) -> &str {
        "none"
    }

    fn begin_event(&mut self, _report: &EventReport) {}

    fn select_drops(
        &mut self,
        _view: &SystemView<'_>,
    ) -> Vec<(MachineId, TaskId)> {
        Vec::new()
    }

    fn should_defer(&mut self, _task: &Task, _chance: f64) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprune_model::TaskTypeId;

    #[test]
    fn event_report_counts_misses() {
        let t = |id| Task::new(id, TaskTypeId(0), SimTime(0), SimTime(10));
        let report = EventReport {
            now: SimTime(100),
            completed: vec![(t(0), true), (t(1), false), (t(2), false)],
            dropped_reactive: vec![t(3)],
            cancelled: vec![t(4)],
        };
        assert_eq!(report.deadline_misses(), 4);
    }

    #[test]
    fn no_pruning_never_acts() {
        let mut p = NoPruning;
        let t = Task::new(0, TaskTypeId(0), SimTime(0), SimTime(10));
        assert!(!p.should_defer(&t, 0.0));
        assert_eq!(p.name(), "none");
    }
}
