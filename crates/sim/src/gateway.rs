//! Sharded cluster federation: one gateway, N independent scheduler
//! shards.
//!
//! The paper evaluates one load balancer in front of one heterogeneous
//! cluster; its companion work frames pruning as part of a
//! resource-allocation *system* whose front-end mediates between users
//! and many machine queues. A [`Gateway`] is that front-end: it owns N
//! independent [`SchedulerCore`] shards — each a full paper-system
//! instance with its own machines, queues, pruner and heuristic — and
//! routes one live arrival stream across them through a pluggable
//! [`RoutePolicy`].
//!
//! Three concerns live at the federation boundary and nowhere else:
//!
//! * **Routing** — which shard absorbs each arrival
//!   ([`crate::route`]);
//! * **Id compaction** ([`IdCompactor`]) — external task ids may be
//!   sparse (timestamps, snowflakes), out of order, or even duplicated;
//!   each shard sees only its own dense, arrival-ordered internal id
//!   space, so the per-shard outcome tables stay dense and small;
//! * **Fan-in** ([`FederationStats`]) — per-shard outcome records merge
//!   into federation-level robustness/throughput figures
//!   deterministically, trimmed by *global arrival order*.
//!
//! A **one-shard gateway is bit-identical to the plain engine**: the
//! round-robin policy degenerates to "always shard 0", compaction maps
//! a dense in-order trace onto itself, and the federated driver
//! ([`FederatedEngine`]) replays exactly the event ordering of
//! [`crate::Engine`] — `tests/federation_equivalence.rs` pins this on
//! serialized [`SimStats`], trace included.

use crate::config::{ConfigError, SimConfig};
use crate::core::{Decision, SchedulerCore, Start};
use crate::event::EventKind;
use crate::journal::{JournalOp, ShardJournal};
use crate::route::{RoundRobinRoute, RoutePolicy, ShardView};
use crate::sink::{NullSink, Sink};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::stats::SimStats;
use crate::traits::{MappingStrategy, Pruner};
use serde::{Deserialize, Serialize, Value};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::iter::Peekable;
use taskprune_model::{
    Cluster, Machine, MachineId, PetMatrix, SimTime, Task, TaskId, TaskOutcome,
    TaskTypeId,
};
use taskprune_prob::rng::{derive_seed, Xoshiro256PlusPlus};

// ---------------------------------------------------------------------
// Id compaction.
// ---------------------------------------------------------------------

/// Translates sparse/out-of-order external task ids into each shard's
/// dense internal id space.
///
/// Internal ids are assigned per shard in arrival order (`0, 1, 2, …`),
/// which is exactly the layout the dense [`SimStats`] tables want —
/// the >2²⁴-jump guard can never fire behind a compactor. The mapping
/// is append-only, so an internal id round-trips to the external id it
/// was assigned for even when external ids repeat (each occurrence gets
/// a fresh internal id).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdCompactor {
    /// Per shard: internal id (index) → external id.
    per_shard: Vec<Vec<TaskId>>,
}

impl IdCompactor {
    /// A compactor for `n_shards` shards.
    pub fn new(n_shards: usize) -> Self {
        Self {
            per_shard: vec![Vec::new(); n_shards],
        }
    }

    /// Assigns the next dense internal id of `shard` to `external`.
    pub fn assign(&mut self, shard: usize, external: TaskId) -> TaskId {
        let table = &mut self.per_shard[shard];
        let internal = TaskId(table.len() as u64);
        table.push(external);
        internal
    }

    /// The external id an internal id was assigned for.
    pub fn external(&self, shard: usize, internal: TaskId) -> Option<TaskId> {
        self.per_shard
            .get(shard)
            .and_then(|t| t.get(internal.0 as usize))
            .copied()
    }

    /// Number of ids assigned on `shard`.
    pub fn assigned(&self, shard: usize) -> usize {
        self.per_shard.get(shard).map_or(0, Vec::len)
    }

    /// Captures the compactor's id tables into a sealed, versioned
    /// [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::seal("id-compactor", self.to_value())
    }

    /// Restores the tables captured by [`IdCompactor::snapshot`],
    /// after verifying the envelope (version + state hash).
    ///
    /// # Errors
    /// Any [`SnapshotError`] from the envelope or payload decode.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        *self = Self::from_value(snap.verify()?)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The gateway.
// ---------------------------------------------------------------------

/// One arrival as the federation recorded it: where it was routed and
/// under which internal id. The global sequence of these is the
/// federation's arrival-ordered trim window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FedArrival {
    /// The shard the task was routed to.
    pub shard: u32,
    /// The dense id the shard knows the task by.
    pub internal: TaskId,
    /// The id the outside world knows the task by.
    pub external: TaskId,
}

/// One decision from the federated decision stream, translated back
/// into external ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FedDecision {
    /// The shard that took the decision.
    pub shard: usize,
    /// The decision, with the task's *external* id restored.
    pub decision: Decision,
}

/// One execution start surfaced through the gateway. The caller owes a
/// matching [`Gateway::complete`] with the *internal* id (kept here
/// alongside the externally-labelled task).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedStart {
    /// The shard whose machine starts executing.
    pub shard: usize,
    /// The machine that begins executing.
    pub machine: Machine,
    /// The task it executes, with its **external** id restored.
    pub task: Task,
    /// The shard-internal id [`Gateway::complete`] expects back.
    pub internal: TaskId,
}

/// The federation front-end: N independent [`SchedulerCore`] shards
/// behind a [`RoutePolicy`], with id compaction at the boundary.
///
/// Mirrors the core's streaming API one level up: `advance_to` /
/// `push_arrival` / `complete` / `wakeup`, with decisions and starts
/// drained in shard-index order and translated back to external ids.
/// Construct via [`GatewayBuilder`]; [`FederatedEngine`] is the bundled
/// discrete-event driver over it.
pub struct Gateway<'a, S: Sink = NullSink> {
    shards: Vec<SchedulerCore<'a, S>>,
    policy: Box<dyn RoutePolicy>,
    compact: IdCompactor,
    /// Global arrival order across the federation.
    arrival_order: Vec<FedArrival>,
    /// Latest (shard, internal) per external id, for callers that only
    /// know external ids. Duplicated external ids: latest wins.
    latest: HashMap<u64, (u32, TaskId)>,
    /// Reused output buffer for [`Gateway::drain_decisions`].
    decisions: Vec<FedDecision>,
    /// Reused output buffer for [`Gateway::drain_starts`].
    starts: Vec<FedStart>,
}

impl<'a, S: Sink> Gateway<'a, S> {
    fn from_parts(
        shards: Vec<SchedulerCore<'a, S>>,
        policy: Box<dyn RoutePolicy>,
    ) -> Self {
        let n = shards.len();
        Self {
            shards,
            policy,
            compact: IdCompactor::new(n),
            arrival_order: Vec::new(),
            latest: HashMap::new(),
            decisions: Vec::new(),
            starts: Vec::new(),
        }
    }

    /// Number of shards behind the gateway.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing policy's display name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Read-only access to the shards (shard-index order).
    pub fn shards(&self) -> &[SchedulerCore<'a, S>] {
        &self.shards
    }

    /// Mutable shard access for the parallel driver, which advances
    /// disjoint shards on worker threads (crate-internal: arbitrary
    /// external mutation could break the arrival bookkeeping).
    pub(crate) fn shards_mut(&mut self) -> &mut [SchedulerCore<'a, S>] {
        &mut self.shards
    }

    /// Whether the routing policy declared itself state-independent
    /// (see [`RoutePolicy::is_stateless`]).
    pub(crate) fn policy_is_stateless(&self) -> bool {
        self.policy.is_stateless()
    }

    /// The federation clock (all shards share one timeline).
    pub fn now(&self) -> SimTime {
        self.shards[0].now()
    }

    /// Moves every shard's clock forward to `t`.
    ///
    /// # Panics
    /// If `t` is before the current clock (time never runs backwards —
    /// see [`SchedulerCore::advance_to`]).
    pub fn advance_to(&mut self, t: SimTime) {
        for shard in &mut self.shards {
            shard.advance_to(t);
        }
    }

    /// Routes one arriving task (carrying its *external* id), compacts
    /// the id into the chosen shard's dense space, and runs that
    /// shard's mapping event. Returns the routed shard and the internal
    /// id assigned.
    pub fn push_arrival(&mut self, task: Task) -> (usize, TaskId) {
        let (shard, relabelled) = self.route_only(task);
        let internal = relabelled.id;
        self.shards[shard].push_arrival(relabelled);
        (shard, internal)
    }

    /// The routing half of [`Gateway::push_arrival`]: picks the shard,
    /// compacts the external id, and records the global arrival — but
    /// does **not** run the shard's mapping event. Returns the shard
    /// and the task relabelled with its internal id; the caller owes
    /// that shard a matching `push_arrival` of the relabelled task
    /// (the parallel driver delivers it through a mailbox instead of
    /// inline).
    pub(crate) fn route_only(&mut self, task: Task) -> (usize, Task) {
        // A single shard needs no routing decision at all — the
        // bit-identity-critical 1-shard path skips the policy (and its
        // view materialisation) entirely. Stateless policies skip only
        // the views: their cursor still advances identically.
        let shard = if self.shards.len() == 1 {
            0
        } else if self.policy.is_stateless() {
            self.policy.route_stateless(self.shards.len(), &task)
        } else {
            // The views borrow the shards, so they cannot live in a
            // reused arena on `self`; one small shard-count-sized
            // allocation per arrival is the price of the borrow (noise
            // next to the mapping event it precedes).
            let views: Vec<ShardView<'_>> = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    ShardView::new(i, s.view(), s.pending_batch_len())
                })
                .collect();
            self.policy.route(&views, &task)
        };
        assert!(
            shard < self.shards.len(),
            "route policy {:?} returned shard {shard} of {}",
            self.policy.name(),
            self.shards.len(),
        );
        let internal = self.compact.assign(shard, task.id);
        self.latest.insert(task.id.0, (shard as u32, internal));
        self.arrival_order.push(FedArrival {
            shard: shard as u32,
            internal,
            external: task.id,
        });
        let mut relabelled = task;
        relabelled.id = internal;
        (shard, relabelled)
    }

    /// Reports that `machine` on `shard` finished the task with the
    /// given *internal* id (as handed out via [`FedStart`]). Returns
    /// `false` for stale completions, exactly like
    /// [`SchedulerCore::complete`].
    pub fn complete(
        &mut self,
        shard: usize,
        machine: MachineId,
        internal: TaskId,
    ) -> bool {
        self.shards[shard].complete(machine, internal)
    }

    /// Where an external id currently lives: the `(shard, internal)`
    /// pair of its **latest** arrival (duplicated external ids shadow
    /// earlier occurrences). A caller that re-submitted an external id
    /// and still needs to reach the *superseded* instance cannot get
    /// there from here — hold the [`FedStart`] handles and use
    /// [`Gateway::complete_internal`] instead.
    pub fn resolve(&self, external: TaskId) -> Option<(usize, TaskId)> {
        self.latest.get(&external.0).map(|&(s, i)| (s as usize, i))
    }

    /// Completes an execution by its [`FedStart`] handle — the
    /// `(shard, machine, internal)` triple the gateway surfaced when
    /// the execution began. Unlike resolving by external id (which is
    /// latest-wins under duplicate external ids), this reaches **any**
    /// live instance, including one whose external id has since been
    /// re-submitted and shadowed. Returns `false` for stale
    /// completions, exactly like [`Gateway::complete`].
    pub fn complete_internal(&mut self, start: &FedStart) -> bool {
        self.complete(start.shard, start.machine.id, start.internal)
    }

    /// Fires a synthetic mapping event on one shard (the deferral
    /// safety net).
    pub fn wakeup(&mut self, shard: usize) {
        self.shards[shard].wakeup();
    }

    /// The soonest batch-queue deadline on `shard`, if any — drivers
    /// schedule the per-shard wakeup safety net just past it.
    pub fn earliest_pending_deadline(&self, shard: usize) -> Option<SimTime> {
        self.shards[shard].earliest_pending_deadline()
    }

    /// Drains every shard's decision stream (shard-index order, oldest
    /// first within a shard) with external ids restored.
    pub fn drain_decisions(&mut self) -> &[FedDecision] {
        self.decisions.clear();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            for d in shard.drain_decisions() {
                self.decisions.push(FedDecision {
                    shard: i,
                    decision: relabel_decision(*d, |id| {
                        self.compact
                            .external(i, id)
                            .expect("decision about an id the shard was fed")
                    }),
                });
            }
        }
        &self.decisions
    }

    /// Drains and discards every shard's decision stream without
    /// building or relabelling anything — the zero-cost path for
    /// drivers that only need the buffers kept bounded (the federated
    /// analogue of the engine's `NullDecisions`).
    pub fn discard_decisions(&mut self) {
        for shard in &mut self.shards {
            shard.drain_decisions();
        }
    }

    /// Drains every shard's pending execution starts (shard-index
    /// order). Each owes the gateway a [`Gateway::complete`].
    pub fn drain_starts(&mut self) -> &[FedStart] {
        self.starts.clear();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            for &Start { machine, task } in shard.drain_starts() {
                let mut external = task;
                external.id = self
                    .compact
                    .external(i, task.id)
                    .expect("start for an id the shard was fed");
                self.starts.push(FedStart {
                    shard: i,
                    machine,
                    task: external,
                    internal: task.id,
                });
            }
        }
        &self.starts
    }

    /// Captures the whole federation front-end into a sealed,
    /// versioned [`Snapshot`]: every shard's full (nested, itself
    /// sealed) core snapshot, the id compactor, the global arrival
    /// order, and the routing policy's plug-in state. The
    /// external-id index is rebuilt from the arrival order on restore,
    /// and the drain buffers are scratch — neither is serialized.
    pub fn snapshot(&self) -> Snapshot {
        let shards: Vec<Value> = self
            .shards
            .iter()
            .map(|s| s.snapshot().to_value())
            .collect();
        Snapshot::seal(
            "gateway",
            Value::Object(vec![
                ("shards".to_owned(), Value::Array(shards)),
                ("compact".to_owned(), self.compact.to_value()),
                ("arrival_order".to_owned(), self.arrival_order.to_value()),
                ("policy".to_owned(), self.policy.snapshot_state()),
            ]),
        )
    }

    /// Restores state captured by [`Gateway::snapshot`] into this
    /// gateway, verifying the outer envelope **and** every nested
    /// per-shard envelope (defense in depth: a desynced or tampered
    /// shard payload cannot hide inside an intact outer hash). The
    /// gateway must have been built with the same shard count,
    /// configuration and plug-in types.
    ///
    /// # Errors
    /// Any [`SnapshotError`]; on error the gateway's state is
    /// unspecified and it should be discarded.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let payload = snap.verify()?.clone();
        let Value::Array(shard_snaps) = payload.get_field("shards")? else {
            return Err(SnapshotError::ShapeMismatch {
                what: "`shards` payload is not an array",
            });
        };
        if shard_snaps.len() != self.shards.len() {
            return Err(SnapshotError::ShapeMismatch {
                what: "snapshot shard count differs from this federation",
            });
        }
        for (core, wire) in self.shards.iter_mut().zip(shard_snaps) {
            let nested = Snapshot::from_value(wire)?;
            core.restore(&nested)?;
        }
        self.compact = IdCompactor::from_value(payload.get_field("compact")?)?;
        self.arrival_order =
            Vec::<FedArrival>::from_value(payload.get_field("arrival_order")?)?;
        self.policy.restore_state(payload.get_field("policy")?)?;
        // Replaying the arrival order front to back makes the latest
        // occurrence of each external id win — the live invariant.
        self.latest = self
            .arrival_order
            .iter()
            .map(|a| (a.external.0, (a.shard, a.internal)))
            .collect();
        self.decisions.clear();
        self.starts.clear();
        Ok(())
    }

    /// Finishes every shard and returns the federation's outcome
    /// record.
    pub fn finish(self) -> FederationStats {
        FederationStats {
            per_shard: self
                .shards
                .into_iter()
                .map(SchedulerCore::finish)
                .collect(),
            arrivals: self.arrival_order,
        }
    }
}

impl<S: Sink> std::fmt::Debug for Gateway<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("shards", &self.shards.len())
            .field("policy", &self.policy.name())
            .field("arrivals", &self.arrival_order.len())
            .finish_non_exhaustive()
    }
}

/// Rewrites the task id inside a decision.
fn relabel_decision(
    d: Decision,
    mut f: impl FnMut(TaskId) -> TaskId,
) -> Decision {
    match d {
        Decision::Assign { task, machine } => Decision::Assign {
            task: f(task),
            machine,
        },
        Decision::DeferToBatch { task } => {
            Decision::DeferToBatch { task: f(task) }
        }
        Decision::DropReactive { task } => {
            Decision::DropReactive { task: f(task) }
        }
        Decision::DropProbabilistic { task } => {
            Decision::DropProbabilistic { task: f(task) }
        }
        Decision::Reject { task } => Decision::Reject { task: f(task) },
        Decision::CancelRunning { task } => {
            Decision::CancelRunning { task: f(task) }
        }
    }
}

// ---------------------------------------------------------------------
// Fan-in: the federation-level outcome record.
// ---------------------------------------------------------------------

/// The merged outcome record of a federated run: every shard's
/// [`SimStats`] plus the global arrival order that stitches them
/// together. All aggregate figures are deterministic folds in
/// shard-index or arrival order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederationStats {
    /// Per-shard outcome records, in shard-index order (internal id
    /// spaces).
    pub per_shard: Vec<SimStats>,
    arrivals: Vec<FedArrival>,
}

impl FederationStats {
    /// Total arrivals across the federation.
    pub fn n_tasks(&self) -> usize {
        self.arrivals.len()
    }

    /// The global arrival sequence (routing + id assignments).
    pub fn arrivals(&self) -> &[FedArrival] {
        &self.arrivals
    }

    /// The outcome of an arrival by global arrival index.
    pub fn outcome_at(&self, arrival_idx: usize) -> Option<TaskOutcome> {
        let a = self.arrivals.get(arrival_idx)?;
        self.per_shard[a.shard as usize].outcome(a.internal)
    }

    /// The outcome of an external id's **latest** arrival.
    pub fn outcome(&self, external: TaskId) -> Option<TaskOutcome> {
        let a = self
            .arrivals
            .iter()
            .rev()
            .find(|a| a.external == external)?;
        self.per_shard[a.shard as usize].outcome(a.internal)
    }

    /// Federation-wide count of one outcome.
    pub fn count(&self, outcome: TaskOutcome) -> usize {
        self.per_shard.iter().map(|s| s.count(outcome)).sum()
    }

    /// Federation-wide arrived-but-unresolved count (0 after a clean
    /// drain).
    pub fn unreported(&self) -> usize {
        self.per_shard.iter().map(SimStats::unreported).sum()
    }

    /// Total mapping events across the shards.
    pub fn mapping_events(&self) -> u64 {
        self.per_shard.iter().map(|s| s.mapping_events).sum()
    }

    /// Total deferral decisions across the shards.
    pub fn deferrals(&self) -> u64 {
        self.per_shard.iter().map(|s| s.deferrals).sum()
    }

    /// Federated robustness: % of tasks on time after trimming the
    /// first and last `trim` arrivals **in global arrival order** —
    /// the same §V-B protocol the single-cluster metric uses, applied
    /// at federation granularity.
    pub fn robustness_pct(&self, trim: usize) -> f64 {
        let n = self.arrivals.len();
        if n <= 2 * trim {
            return 0.0;
        }
        let window = &self.arrivals[trim..n - trim];
        let on_time = window
            .iter()
            .filter(|a| {
                matches!(
                    self.per_shard[a.shard as usize].outcome(a.internal),
                    Some(TaskOutcome::CompletedOnTime)
                )
            })
            .count();
        100.0 * on_time as f64 / window.len() as f64
    }

    /// Robustness with the paper's trim of 100 tasks per end.
    pub fn paper_robustness_pct(&self) -> f64 {
        self.robustness_pct(crate::stats::PAPER_TRIM)
    }

    /// Fraction of executed machine time wasted, federation-wide.
    pub fn wasted_fraction(&self) -> f64 {
        let useful: u64 = self.per_shard.iter().map(|s| s.useful_ticks).sum();
        let wasted: u64 = self.per_shard.iter().map(|s| s.wasted_ticks).sum();
        if useful + wasted == 0 {
            0.0
        } else {
            wasted as f64 / (useful + wasted) as f64
        }
    }

    /// Instant the last shard finished draining.
    pub fn end_time(&self) -> SimTime {
        self.per_shard
            .iter()
            .map(|s| s.end_time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Deterministically merges the shards into one [`SimStats`] keyed
    /// by **global arrival index** (dense by construction): outcomes
    /// and per-type counters replay in arrival order, tick/event
    /// counters fold in shard-index order. The merged record drops
    /// per-shard traces (they live in
    /// [`FederationStats::per_shard`]).
    pub fn merged(&self) -> SimStats {
        let n_types = self.per_shard.iter().map(|s| s.per_type().len()).max();
        let mut merged = SimStats::new(0, n_types.unwrap_or(0));
        for (gi, a) in self.arrivals.iter().enumerate() {
            let shard = &self.per_shard[a.shard as usize];
            let ty = shard.task_type(a.internal).unwrap_or(TaskTypeId(0));
            let t = Task::new(gi as u64, ty, SimTime::ZERO, SimTime::ZERO);
            merged.record_arrival(&t);
            if let Some(outcome) = shard.outcome(a.internal) {
                merged.record_outcome(&t, outcome);
            }
        }
        for s in &self.per_shard {
            merged.useful_ticks += s.useful_ticks;
            merged.wasted_ticks += s.wasted_ticks;
            merged.mapping_events += s.mapping_events;
            merged.deferrals += s.deferrals;
        }
        merged.end_time = self.end_time();
        merged
    }
}

// ---------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------

type StrategyFn<'a> = Box<dyn FnMut(usize) -> MappingStrategy + 'a>;
type PrunerFn<'a> = Box<dyn FnMut(usize) -> Box<dyn Pruner> + 'a>;

/// Fluent, validated construction of a [`Gateway`] or a
/// [`FederatedEngine`].
///
/// Every shard is a full paper-system instance over the *same* cluster
/// shape and PET matrix; the heuristic and pruner are supplied as
/// per-shard factories (strategies are stateful and not clonable).
/// Shard 0 keeps the configured seed — so a one-shard federation is
/// bit-identical to the plain engine — and shard `i > 0` derives an
/// independent stream from it.
pub struct GatewayBuilder<'a, S: Sink = NullSink> {
    cluster: Cluster,
    pet: &'a PetMatrix,
    truth: Option<&'a PetMatrix>,
    cfg: SimConfig,
    n_shards: usize,
    threads: Option<usize>,
    policy: Option<Box<dyn RoutePolicy>>,
    strategy_fn: Option<StrategyFn<'a>>,
    pruner_fn: Option<PrunerFn<'a>>,
    sink_fn: Box<dyn FnMut(usize) -> S + 'a>,
}

impl<'a> GatewayBuilder<'a, NullSink> {
    /// Starts a builder over the per-shard cluster shape and (belief)
    /// PET matrix. Defaults: one shard, batch-mode paper parameters,
    /// round-robin routing, no pruning, [`NullSink`] observability.
    pub fn new(cluster: &Cluster, pet: &'a PetMatrix) -> Self {
        Self {
            cluster: cluster.clone(),
            pet,
            truth: None,
            cfg: SimConfig::batch(0),
            n_shards: 1,
            threads: None,
            policy: None,
            strategy_fn: None,
            pruner_fn: None,
            sink_fn: Box::new(|_| NullSink),
        }
    }
}

impl<'a, S: Sink> GatewayBuilder<'a, S> {
    /// Sets the per-shard simulation parameters (mode, capacity,
    /// horizon, seed, …).
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the number of shards.
    pub fn shards(mut self, n: usize) -> Self {
        self.n_shards = n;
        self
    }

    /// Sets the worker-thread count of
    /// [`GatewayBuilder::build_parallel`]'s executor (clamped to ≥ 1;
    /// 1 runs every shard inline on the caller). Default: the
    /// `TASKPRUNE_THREADS` environment variable, else all hardware
    /// threads. Ignored by the single-threaded [`GatewayBuilder::build`]
    /// driver.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Installs the routing policy (default: [`RoundRobinRoute`]).
    pub fn policy(mut self, policy: impl RoutePolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Installs an already-boxed routing policy.
    pub fn policy_boxed(mut self, policy: Box<dyn RoutePolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Installs the per-shard mapping-heuristic factory (called once
    /// per shard index). Required.
    pub fn strategy_with(
        mut self,
        f: impl FnMut(usize) -> MappingStrategy + 'a,
    ) -> Self {
        self.strategy_fn = Some(Box::new(f));
        self
    }

    /// Installs the per-shard pruning-policy factory (default: no
    /// pruning).
    pub fn pruner_with(
        mut self,
        f: impl FnMut(usize) -> Box<dyn Pruner> + 'a,
    ) -> Self {
        self.pruner_fn = Some(Box::new(f));
        self
    }

    /// Separates the shards' belief from ground truth (see
    /// [`crate::SchedulerBuilder::truth`]); the [`FederatedEngine`]
    /// samples actual durations from `truth`.
    pub fn truth(mut self, truth: &'a PetMatrix) -> Self {
        self.truth = Some(truth);
        self
    }

    /// Replaces the per-shard observability sink factory (default:
    /// [`NullSink`] everywhere).
    pub fn sink_with<T: Sink>(
        self,
        f: impl FnMut(usize) -> T + 'a,
    ) -> GatewayBuilder<'a, T> {
        GatewayBuilder {
            cluster: self.cluster,
            pet: self.pet,
            truth: self.truth,
            cfg: self.cfg,
            n_shards: self.n_shards,
            threads: self.threads,
            policy: self.policy,
            strategy_fn: self.strategy_fn,
            pruner_fn: self.pruner_fn,
            sink_fn: Box::new(f),
        }
    }

    /// The execution-sampling seed shard `i` runs under: shard 0 keeps
    /// the configured seed (one shard ≡ plain engine), later shards
    /// derive decorrelated streams.
    pub fn shard_seed(base: u64, shard: usize) -> u64 {
        if shard == 0 {
            base
        } else {
            derive_seed(base, shard as u64)
        }
    }

    /// Builds the bare [`Gateway`] for streaming callers.
    pub fn build_gateway(mut self) -> Result<Gateway<'a, S>, ConfigError> {
        if self.n_shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        let Some(mut strategy_fn) = self.strategy_fn.take() else {
            return Err(ConfigError::MissingStrategy);
        };
        let mut shards = Vec::with_capacity(self.n_shards);
        for i in 0..self.n_shards {
            let mut cfg = self.cfg;
            cfg.seed = Self::shard_seed(self.cfg.seed, i);
            let mut b = crate::SchedulerBuilder::new(&self.cluster, self.pet)
                .config(cfg)
                .strategy(strategy_fn(i));
            if let Some(pruner_fn) = self.pruner_fn.as_mut() {
                b = b.pruner_boxed(pruner_fn(i));
            }
            if let Some(truth) = self.truth {
                b = b.truth(truth);
            }
            shards.push(b.sink((self.sink_fn)(i)).build_core()?);
        }
        let policy = self
            .policy
            .unwrap_or_else(|| Box::new(RoundRobinRoute::new()));
        Ok(Gateway::from_parts(shards, policy))
    }

    /// Builds the federated discrete-event driver (the gateway plus a
    /// global event loop sampling ground-truth durations per shard).
    pub fn build(self) -> Result<FederatedEngine<'a, S>, ConfigError> {
        let truth = self.truth;
        let pet = self.pet;
        let gateway = self.build_gateway()?;
        let rngs = gateway
            .shards()
            .iter()
            .map(|s| Xoshiro256PlusPlus::new(s.config().seed))
            .collect();
        let n = gateway.n_shards();
        Ok(FederatedEngine {
            gateway,
            truth: truth.unwrap_or(pet),
            events: BinaryHeap::new(),
            rngs,
            pending: vec![0; n],
            wakeup_pending: vec![false; n],
            journals: None,
            arrival_log: None,
            arrivals_ingested: 0,
        })
    }

    /// Builds the **parallel** federated driver: the same gateway, but
    /// each shard's event loop runs on a work-stealing pool of
    /// [`GatewayBuilder::threads`] threads, bit-identical to
    /// [`GatewayBuilder::build`] at any thread count (see
    /// [`crate::ParallelFederatedEngine`]).
    pub fn build_parallel(
        self,
    ) -> Result<crate::ParallelFederatedEngine<'a, S>, ConfigError> {
        let truth = self.truth;
        let pet = self.pet;
        let threads = self.threads;
        let gateway = self.build_gateway()?;
        Ok(crate::ParallelFederatedEngine::from_gateway(
            gateway,
            truth.unwrap_or(pet),
            threads,
        ))
    }
}

// ---------------------------------------------------------------------
// The federated discrete-event driver.
// ---------------------------------------------------------------------

/// One scheduled event of the federated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FedEvent {
    time: SimTime,
    shard: usize,
    kind: EventKind,
}

impl FedEvent {
    /// Sort class matching [`crate::event`]'s contract: completions
    /// before arrivals before wakeups at equal times.
    fn class(&self) -> u8 {
        match self.kind {
            EventKind::Completion { .. } => 0,
            EventKind::Arrival { .. } => 1,
            EventKind::Wakeup => 2,
        }
    }

    fn stable_id(&self) -> u64 {
        match self.kind {
            EventKind::Completion { machine, .. } => machine.0 as u64,
            EventKind::Arrival { task } => task.0,
            EventKind::Wakeup => 0,
        }
    }
}

impl Ord for FedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.class().cmp(&other.class()))
            .then_with(|| self.shard.cmp(&other.shard))
            .then_with(|| self.stable_id().cmp(&other.stable_id()))
    }
}

impl PartialOrd for FedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The federation's bundled simulation driver: merges one arrival
/// stream with a global completion/wakeup heap across all shards,
/// sampling each shard's ground-truth durations from its own
/// decorrelated RNG stream. With one shard this replays
/// [`crate::Engine::run_stream`] event for event.
pub struct FederatedEngine<'a, S: Sink = NullSink> {
    gateway: Gateway<'a, S>,
    truth: &'a PetMatrix,
    events: BinaryHeap<Reverse<FedEvent>>,
    rngs: Vec<Xoshiro256PlusPlus>,
    /// Pending heap events per shard (the per-shard analogue of the
    /// engine's `events.is_empty()` wakeup guard).
    pending: Vec<usize>,
    wakeup_pending: Vec<bool>,
    /// Per-shard operation journals since the last checkpoint
    /// (crash-failover; opt-in via
    /// [`FederatedEngine::enable_journal`]).
    journals: Option<Vec<ShardJournal>>,
    /// The external arrival stream as ingested, pre-routing (live
    /// reshard; opt-in via [`FederatedEngine::enable_arrival_log`]).
    arrival_log: Option<Vec<Task>>,
    /// Arrivals ingested so far — the watermark
    /// [`FederatedEngine::run_until`] pauses against.
    arrivals_ingested: u64,
}

impl<'a, S: Sink> FederatedEngine<'a, S> {
    /// Number of shards being driven.
    pub fn n_shards(&self) -> usize {
        self.gateway.n_shards()
    }

    /// Consumes an arrival stream ordered by non-decreasing
    /// `task.arrival` — external ids may be sparse, out of order or
    /// duplicated — routes every task through the gateway, and drains
    /// all shards after the last arrival.
    pub fn run_stream<I>(mut self, arrivals: I) -> FederationStats
    where
        I: IntoIterator<Item = Task>,
    {
        let mut source = arrivals.into_iter().peekable();
        self.drive(&mut source, None);
        self.gateway.finish()
    }

    /// Drives the event loop until `watermark` arrivals (total, since
    /// construction) have been ingested, then pauses. Pausing is
    /// non-destructive: the engine holds its heap, clocks and RNG
    /// streams, so continuing with
    /// [`FederatedEngine::finish_stream`] on the *same* source
    /// replays exactly the call sequence an uninterrupted
    /// [`FederatedEngine::run_stream`] would have made. The pause
    /// point is where elastic operations happen: checkpoint shards,
    /// verify the gateway state hash, or stop the world to reshard.
    pub fn run_until<I>(&mut self, source: &mut Peekable<I>, watermark: u64)
    where
        I: Iterator<Item = Task>,
    {
        self.drive(source, Some(watermark));
    }

    /// Consumes the rest of a stream a [`FederatedEngine::run_until`]
    /// paused on, drains all shards, and returns the federation's
    /// outcome record.
    pub fn finish_stream<I>(
        mut self,
        source: &mut Peekable<I>,
    ) -> FederationStats
    where
        I: Iterator<Item = Task>,
    {
        self.drive(source, None);
        self.gateway.finish()
    }

    /// The event loop shared by all drivers: interleaves the arrival
    /// stream with the completion/wakeup heap, optionally pausing once
    /// `pause_after` arrivals have been ingested.
    fn drive<I>(&mut self, source: &mut Peekable<I>, pause_after: Option<u64>)
    where
        I: Iterator<Item = Task>,
    {
        loop {
            if pause_after.is_some_and(|w| self.arrivals_ingested >= w) {
                return;
            }
            let event_first = match (self.events.peek(), source.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(Reverse(event)), Some(task)) => {
                    event.time < task.arrival
                        || (event.time == task.arrival
                            && matches!(
                                event.kind,
                                EventKind::Completion { .. }
                            ))
                }
            };
            if event_first {
                let Reverse(event) = self.events.pop().expect("peeked above");
                self.pending[event.shard] -= 1;
                self.gateway.advance_to(event.time);
                match event.kind {
                    EventKind::Completion { machine, task } => {
                        // Journal before the staleness check: a stale
                        // completion is rejected deterministically on
                        // replay too, so recording it keeps the replay
                        // an exact re-run.
                        if let Some(journals) = &mut self.journals {
                            journals[event.shard].record(
                                event.time,
                                JournalOp::Completion { machine, task },
                            );
                        }
                        if !self.gateway.complete(event.shard, machine, task) {
                            continue; // stale after a cancellation
                        }
                    }
                    EventKind::Wakeup => {
                        if let Some(journals) = &mut self.journals {
                            journals[event.shard]
                                .record(event.time, JournalOp::Wakeup);
                        }
                        self.wakeup_pending[event.shard] = false;
                        self.gateway.wakeup(event.shard);
                    }
                    EventKind::Arrival { .. } => unreachable!(
                        "arrivals are fed from the stream, never enqueued"
                    ),
                }
            } else {
                let task = source.next().expect("peeked above");
                let now = self.gateway.now();
                let at = task.arrival.max(now);
                self.gateway.advance_to(at);
                if let Some(log) = &mut self.arrival_log {
                    log.push(task);
                }
                let (shard, relabelled) = self.gateway.route_only(task);
                if let Some(journals) = &mut self.journals {
                    journals[shard].record(at, JournalOp::Arrival(relabelled));
                }
                self.gateway.shards_mut()[shard].push_arrival(relabelled);
                self.arrivals_ingested += 1;
            }
            self.dispatch_starts();
            // Keep the per-shard decision buffers bounded without
            // paying for relabelling; streaming callers drive the
            // gateway directly when they want the decisions.
            self.gateway.discard_decisions();
            self.maybe_schedule_wakeups(source.peek().is_some());
        }
    }

    /// Turns on per-shard operation journaling: every arrival,
    /// completion and wakeup applied to a shard is recorded so
    /// [`FederatedEngine::recover_shard`] can replay the shard from
    /// its last [`FederatedEngine::checkpoint`]. Idempotent.
    pub fn enable_journal(&mut self) {
        if self.journals.is_none() {
            self.journals =
                Some(vec![ShardJournal::new(); self.gateway.n_shards()]);
        }
    }

    /// Turns on the external arrival log: every ingested task is
    /// recorded pre-routing, so a paused federation can re-split its
    /// entire history across a different shard count. Idempotent.
    pub fn enable_arrival_log(&mut self) {
        if self.arrival_log.is_none() {
            self.arrival_log = Some(Vec::new());
        }
    }

    /// The external arrivals ingested so far (empty unless
    /// [`FederatedEngine::enable_arrival_log`] was called).
    pub fn arrival_log(&self) -> &[Task] {
        self.arrival_log.as_deref().unwrap_or(&[])
    }

    /// Arrivals ingested since construction — the watermark coordinate
    /// [`FederatedEngine::run_until`] pauses against.
    pub fn arrivals_ingested(&self) -> u64 {
        self.arrivals_ingested
    }

    /// One shard's operation journal (empty unless
    /// [`FederatedEngine::enable_journal`] was called).
    pub fn journal(&self, shard: usize) -> &ShardJournal {
        self.journals
            .as_ref()
            .map_or(ShardJournal::EMPTY, |j| &j[shard])
    }

    /// Checkpoints one shard: captures its sealed core [`Snapshot`]
    /// and clears the shard's journal (the snapshot supersedes the
    /// logged prefix). Call at a paused watermark —
    /// [`FederatedEngine::run_until`] — so the capture is
    /// quiescent.
    pub fn checkpoint(&mut self, shard: usize) -> Snapshot {
        let snap = self.gateway.shards()[shard].snapshot();
        if let Some(journals) = &mut self.journals {
            journals[shard].clear();
        }
        snap
    }

    /// Crash-failover: rebuilds shard `shard` from its last
    /// [`FederatedEngine::checkpoint`] plus the journal recorded since
    /// — modelling a shard whose in-memory state died while the
    /// coordinator (event heap, RNG streams, the other shards)
    /// survived. The journal replay re-applies every operation the
    /// shard saw since the checkpoint; the starts it re-emits are
    /// discarded because the surviving heap already holds their
    /// completions. Requires [`FederatedEngine::enable_journal`].
    ///
    /// # Errors
    /// Any [`SnapshotError`] from the envelope or payload; on error
    /// the shard is unusable and the engine should be discarded.
    ///
    /// # Panics
    /// When journaling was never enabled (there is nothing to replay
    /// from, so "recovery" would silently lose operations).
    pub fn recover_shard(
        &mut self,
        shard: usize,
        snap: &Snapshot,
    ) -> Result<(), SnapshotError> {
        let journals = self
            .journals
            .as_ref()
            .expect("recover_shard requires enable_journal");
        // The federation clock is lockstep under this serial driver;
        // capture it before the restore rewinds the shard.
        let now = self.gateway.now();
        let core = &mut self.gateway.shards_mut()[shard];
        core.restore(snap)?;
        journals[shard].replay(core);
        if core.now() < now {
            core.advance_to(now);
        }
        Ok(())
    }

    /// Captures the whole federation front-end (every shard, the
    /// compactor, the arrival order, the routing policy) into one
    /// sealed [`Snapshot`] — see [`Gateway::snapshot`]. Verifying it
    /// at a watermark is the federation's desync detector.
    pub fn snapshot_gateway(&self) -> Snapshot {
        self.gateway.snapshot()
    }

    /// Turns every pending start into a completion event, sampling the
    /// actual duration from the owning shard's ground-truth stream.
    fn dispatch_starts(&mut self) {
        let now = self.gateway.now();
        for fs in self.gateway.drain_starts() {
            let duration = self.truth.sample_duration(
                fs.machine.type_id,
                fs.task.type_id,
                &mut self.rngs[fs.shard],
            );
            self.events.push(Reverse(FedEvent {
                time: now + duration,
                shard: fs.shard,
                kind: EventKind::Completion {
                    machine: fs.machine.id,
                    task: fs.internal,
                },
            }));
            self.pending[fs.shard] += 1;
        }
    }

    /// The per-shard wakeup safety net: when no event will ever fire
    /// again on a shard but its batch queue still holds work, schedule
    /// a synthetic mapping event just past the earliest pending
    /// deadline.
    fn maybe_schedule_wakeups(&mut self, more_arrivals: bool) {
        if more_arrivals {
            return;
        }
        let now = self.gateway.now();
        for shard in 0..self.gateway.n_shards() {
            if self.wakeup_pending[shard] || self.pending[shard] > 0 {
                continue;
            }
            let Some(earliest) = self.gateway.earliest_pending_deadline(shard)
            else {
                continue;
            };
            self.events.push(Reverse(FedEvent {
                time: SimTime(earliest.ticks().max(now.ticks()) + 1),
                shard,
                kind: EventKind::Wakeup,
            }));
            self.pending[shard] += 1;
            self.wakeup_pending[shard] = true;
        }
    }
}

impl<S: Sink> std::fmt::Debug for FederatedEngine<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedEngine")
            .field("gateway", &self.gateway)
            .field("pending_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::LeastQueuedRoute;
    use crate::traits::NoPruning;
    use crate::traits::{Assignment, BatchMapper};
    use crate::view::SystemView;
    use taskprune_model::BinSpec;
    use taskprune_prob::Pmf;

    fn det_pet() -> PetMatrix {
        PetMatrix::new(BinSpec::new(100), 1, 1, vec![Pmf::point_mass(2)])
    }

    struct ToZero;
    impl BatchMapper for ToZero {
        fn name(&self) -> &str {
            "to-zero"
        }
        fn select(
            &mut self,
            view: &SystemView<'_>,
            candidates: &[Task],
        ) -> Vec<Assignment> {
            candidates
                .iter()
                .take(view.free_slots(MachineId(0)))
                .map(|t| Assignment {
                    task: t.id,
                    machine: MachineId(0),
                })
                .collect()
        }
    }

    fn builder<'a>(
        pet: &'a PetMatrix,
        cluster: &Cluster,
        shards: usize,
    ) -> GatewayBuilder<'a, NullSink> {
        GatewayBuilder::new(cluster, pet)
            .config(SimConfig::batch(1))
            .shards(shards)
            .strategy_with(|_| MappingStrategy::Batch(Box::new(ToZero)))
            .pruner_with(|_| Box::new(NoPruning))
    }

    #[test]
    fn zero_shards_is_rejected() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let err = builder(&pet, &cluster, 0)
            .build_gateway()
            .expect_err("zero shards must fail");
        assert_eq!(err, ConfigError::ZeroShards);
    }

    #[test]
    fn missing_strategy_is_rejected() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let err = GatewayBuilder::new(&cluster, &pet)
            .shards(2)
            .build_gateway()
            .expect_err("no strategy must fail");
        assert_eq!(err, ConfigError::MissingStrategy);
    }

    #[test]
    fn shard_seeds_keep_shard0_and_decorrelate_the_rest() {
        assert_eq!(GatewayBuilder::<NullSink>::shard_seed(42, 0), 42);
        let s1 = GatewayBuilder::<NullSink>::shard_seed(42, 1);
        let s2 = GatewayBuilder::<NullSink>::shard_seed(42, 2);
        assert_ne!(s1, 42);
        assert_ne!(s1, s2);
    }

    #[test]
    fn compactor_round_trips_sparse_and_duplicate_ids() {
        let mut c = IdCompactor::new(2);
        let a = c.assign(0, TaskId(1_700_000_000_000));
        let b = c.assign(0, TaskId(7));
        let d = c.assign(1, TaskId(7)); // duplicate external id
        assert_eq!((a, b, d), (TaskId(0), TaskId(1), TaskId(0)));
        assert_eq!(c.external(0, a), Some(TaskId(1_700_000_000_000)));
        assert_eq!(c.external(0, b), Some(TaskId(7)));
        assert_eq!(c.external(1, d), Some(TaskId(7)));
        assert_eq!(c.external(0, TaskId(5)), None);
        assert_eq!((c.assigned(0), c.assigned(1)), (2, 1));
    }

    #[test]
    fn gateway_routes_and_relabels_sparse_ids() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let mut gw = builder(&pet, &cluster, 2)
            .build_gateway()
            .expect("valid configuration");
        // Two snowflake-ish external ids round-robin across shards.
        let t0 = Task::new(
            9_000_000_000_123,
            TaskTypeId(0),
            SimTime(0),
            SimTime(100_000),
        );
        let t1 = Task::new(
            9_000_000_555_000,
            TaskTypeId(0),
            SimTime(0),
            SimTime(100_000),
        );
        assert_eq!(gw.push_arrival(t0), (0, TaskId(0)));
        assert_eq!(gw.push_arrival(t1), (1, TaskId(0)));
        assert_eq!(gw.resolve(TaskId(9_000_000_555_000)), Some((1, TaskId(0))));
        // Decisions and starts surface the external ids.
        let decisions = gw.drain_decisions().to_vec();
        assert_eq!(decisions.len(), 2);
        assert_eq!(
            decisions[0].decision,
            Decision::Assign {
                task: TaskId(9_000_000_000_123),
                machine: MachineId(0)
            }
        );
        assert_eq!(decisions[0].shard, 0);
        let starts = gw.drain_starts().to_vec();
        assert_eq!(starts.len(), 2);
        assert_eq!(starts[0].task.id, TaskId(9_000_000_000_123));
        assert_eq!(starts[0].internal, TaskId(0));
        // Completion via the internal handle.
        assert!(gw.complete(
            starts[0].shard,
            starts[0].machine.id,
            starts[0].internal
        ));
        let stats = gw.finish();
        assert_eq!(stats.n_tasks(), 2);
        assert_eq!(
            stats.outcome(TaskId(9_000_000_000_123)),
            Some(TaskOutcome::CompletedOnTime)
        );
        assert_eq!(stats.count(TaskOutcome::CompletedOnTime), 1);
    }

    #[test]
    fn federated_engine_drains_everything_and_merges() {
        let pet = det_pet();
        let cluster = Cluster::one_per_type(1);
        let tasks: Vec<Task> = (0..40)
            .map(|i| {
                let arr = i as u64 * 50;
                Task::new(
                    i as u64,
                    TaskTypeId(0),
                    SimTime(arr),
                    SimTime(arr + 100_000),
                )
            })
            .collect();
        let fed = builder(&pet, &cluster, 4)
            .policy(LeastQueuedRoute::new())
            .build()
            .expect("valid configuration");
        assert_eq!(fed.n_shards(), 4);
        let stats = fed.run_stream(tasks.iter().copied());
        assert_eq!(stats.n_tasks(), 40);
        assert_eq!(stats.unreported(), 0);
        // Four shards, arrivals every 50 ticks, service 200 ticks each:
        // least-queued keeps all shards busy and everything completes.
        assert_eq!(stats.count(TaskOutcome::CompletedOnTime), 40);
        assert!((stats.robustness_pct(0) - 100.0).abs() < 1e-12);
        let merged = stats.merged();
        assert_eq!(merged.n_tasks(), 40);
        assert_eq!(merged.count(TaskOutcome::CompletedOnTime), 40);
        assert_eq!(merged.mapping_events, stats.mapping_events());
        assert_eq!(merged.end_time, stats.end_time());
        // Every shard saw a dense internal id space.
        for shard in &stats.per_shard {
            assert_eq!(shard.n_tasks(), shard.n_arrived());
        }
    }
}
